//! End-to-end tests for the `titalc` binary, in particular `titalc lint`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn titalc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titalc"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn lint_rejects_broken_machine_description() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.machine"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.machine must fail lint");
    let text = stdout(&output);
    for code in [
        "zero-issue-width",
        "zero-latency",
        "zero-multiplicity",
        "doubly-covered-class",
        "uncovered-class",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_rejects_broken_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.s"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.s must fail lint");
    let text = stdout(&output);
    for code in [
        "dangling-label",
        "unknown-call-target",
        "falls-off-end",
        "def-before-use",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_accepts_clean_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("clean.s"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "clean.s must pass lint: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).is_empty(), "no diagnostics expected");
}

#[test]
fn compile_with_verify_succeeds() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("ok.tital");
    std::fs::write(
        &source,
        "global var x;\nfn main() -> int { x = 3; return x * 2 + 1; }\n",
    )
    .unwrap();
    let output = titalc()
        .arg("--verify")
        .arg("-m")
        .arg("superscalar:4")
        .arg(&source)
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "--verify compile failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn lint_flags_dead_store_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("deadstore.tital"))
        .output()
        .expect("spawn titalc");
    // Dead stores are warnings: reported, but not a failing exit.
    assert!(output.status.success(), "warnings must not fail lint");
    let text = stdout(&output);
    assert!(
        text.contains("dead-store"),
        "missing dead-store in:\n{text}"
    );
    assert!(text.contains("`x`"), "names the variable:\n{text}");
}

#[test]
fn lint_rejects_out_of_bounds_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("oob.tital"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "provable OOB accesses are errors");
    let text = stdout(&output);
    for code in ["oob-store", "oob-load"] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_flags_constant_branch_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("constbranch.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "constant branches are warnings");
    let text = stdout(&output);
    assert!(
        text.contains("const-branch") && text.contains("always true"),
        "missing const-branch in:\n{text}"
    );
}

#[test]
fn analyze_dumps_dataflow_facts() {
    let output = titalc()
        .arg("analyze")
        .arg(fixture("constbranch.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "analyze exits zero without errors");
    let text = stdout(&output);
    for needle in ["fn main:", "bb0:", "const:", "branch: always true"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn analyze_fails_on_lint_errors() {
    let output = titalc()
        .arg("analyze")
        .arg(fixture("oob.tital"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "oob errors fail analyze too");
}

#[test]
fn conservative_oracle_compiles_and_runs() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("oracle.tital");
    std::fs::write(
        &source,
        "global arr a[4];\nfn main() -> int { a[0] = 2; a[1] = 3; return a[0] * a[1]; }\n",
    )
    .unwrap();
    for oracle in ["conservative", "symbolic"] {
        let output = titalc()
            .arg("--verify")
            .arg("--oracle")
            .arg(oracle)
            .arg(&source)
            .output()
            .expect("spawn titalc");
        assert!(
            output.status.success(),
            "--oracle {oracle} failed: {}{}",
            stdout(&output),
            String::from_utf8_lossy(&output.stderr)
        );
    }
}

// ---------------------------------------------------------------------------
// titalc profile
// ---------------------------------------------------------------------------

/// Pins every varying field of a profile report: `wall_ns` values (timing)
/// are zeroed and the `source` path (absolute under the test harness) is
/// replaced with the repo-relative fixture path. Everything else in the
/// document is deterministic and must match the golden byte for byte.
fn normalize_profile(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if let Some(pos) = line.find("\"wall_ns\": ") {
            let head = &line[..pos + "\"wall_ns\": ".len()];
            let rest = &line[pos + "\"wall_ns\": ".len()..];
            let tail = rest.trim_start_matches(|c: char| c.is_ascii_digit());
            out.push_str(head);
            out.push('0');
            out.push_str(tail);
        } else if line.trim_start().starts_with("\"source\": ") {
            let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
            out.push_str(&indent);
            out.push_str("\"source\": \"tests/fixtures/profile.tital\",");
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn profile_json_matches_golden() {
    // --verify pins the phase list: without it the list would differ
    // between debug (verify on) and release (verify off) test builds.
    let output = titalc()
        .args(["profile", "--json", "--verify", "-m", "multititan"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "profile --json failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let golden = std::fs::read_to_string(fixture("profile.json")).expect("golden exists");
    let got = normalize_profile(&stdout(&output));
    assert_eq!(
        got, golden,
        "profile --json drifted from tests/fixtures/profile.json; \
         if the schema change is intentional, regenerate the golden"
    );
}

#[test]
fn profile_tables_report_the_cycle_account() {
    let output = titalc()
        .args(["profile", "-m", "superscalar:4"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let text = stdout(&output);
    for needle in [
        "compile phases:",
        "cycle account:",
        "class mix:",
        "schedule",
        "rate:",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn profile_trace_streams_json_lines() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("profile-trace.jsonl");
    let output = titalc()
        .args(["profile", "--trace"])
        .arg(&trace)
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let lines = std::fs::read_to_string(&trace).unwrap();
    assert!(lines.lines().any(|l| l.contains("\"event\":\"phase\"")));
    assert!(lines.lines().any(|l| l.contains("\"event\":\"issue\"")));
    // Every line is one complete JSON object.
    for line in lines.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
}

#[test]
fn run_reports_merged_class_and_account_table() {
    let output = titalc()
        .args(["-m", "cray1"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let text = stdout(&output);
    for needle in ["cycle account:", "class mix:", "wait cycles", "issue"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

// ---------------------------------------------------------------------------
// titalc analyze --loops and titalc bound
// ---------------------------------------------------------------------------

#[test]
fn analyze_loops_reports_forest_and_scev() {
    let output = titalc()
        .args(["analyze", "--loops"])
        .arg(fixture("loop_carried2.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "analyze --loops exits zero");
    let text = stdout(&output);
    for needle in [
        "loop forest:",
        "fn main:",
        "iv i step +1",
        "write fib[i+2 ; +1/iter]",
        "flow < distance 1",
        "flow < distance 2",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn analyze_loops_proves_strided_accesses_independent() {
    let output = titalc()
        .args(["analyze", "--loops"])
        .arg(fixture("loop_strided.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("+2/iter"), "stride 2 classified:\n{text}");
    assert!(
        !text.contains("dep "),
        "stride-2 read/write at odd/even offsets must be proven independent:\n{text}"
    );
}

#[test]
fn analyze_loops_nests_the_triangular_loop() {
    let output = titalc()
        .args(["analyze", "--loops"])
        .arg(fixture("loop_triangular.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("depth 2"), "inner loop nests:\n{text}");
    assert!(text.contains("iv j step +1"), "inner induction:\n{text}");
}

/// Pins the `supersym.loops/v1` schema: only the `source` path (absolute
/// under the test harness) varies, so it is rewritten to the repo-relative
/// fixture path and everything else must match the golden byte for byte.
fn normalize_loops(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        if line.trim_start().starts_with("\"source\": ") {
            let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
            out.push_str(&indent);
            out.push_str("\"source\": \"tests/fixtures/loop_carried2.tital\",");
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn analyze_loops_json_matches_golden() {
    let output = titalc()
        .args(["analyze", "--loops", "--json"])
        .arg(fixture("loop_carried2.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let golden = std::fs::read_to_string(fixture("loops.json")).expect("golden exists");
    let got = normalize_loops(&stdout(&output));
    assert_eq!(
        got, golden,
        "analyze --loops --json drifted from tests/fixtures/loops.json; \
         if the schema change is intentional, regenerate the golden"
    );
}

#[test]
fn bound_reports_loops_and_soundness() {
    let output = titalc()
        .args(["bound", "-m", "superscalar:2"])
        .arg(fixture("loop_carried1.tital"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "bound failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = stdout(&output);
    for needle in [
        "innermost machine loop",
        "rec-ii",
        "bound:",
        "measured:",
        "sound:          true",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn bound_json_single_file_is_sound() {
    let output = titalc()
        .args(["bound", "--json"])
        .arg(fixture("loop_unit.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success());
    let text = stdout(&output);
    for needle in [
        "\"schema\": \"supersym.bound/v1\"",
        "\"lower_bound_cycles\"",
        "\"rec_min_ii\"",
        "\"res_min_ii\"",
        "\"measured_ilp\"",
        "\"sound\": true",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn bound_suite_sweeps_one_preset() {
    let output = titalc()
        .args(["bound", "-m", "superscalar:2", "--json"])
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "suite bound failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = stdout(&output);
    for benchmark in [
        "ccom",
        "grr",
        "linpack",
        "livermore",
        "met",
        "stan",
        "whet",
        "yacc",
    ] {
        assert!(
            text.contains(&format!("\"benchmark\": \"{benchmark}\"")),
            "missing `{benchmark}` in:\n{text}"
        );
    }
    assert!(
        !text.contains("\"sound\": false"),
        "an unsound cell:\n{text}"
    );
}

#[test]
fn bound_rejects_unknown_machine() {
    let output = titalc()
        .args(["bound", "-m", "quantum"])
        .output()
        .expect("spawn titalc");
    assert_eq!(
        output.status.code().expect("exit code"),
        1,
        "unknown preset is a usage error"
    );
}

// ---------------------------------------------------------------------------
// Exit codes: 0 ok / 1 usage / 2 front end / 3 static checks / 4 runtime
// ---------------------------------------------------------------------------

fn corpus(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/corpus")
        .join(name)
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("titalc terminated by signal")
}

#[test]
fn help_documents_exit_codes() {
    let output = titalc().arg("--help").output().expect("spawn titalc");
    let text = String::from_utf8_lossy(&output.stderr).into_owned() + &stdout(&output);
    assert!(
        text.contains("EXIT CODES"),
        "no EXIT CODES section:\n{text}"
    );
    for needle in [
        "front end",
        "torture findings",
        "simulation (runtime) error",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in help:\n{text}");
    }
}

#[test]
fn usage_errors_exit_1() {
    let output = titalc()
        .arg("--no-such-flag")
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 1);
    let output = titalc()
        .arg("/nonexistent/missing.tital")
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 1, "unreadable file is an I/O error");
}

#[test]
fn parse_errors_exit_2() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("syntax-error.tital");
    std::fs::write(&source, "fn main( { return 1; }\n").unwrap();
    let output = titalc().arg(&source).output().expect("spawn titalc");
    assert_eq!(exit_code(&output), 2, "compile of a syntax error");
    let output = titalc()
        .arg("lint")
        .arg(&source)
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 2, "lint of a syntax error");
}

#[test]
fn static_check_errors_exit_3() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.machine"))
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 3, "machine lint errors");
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.s"))
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 3, "program lint errors");
    let output = titalc()
        .arg("lint")
        .arg(fixture("oob.tital"))
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 3, "dataflow lint errors");
}

#[test]
fn runtime_errors_exit_4() {
    let output = titalc()
        .arg(corpus("seed-runtime-trap.tital"))
        .output()
        .expect("spawn titalc");
    assert_eq!(
        exit_code(&output),
        4,
        "runaway recursion is a runtime error: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn torture_smoke_campaign_exits_0() {
    let output = titalc()
        .args(["torture", "--seed", "9", "--iters", "25"])
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "smoke campaign found something: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = stdout(&output);
    assert!(text.contains("0 finding(s)"), "report missing:\n{text}");
    for layer in ["source", "ast", "asm", "machine"] {
        assert!(text.contains(layer), "layer `{layer}` missing:\n{text}");
    }
}

#[test]
fn torture_replays_the_corpus() {
    let output = titalc()
        .args(["torture", "--replay"])
        .arg(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../tests/corpus")
                .as_os_str(),
        )
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "corpus replay regressed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout(&output).contains("corpus replay:"),
        "replay summary missing:\n{}",
        stdout(&output)
    );
}

#[test]
fn torture_rejects_bad_flags() {
    let output = titalc()
        .args(["torture", "--layer", "quantum"])
        .output()
        .expect("spawn titalc");
    assert_eq!(exit_code(&output), 1);
}

#[test]
fn certify_reports_per_pass_certificates() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("certify-demo.tital");
    std::fs::write(
        &source,
        "global arr data[32];\n\
         fn main() -> int {\n\
             var sum = 0;\n\
             for (i = 0; i < 32; i = i + 1) { data[i] = i * 2 + 1; }\n\
             for (i = 0; i < 32; i = i + 1) { sum = sum + data[i]; }\n\
             return sum;\n\
         }\n",
    )
    .unwrap();
    let output = titalc()
        .arg("certify")
        .arg("-m")
        .arg("multititan")
        .arg("--unroll")
        .arg("careful:2")
        .arg(&source)
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "certify failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = stdout(&output);
    for needle in ["translation validation:", "structural", "certified:"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    assert!(
        !text.contains("inconclusive"),
        "a real compile must never be inconclusive:\n{text}"
    );
}

/// Full-depth synthesis is release-speed; debug runs skip it the same way
/// the rules crate's own determinism test does. CI runs the release
/// binary's `titalc synth --check`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-depth synthesis is release-speed; CI runs `titalc synth --check` in release"
)]
fn synth_check_accepts_the_shipped_table() {
    let output = titalc()
        .arg("synth")
        .arg("--check")
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "synth --check failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).contains("byte-identical"));
}

#[test]
fn stats_json_matches_golden() {
    // --verify pins the phase list, exactly as in the profile golden.
    let output = titalc()
        .args(["stats", "--verify", "-m", "multititan"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "stats failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    let golden = std::fs::read_to_string(fixture("stats.json")).expect("golden exists");
    // Same varying fields as a profile document: wall times and the
    // absolute source path.
    let got = normalize_profile(&stdout(&output));
    assert_eq!(
        got, golden,
        "stats drifted from tests/fixtures/stats.json; \
         if the schema change is intentional, regenerate the golden"
    );
}

#[test]
fn profile_timeline_passes_the_validator() {
    let dir = std::env::temp_dir().join(format!("titalc-timeline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let timeline = dir.join("profile-timeline.json");
    let output = titalc()
        .args(["profile", "--timeline"])
        .arg(&timeline)
        .args(["-m", "superscalar:4"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "profile --timeline failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let lint = titalc()
        .arg("lint")
        .arg(&timeline)
        .output()
        .expect("spawn titalc");
    assert!(
        lint.status.success(),
        "emitted timeline failed validation: {}{}",
        stdout(&lint),
        String::from_utf8_lossy(&lint.stderr)
    );
    assert!(
        stdout(&lint).contains("valid timeline"),
        "{}",
        stdout(&lint)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_classifies_timeline_failures() {
    let dir = std::env::temp_dir().join(format!("titalc-lint-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Unparseable JSON is a front-end failure: exit 2.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "this is not json").unwrap();
    let output = titalc()
        .arg("lint")
        .arg(&garbage)
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(2), "{}", stdout(&output));

    // Well-formed JSON violating a trace_event invariant (time going
    // backwards on one lane) is a static-check failure: exit 3.
    let invalid = dir.join("backwards.json");
    std::fs::write(
        &invalid,
        r#"{"schema":"supersym.timeline/v1","traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"compile"}},
            {"ph":"X","pid":1,"tid":1,"ts":10,"dur":5,"name":"a"},
            {"ph":"X","pid":1,"tid":1,"ts":3,"dur":2,"name":"b"}]}"#,
    )
    .unwrap();
    let output = titalc()
        .arg("lint")
        .arg(&invalid)
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(3), "{}", stdout(&output));
    let diagnostic = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        diagnostic.contains("went backwards"),
        "diagnostic should name the violated invariant: {diagnostic}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn plain_run_rejects_timeline_flag() {
    let output = titalc()
        .args(["--timeline", "/tmp/unused.json"])
        .arg(fixture("profile.tital"))
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--timeline"),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

fn bench_snapshot(path: &Path, rows: &[(&str, u64)]) {
    let mut text = String::from("{\"schema\":\"supersym.bench/v1\",\"rows\":[");
    for (i, (name, mean)) in rows.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(&format!(
            "{{\"name\":\"{name}\",\"mean_ns\":{mean},\"iters\":10}}"
        ));
    }
    text.push_str("]}");
    std::fs::write(path, text).unwrap();
}

#[test]
fn bench_diff_flags_regressions_beyond_threshold() {
    let dir = std::env::temp_dir().join(format!("titalc-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    bench_snapshot(
        &old,
        &[("compile/a", 1000), ("simulate/b", 1000), ("gone", 5)],
    );
    bench_snapshot(
        &new,
        &[("compile/a", 1050), ("simulate/b", 1300), ("fresh", 7)],
    );

    // +30% on simulate/b breaks the default 10% threshold: exit 3, and
    // the row is named.
    let output = titalc()
        .arg("bench-diff")
        .args([&old, &new])
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(3), "{}", stdout(&output));
    let text = stdout(&output);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("+30.0%"), "{text}");
    assert!(text.contains("+5.0%"), "{text}");
    // Rows in only one snapshot are reported but never fail the diff.
    assert!(text.contains("gone"), "{text}");
    assert!(text.contains("fresh"), "{text}");

    // A looser threshold accepts the same pair.
    let output = titalc()
        .args(["bench-diff", "--threshold", "50"])
        .args([&old, &new])
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(0), "{}", stdout(&output));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_diff_distinguishes_missing_from_malformed() {
    let dir = std::env::temp_dir().join(format!("titalc-bench-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    bench_snapshot(&good, &[("a", 100)]);

    let output = titalc()
        .arg("bench-diff")
        .arg(dir.join("no-such-file.json"))
        .arg(&good)
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(1));

    let wrong = dir.join("wrong.json");
    std::fs::write(&wrong, "{\"schema\":\"supersym.profile/v1\"}").unwrap();
    let output = titalc()
        .arg("bench-diff")
        .arg(&wrong)
        .arg(&good)
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}
