//! End-to-end tests for the `titalc` binary, in particular `titalc lint`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn titalc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titalc"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn lint_rejects_broken_machine_description() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.machine"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.machine must fail lint");
    let text = stdout(&output);
    for code in [
        "zero-issue-width",
        "zero-latency",
        "zero-multiplicity",
        "doubly-covered-class",
        "uncovered-class",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_rejects_broken_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.s"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.s must fail lint");
    let text = stdout(&output);
    for code in [
        "dangling-label",
        "unknown-call-target",
        "falls-off-end",
        "def-before-use",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_accepts_clean_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("clean.s"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "clean.s must pass lint: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).is_empty(), "no diagnostics expected");
}

#[test]
fn compile_with_verify_succeeds() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("ok.tital");
    std::fs::write(
        &source,
        "global var x;\nfn main() -> int { x = 3; return x * 2 + 1; }\n",
    )
    .unwrap();
    let output = titalc()
        .arg("--verify")
        .arg("-m")
        .arg("superscalar:4")
        .arg(&source)
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "--verify compile failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn lint_flags_dead_store_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("deadstore.tital"))
        .output()
        .expect("spawn titalc");
    // Dead stores are warnings: reported, but not a failing exit.
    assert!(output.status.success(), "warnings must not fail lint");
    let text = stdout(&output);
    assert!(
        text.contains("dead-store"),
        "missing dead-store in:\n{text}"
    );
    assert!(text.contains("`x`"), "names the variable:\n{text}");
}

#[test]
fn lint_rejects_out_of_bounds_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("oob.tital"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "provable OOB accesses are errors");
    let text = stdout(&output);
    for code in ["oob-store", "oob-load"] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_flags_constant_branch_fixture() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("constbranch.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "constant branches are warnings");
    let text = stdout(&output);
    assert!(
        text.contains("const-branch") && text.contains("always true"),
        "missing const-branch in:\n{text}"
    );
}

#[test]
fn analyze_dumps_dataflow_facts() {
    let output = titalc()
        .arg("analyze")
        .arg(fixture("constbranch.tital"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "analyze exits zero without errors");
    let text = stdout(&output);
    for needle in ["fn main:", "bb0:", "const:", "branch: always true"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

#[test]
fn analyze_fails_on_lint_errors() {
    let output = titalc()
        .arg("analyze")
        .arg(fixture("oob.tital"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "oob errors fail analyze too");
}

#[test]
fn conservative_oracle_compiles_and_runs() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("oracle.tital");
    std::fs::write(
        &source,
        "global arr a[4];\nfn main() -> int { a[0] = 2; a[1] = 3; return a[0] * a[1]; }\n",
    )
    .unwrap();
    for oracle in ["conservative", "symbolic"] {
        let output = titalc()
            .arg("--verify")
            .arg("--oracle")
            .arg(oracle)
            .arg(&source)
            .output()
            .expect("spawn titalc");
        assert!(
            output.status.success(),
            "--oracle {oracle} failed: {}{}",
            stdout(&output),
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
