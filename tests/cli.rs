//! End-to-end tests for the `titalc` binary, in particular `titalc lint`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn titalc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titalc"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn lint_rejects_broken_machine_description() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.machine"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.machine must fail lint");
    let text = stdout(&output);
    for code in [
        "zero-issue-width",
        "zero-latency",
        "zero-multiplicity",
        "doubly-covered-class",
        "uncovered-class",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_rejects_broken_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("broken.s"))
        .output()
        .expect("spawn titalc");
    assert!(!output.status.success(), "broken.s must fail lint");
    let text = stdout(&output);
    for code in [
        "dangling-label",
        "unknown-call-target",
        "falls-off-end",
        "def-before-use",
    ] {
        assert!(text.contains(code), "missing `{code}` in:\n{text}");
    }
}

#[test]
fn lint_accepts_clean_program() {
    let output = titalc()
        .arg("lint")
        .arg(fixture("clean.s"))
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "clean.s must pass lint: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout(&output).is_empty(), "no diagnostics expected");
}

#[test]
fn compile_with_verify_succeeds() {
    let dir = std::env::temp_dir().join("titalc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("ok.tital");
    std::fs::write(
        &source,
        "global var x;\nfn main() -> int { x = 3; return x * 2 + 1; }\n",
    )
    .unwrap();
    let output = titalc()
        .arg("--verify")
        .arg("-m")
        .arg("superscalar:4")
        .arg(&source)
        .output()
        .expect("spawn titalc");
    assert!(
        output.status.success(),
        "--verify compile failed: {}{}",
        stdout(&output),
        String::from_utf8_lossy(&output.stderr)
    );
}
