//! A bounded torture campaign as a tier-1 test: five hundred seeded
//! mutants per layer through the real pipeline, each run twice, with the
//! `catch_unwind` backstop armed. Zero findings means the robustness
//! contract held — every mutant was either rejected with a typed error at
//! an acceptable stage or ran to completion identically both times.
//!
//! The campaign is fully deterministic (SplitMix64 substreams keyed by
//! `(seed, layer, index)`), so a failure here reproduces exactly with
//! `titalc torture --seed 3735928559 --iters 500`.

use supersym::torture::run_torture;
use supersym_torture::{FindingKind, Layer};

const SEED: u64 = 0xDEAD_BEEF;

#[test]
fn bounded_campaign_finds_nothing() {
    let report = run_torture(SEED, 500, Layer::ALL.to_vec());
    assert_eq!(report.finding_count(), 0, "findings:\n{report}");
    for layer in &report.layers {
        assert_eq!(layer.mutants, 500);
        assert_eq!(layer.accepted + layer.rejected, 500);
        // The layer must exercise both sides of the contract: if every
        // mutant is rejected the mutators have rotted into noise
        // generators, and if every mutant is accepted they are not
        // probing the error paths at all.
        assert!(
            layer.accepted > 0,
            "{}: no mutant survived",
            layer.layer.name()
        );
        assert!(
            layer.rejected > 0,
            "{}: no mutant rejected",
            layer.layer.name()
        );
    }
}

#[test]
fn campaign_reports_replay_bit_identically() {
    let layers = vec![Layer::Source, Layer::Machine];
    let a = run_torture(SEED, 40, layers.clone());
    let b = run_torture(SEED, 40, layers);
    assert_eq!(a.finding_count(), b.finding_count());
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.accepted, lb.accepted, "{}", la.layer.name());
        assert_eq!(la.rejected, lb.rejected, "{}", la.layer.name());
    }
}

#[test]
fn finding_kinds_render_stably() {
    // Corpus file names embed these strings; renaming a kind silently
    // orphans recorded reproducers.
    assert_eq!(FindingKind::Panic.to_string(), "panic");
    assert_eq!(FindingKind::Nondeterminism.to_string(), "nondeterminism");
    assert_eq!(
        FindingKind::UnexpectedReject(supersym_torture::Stage::Verify).to_string(),
        "unexpected-reject-verify"
    );
}
