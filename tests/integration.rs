//! Cross-crate integration tests: the full pipeline (front end → optimizer
//! → register allocation → code generation → scheduling → simulation)
//! exercised end-to-end on realistic programs and machine descriptions.

use supersym::isa::{InstrClass, IntReg};
use supersym::machine::{presets, FunctionalUnit, MachineConfig, RegisterSplit};
use supersym::opt::UnrollOptions;
use supersym::sim::{
    simulate, simulate_with_cache, CacheConfig, ExecOptions, Executor, SimOptions,
};
use supersym::{compile, CompileOptions, OptLevel};

const MIXED_PROGRAM: &str = "
    global arr keys[64];
    global arr heap[128];
    global var heapsize;
    global fvar mean;
    global farr samples[64];
    global var seed = 5;

    fn rnd(int limit) -> int {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        return seed % limit;
    }

    // A heap insert exercises data-dependent loops and stores.
    fn push(int v) {
        heap[heapsize] = v;
        var i = heapsize;
        heapsize = heapsize + 1;
        while (i > 0) {
            var parent = (i - 1) / 2;
            if (heap[parent] > heap[i]) {
                var t = heap[parent];
                heap[parent] = heap[i];
                heap[i] = t;
                i = parent;
            } else {
                i = 0;
            }
        }
    }

    fn gcd(int a, int b) -> int {
        if (b == 0) { return a; }
        return gcd(b, a % b);
    }

    fn main() -> int {
        heapsize = 0;
        for (i = 0; i < 64; i = i + 1) {
            keys[i] = rnd(1000);
            push(keys[i]);
            samples[i] = itof(keys[i]) * 0.125;
        }
        mean = 0.0;
        for (i = 0; i < 64; i = i + 1) {
            mean = mean + samples[i];
        }
        mean = mean / 64.0;
        var g = 0;
        for (i = 0; i < 63; i = i + 1) {
            g = g + gcd(keys[i], keys[i + 1]);
        }
        return heap[0] * 1000 + g + ftoi(mean);
    }";

fn result_of(program: &supersym::isa::Program) -> i64 {
    let mut exec = Executor::new(program, ExecOptions::default()).unwrap();
    exec.run().unwrap();
    exec.int_reg(IntReg::new(1).unwrap())
}

#[test]
fn mixed_program_equivalent_everywhere() {
    let reference = {
        let machine = presets::base();
        result_of(&compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O0, &machine)).unwrap())
    };
    for machine in [
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::ideal_superscalar(8),
        presets::superpipelined(8),
        presets::superpipelined_superscalar(2, 3),
        presets::superscalar_with_class_conflicts(4),
        presets::underpipelined_half_issue(),
    ] {
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O4] {
            let program = compile(MIXED_PROGRAM, &CompileOptions::new(level, &machine)).unwrap();
            program.validate().unwrap();
            assert_eq!(
                result_of(&program),
                reference,
                "{} at {level}",
                machine.name()
            );
        }
    }
}

#[test]
fn tight_register_splits_still_correct() {
    let machine = presets::ideal_superscalar(4);
    let reference =
        result_of(&compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap());
    for (temps, globals) in [(4, 0), (4, 2), (6, 1), (8, 26), (52, 0)] {
        let split = RegisterSplit {
            int_temps: temps,
            int_globals: globals,
            fp_temps: temps,
            fp_globals: globals,
        };
        let options = CompileOptions::new(OptLevel::O4, &machine).with_split(split);
        let program = compile(MIXED_PROGRAM, &options).unwrap();
        assert_eq!(
            result_of(&program),
            reference,
            "split {temps}/{globals} diverged"
        );
    }
}

#[test]
fn fewer_temporaries_never_speed_things_up() {
    // Register pressure can only add spills and artificial dependences.
    let machine = presets::ideal_superscalar(8);
    let mut cycles = Vec::new();
    for temps in [4_u8, 8, 16, 40] {
        let split = RegisterSplit {
            int_temps: temps,
            int_globals: 8,
            fp_temps: temps,
            fp_globals: 8,
        };
        let options = CompileOptions::new(OptLevel::O4, &machine).with_split(split);
        let program = compile(MIXED_PROGRAM, &options).unwrap();
        let report = simulate(&program, &machine, SimOptions::default()).unwrap();
        cycles.push(report.base_cycles());
    }
    for pair in cycles.windows(2) {
        assert!(
            pair[1] <= pair[0] * 1.02,
            "more temporaries regressed: {cycles:?}"
        );
    }
}

#[test]
fn issue_width_is_monotone() {
    let machine = presets::ideal_superscalar(4);
    let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
    let mut last = f64::INFINITY;
    for width in 1..=8 {
        let report = simulate(
            &program,
            &presets::ideal_superscalar(width),
            SimOptions::default(),
        )
        .unwrap();
        assert!(
            report.base_cycles() <= last,
            "width {width} slower than {}",
            width - 1
        );
        last = report.base_cycles();
    }
}

#[test]
fn ipc_never_exceeds_issue_width() {
    for width in [1, 2, 4] {
        let machine = presets::ideal_superscalar(width);
        let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
        let report = simulate(&program, &machine, SimOptions::default()).unwrap();
        assert!(
            report.available_parallelism() <= f64::from(width) + 1e-9,
            "IPC {} exceeds width {width}",
            report.available_parallelism()
        );
    }
}

#[test]
fn class_conflicts_never_help() {
    let ideal = presets::ideal_superscalar(4);
    let conflicted = presets::superscalar_with_class_conflicts(4);
    let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &ideal)).unwrap();
    let a = simulate(&program, &ideal, SimOptions::default()).unwrap();
    let b = simulate(&program, &conflicted, SimOptions::default()).unwrap();
    assert!(b.base_cycles() >= a.base_cycles());
}

#[test]
fn unrolling_variants_agree_on_integer_program() {
    let machine = presets::multititan();
    let reference =
        result_of(&compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap());
    for unroll in [
        UnrollOptions::naive(2),
        UnrollOptions::naive(7),
        UnrollOptions::careful(3),
        UnrollOptions::careful(10),
    ] {
        let options = CompileOptions::new(OptLevel::O4, &machine).with_unroll(unroll);
        let program = compile(MIXED_PROGRAM, &options).unwrap();
        // The float reduction (mean) reassociates under careful unrolling;
        // the checksum only uses ftoi(mean) which is stable here because
        // the sum is exact in f64 (small dyadic values).
        assert_eq!(result_of(&program), reference, "{unroll:?}");
    }
}

#[test]
fn cache_runs_and_reports_sane_rates() {
    let machine = presets::base();
    let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
    let (report, caches) = simulate_with_cache(
        &program,
        &machine,
        SimOptions::default(),
        CacheConfig::small_direct(),
        CacheConfig::small_direct(),
    )
    .unwrap();
    assert_eq!(caches.icache.accesses, report.instructions());
    assert!(caches.icache.miss_rate() < 0.5);
    assert!(caches.dcache.miss_rate() < 0.5);
    assert!(caches.effective_cpi(1.0, 12.0) >= 1.0);
}

#[test]
fn custom_machine_description_end_to_end() {
    // A lopsided machine: fast ALUs, one slow shared memory port.
    let mut builder = MachineConfig::builder("lopsided");
    builder
        .issue_width(3)
        .latency(InstrClass::Load, 5)
        .latency(InstrClass::Store, 5)
        .functional_unit(FunctionalUnit::new(
            "alu",
            vec![
                InstrClass::Logical,
                InstrClass::Shift,
                InstrClass::IntAdd,
                InstrClass::Compare,
                InstrClass::IntMul,
                InstrClass::IntDiv,
            ],
            3,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "mem",
            vec![InstrClass::Load, InstrClass::Store],
            1,
            2,
        ))
        .functional_unit(FunctionalUnit::new(
            "ctrl",
            vec![InstrClass::Branch, InstrClass::Jump],
            3,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "fp",
            vec![
                InstrClass::FpAdd,
                InstrClass::FpMul,
                InstrClass::FpDiv,
                InstrClass::FpCvt,
            ],
            1,
            1,
        ));
    let machine = builder.build().unwrap();
    let reference = {
        let base = presets::base();
        result_of(&compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &base)).unwrap())
    };
    let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
    assert_eq!(result_of(&program), reference);
    let report = simulate(&program, &machine, SimOptions::default()).unwrap();
    assert!(report.base_cycles() > 0.0);
}

#[test]
fn deep_recursion_within_limits() {
    let source = "
        fn depth(int n) -> int {
            if (n == 0) { return 0; }
            return 1 + depth(n - 1);
        }
        fn main() -> int { return depth(4000); }";
    let machine = presets::base();
    let program = compile(source, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
    assert_eq!(result_of(&program), 4000);
}

#[test]
fn scheduling_for_wrong_machine_is_legal_just_slower() {
    // Code scheduled for the CRAY-1 but run on the MultiTitan must still be
    // correct (compile-time scheduling is a performance hint, not a
    // correctness requirement).
    let cray = presets::cray1();
    let titan = presets::multititan();
    let program = compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &cray)).unwrap();
    let reference =
        result_of(&compile(MIXED_PROGRAM, &CompileOptions::new(OptLevel::O4, &titan)).unwrap());
    assert_eq!(result_of(&program), reference);
    let report = simulate(&program, &titan, SimOptions::default()).unwrap();
    assert!(report.base_cycles() > 0.0);
}
