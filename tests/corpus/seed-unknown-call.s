// Parses cleanly but calls a function that does not exist: the validator
// must reject it typed (unknown call target), never jump into the void.
main:
  call fn#7
  halt
