//! Property-based tests: randomly generated Tital programs must behave
//! identically at every optimization level, under unrolling, and on every
//! machine; and the timing model must satisfy its structural invariants on
//! arbitrary instruction streams.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use supersym::lang::ast::{BinOp, Block, Expr, FnDecl, GlobalDecl, GlobalKind, Module, Stmt, Ty};
use supersym::machine::presets;
use supersym::opt::UnrollOptions;
use supersym::sim::{ExecOptions, Executor, SimOptions};
use supersym::{compile_ast, CompileOptions, OptLevel};

// ---------------------------------------------------------------------------
// Random-program generator
// ---------------------------------------------------------------------------

/// Generates a random — but always well-defined — Tital program. Array
/// indices are masked into range, integer division/remainder and shifts
/// are total by language definition, and only integer arithmetic feeds the
/// checksum, so every generated program has one deterministic result at
/// every optimization level.
struct Gen {
    rng: StdRng,
    /// Integer scalar variables in scope (globals g0..g3).
    depth_budget: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            depth_budget: 300,
        }
    }

    fn var(&mut self) -> String {
        format!("g{}", self.rng.random_range(0..4_u32))
    }

    fn arr(&mut self) -> String {
        if self.rng.random_bool(0.5) {
            "a".to_string()
        } else {
            "b".to_string()
        }
    }

    fn expr(&mut self, depth: u32) -> Expr {
        self.depth_budget = self.depth_budget.saturating_sub(1);
        if depth == 0 || self.depth_budget == 0 {
            return match self.rng.random_range(0..3) {
                0 => Expr::IntLit(self.rng.random_range(-30..30)),
                1 => Expr::Var(self.var()),
                _ => Expr::Elem {
                    arr: self.arr(),
                    index: Box::new(self.masked_index(0)),
                },
            };
        }
        match self.rng.random_range(0..8) {
            0 => Expr::IntLit(self.rng.random_range(-100..100)),
            1 => Expr::Var(self.var()),
            2 => Expr::Elem {
                arr: self.arr(),
                index: Box::new(self.masked_index(depth - 1)),
            },
            _ => {
                let op = *[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Lt,
                    BinOp::Eq,
                ]
                .get(self.rng.random_range(0..10))
                .unwrap();
                Expr::binary(op, self.expr(depth - 1), self.expr(depth - 1))
            }
        }
    }

    /// An index expression guaranteed to land in `0..16`.
    fn masked_index(&mut self, depth: u32) -> Expr {
        Expr::binary(BinOp::And, self.expr(depth), Expr::IntLit(15))
    }

    fn stmt(&mut self, depth: u32) -> Stmt {
        self.depth_budget = self.depth_budget.saturating_sub(1);
        let choice = if depth == 0 || self.depth_budget == 0 {
            self.rng.random_range(0..2)
        } else {
            self.rng.random_range(0..5)
        };
        match choice {
            0 => Stmt::Assign {
                name: self.var(),
                value: self.expr(2),
            },
            1 => Stmt::AssignElem {
                arr: self.arr(),
                index: self.masked_index(1),
                value: self.expr(2),
            },
            2 => Stmt::If {
                cond: self.expr(2),
                then_blk: self.block(depth - 1),
                else_blk: if self.rng.random_bool(0.5) {
                    Some(self.block(depth - 1))
                } else {
                    None
                },
            },
            3 => {
                // A counted loop in canonical form so the unroller sees it.
                let trips = self.rng.random_range(1..9_i64);
                let var = format!("i{}", self.rng.random_range(0..100_u32));
                Stmt::For {
                    cond: Expr::binary(BinOp::Lt, Expr::Var(var.clone()), Expr::IntLit(trips)),
                    var,
                    init: Expr::IntLit(0),
                    step: 1,
                    body: self.block(depth - 1),
                }
            }
            _ => Stmt::Assign {
                name: self.var(),
                value: self.expr(3),
            },
        }
    }

    fn block(&mut self, depth: u32) -> Block {
        let n = self.rng.random_range(1..4);
        Block {
            stmts: (0..n).map(|_| self.stmt(depth)).collect(),
        }
    }

    fn module(&mut self) -> Module {
        let mut body = self.block(3);
        // Checksum over everything observable.
        let mut sum = Expr::Var("g0".into());
        for name in ["g1", "g2", "g3"] {
            sum = Expr::binary(BinOp::Add, sum, Expr::Var(name.into()));
        }
        for arr in ["a", "b"] {
            for k in 0..16 {
                sum = Expr::binary(
                    BinOp::Add,
                    sum,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::Elem {
                            arr: arr.into(),
                            index: Box::new(Expr::IntLit(k)),
                        },
                        Expr::IntLit(k + 1),
                    ),
                );
            }
        }
        body.stmts.push(Stmt::Return(Some(sum)));
        Module {
            globals: vec![
                GlobalDecl {
                    name: "a".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Array { len: 16 },
                },
                GlobalDecl {
                    name: "b".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Array { len: 16 },
                },
                GlobalDecl {
                    name: "g0".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(3.0) },
                },
                GlobalDecl {
                    name: "g1".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(-7.0) },
                },
                GlobalDecl {
                    name: "g2".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: None },
                },
                GlobalDecl {
                    name: "g3".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(1.0) },
                },
            ],
            funcs: vec![FnDecl {
                name: "main".into(),
                params: vec![],
                ret: Some(Ty::Int),
                body,
            }],
        }
    }
}

fn run(ast: Module, options: &CompileOptions) -> i64 {
    let program = compile_ast(ast, options).expect("generated programs compile");
    program.validate().expect("generated programs are valid");
    let mut exec = Executor::new(
        &program,
        ExecOptions {
            max_steps: 5_000_000,
            ..ExecOptions::default()
        },
    )
    .expect("program loads");
    exec.run().expect("generated programs terminate");
    exec.int_reg(supersym::isa::IntReg::new(1).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Optimization levels never change results.
    #[test]
    fn opt_levels_preserve_semantics(seed in any::<u64>()) {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::multititan();
        let reference = run(ast.clone(), &CompileOptions::new(OptLevel::O0, &machine));
        for level in OptLevel::ALL {
            let result = run(ast.clone(), &CompileOptions::new(level, &machine));
            prop_assert_eq!(result, reference, "level {} diverged", level);
        }
    }

    /// Scheduling for any machine never changes results.
    #[test]
    fn machines_preserve_semantics(seed in any::<u64>()) {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let reference = run(
            ast.clone(),
            &CompileOptions::new(OptLevel::O4, &presets::base()),
        );
        for machine in [
            presets::cray1(),
            presets::ideal_superscalar(8),
            presets::superpipelined(4),
            presets::superscalar_with_class_conflicts(2),
        ] {
            let result = run(ast.clone(), &CompileOptions::new(OptLevel::O4, &machine));
            prop_assert_eq!(result, reference, "machine {} diverged", machine.name());
        }
    }

    /// Loop unrolling (both flavors, several factors) never changes the
    /// results of integer programs.
    #[test]
    fn unrolling_preserves_semantics(seed in any::<u64>()) {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::multititan();
        let reference = run(ast.clone(), &CompileOptions::new(OptLevel::O4, &machine));
        for unroll in [
            UnrollOptions::naive(2),
            UnrollOptions::naive(5),
            UnrollOptions::careful(2),
            UnrollOptions::careful(5),
        ] {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_unroll(unroll);
            let result = run(ast.clone(), &options);
            prop_assert_eq!(result, reference, "{:?} diverged", unroll);
        }
    }

    /// Timing-model invariants on arbitrary instruction streams: issue
    /// times never decrease, completions respect latencies, and no cycle
    /// issues more than the machine width.
    #[test]
    fn timing_model_invariants(
        seed in any::<u64>(),
        width in 1u32..6,
        degree in 1u32..5,
    ) {
        use supersym::sim::{ControlEvent, StepInfo, TimingModel};
        use supersym::isa::{FpReg, InstrClass, IntReg, Reg};
        let machine = presets::superpipelined_superscalar(width, degree);
        let mut timing = TimingModel::new(&machine, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut last_issue = 0_u64;
        let mut issued_at: std::collections::HashMap<u64, u32> = Default::default();
        for pc in 0..200_usize {
            let class = InstrClass::ALL[rng.random_range(0..supersym::isa::NUM_CLASSES)];
            let def = if class.is_memory() || class.is_control() {
                None
            } else if class.index() >= InstrClass::FpAdd.index() {
                Some(Reg::Fp(FpReg::new_unchecked(rng.random_range(1..16))))
            } else {
                Some(Reg::Int(IntReg::new_unchecked(rng.random_range(1..16))))
            };
            let mem = class.is_memory().then(|| (rng.random_range(0..64_usize), class == InstrClass::Store));
            let control = if class == InstrClass::Branch {
                ControlEvent::Branch { taken: rng.random_bool(0.5) }
            } else {
                ControlEvent::None
            };
            let info = StepInfo {
                func: supersym::isa::FuncId::new(0),
                pc,
                class,
                uses: Default::default(),
                def,
                mem,
                vlen: 0,
                control,
            };
            let record = timing.issue(&info);
            prop_assert!(record.issue >= last_issue, "issue went backwards");
            prop_assert!(
                record.complete >= record.issue + u64::from(machine.latency(class)),
                "completion violates latency"
            );
            let count = issued_at.entry(record.issue).or_insert(0);
            *count += 1;
            prop_assert!(*count <= width, "cycle {} over width", record.issue);
            last_issue = record.issue;
        }
        prop_assert_eq!(timing.instructions(), 200);
    }

    /// The cache never reports more misses than accesses, and a repeated
    /// access pattern has a lower miss rate than its first pass.
    #[test]
    fn cache_invariants(seed in any::<u64>(), ways in 1usize..4) {
        use supersym::sim::{Cache, CacheConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = Cache::new(CacheConfig {
            lines: 16 * ways,
            words_per_line: 4,
            associativity: ways,
        });
        let pattern: Vec<u64> = (0..256).map(|_| rng.random_range(0..4096)).collect();
        for &addr in &pattern {
            cache.access(addr);
        }
        let first = cache.stats();
        prop_assert!(first.misses <= first.accesses);
        for &addr in &pattern {
            cache.access(addr);
        }
        let second = cache.stats();
        let second_pass_misses = second.misses - first.misses;
        prop_assert!(second_pass_misses <= first.misses);
    }

    /// Printing an AST and re-parsing it yields a semantically identical
    /// program (the printer is a fixed point of print-parse-print), even
    /// after the loop unroller has rewritten the tree.
    #[test]
    fn print_parse_roundtrip(seed in any::<u64>()) {
        let ast = Gen::new(seed).module();
        let printed = supersym::lang::print_module(&ast);
        let reparsed = supersym::lang::parse(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}
{printed}"));
        let reprinted = supersym::lang::print_module(&reparsed);
        prop_assert_eq!(&printed, &reprinted);
        // And the reparsed tree runs to the same checksum.
        supersym::lang::check(&reparsed).expect("printed programs type check");
        let machine = presets::base();
        let a = run(ast, &CompileOptions::new(OptLevel::O2, &machine));
        let b = run(reparsed, &CompileOptions::new(OptLevel::O2, &machine));
        prop_assert_eq!(a, b);
        // Unrolled trees print and reparse too.
        let mut unrolled = Gen::new(seed).module();
        supersym::opt::unroll_loops(&mut unrolled, UnrollOptions::careful(3));
        let printed = supersym::lang::print_module(&unrolled);
        supersym::lang::parse(&printed)
            .unwrap_or_else(|e| panic!("unrolled program failed to parse: {e}
{printed}"));
    }

    /// Simulating the same program twice is deterministic.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::cray1();
        let program = compile_ast(ast, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
        let a = supersym::sim::simulate(&program, &machine, SimOptions::default()).unwrap();
        let b = supersym::sim::simulate(&program, &machine, SimOptions::default()).unwrap();
        prop_assert_eq!(a.machine_cycles(), b.machine_cycles());
        prop_assert_eq!(a.instructions(), b.instructions());
    }
}

// ---------------------------------------------------------------------------
// IR-level and assembly-level properties
// ---------------------------------------------------------------------------

/// Builds a random single-block IR function over scalars, an array and
/// straight-line arithmetic (every operation total, indices masked), plus
/// the module around it.
fn random_ir_module(seed: u64) -> supersym::ir::Module {
    use supersym::ir::{
        Block, Function, GlobalId, GlobalInfo, GlobalKind, Inst, IntBinOp, Module, Terminator,
        VReg, VarRef,
    };
    use supersym::lang::ast::Ty;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut func = Function {
        name: "main".into(),
        vars: Vec::new(),
        ret: Some(Ty::Int),
        blocks: Vec::new(),
        vreg_tys: Vec::new(),
    };
    for k in 0..4 {
        func.new_local(format!("l{k}"), Ty::Int);
    }
    let mut insts: Vec<Inst> = Vec::new();
    let mut defined: Vec<VReg> = Vec::new();
    // Seed a few constants.
    for _ in 0..4 {
        let dst = func.new_vreg(Ty::Int);
        insts.push(Inst::ConstInt {
            dst,
            value: rng.random_range(-50..50),
        });
        defined.push(dst);
    }
    let n = rng.random_range(10..60);
    for _ in 0..n {
        match rng.random_range(0..10) {
            0 => {
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt {
                    dst,
                    value: rng.random_range(-100..100),
                });
                defined.push(dst);
            }
            1 | 2 => {
                let dst = func.new_vreg(Ty::Int);
                let var = if rng.random_bool(0.5) {
                    VarRef::Local(supersym::ir::LocalId(rng.random_range(0..4)))
                } else {
                    VarRef::Global(GlobalId(rng.random_range(0..2)))
                };
                insts.push(Inst::ReadVar { dst, var });
                defined.push(dst);
            }
            3 => {
                let var = if rng.random_bool(0.5) {
                    VarRef::Local(supersym::ir::LocalId(rng.random_range(0..4)))
                } else {
                    VarRef::Global(GlobalId(rng.random_range(0..2)))
                };
                let src = defined[rng.random_range(0..defined.len())];
                insts.push(Inst::WriteVar { var, src });
            }
            4 => {
                // Masked array read: index = some_vreg & 15.
                let raw = defined[rng.random_range(0..defined.len())];
                let mask = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt { dst: mask, value: 15 });
                let index = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin {
                    op: IntBinOp::And,
                    dst: index,
                    lhs: raw,
                    rhs: mask,
                });
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::ReadElem {
                    dst,
                    arr: GlobalId(2),
                    index,
                    origin: None,
                });
                defined.push(dst);
            }
            5 => {
                let raw = defined[rng.random_range(0..defined.len())];
                let mask = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt { dst: mask, value: 15 });
                let index = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin {
                    op: IntBinOp::And,
                    dst: index,
                    lhs: raw,
                    rhs: mask,
                });
                let src = defined[rng.random_range(0..defined.len())];
                insts.push(Inst::WriteElem {
                    arr: GlobalId(2),
                    index,
                    src,
                    origin: None,
                });
            }
            _ => {
                let ops = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::Div,
                    IntBinOp::Rem,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Shr,
                    IntBinOp::Cmp(supersym::ir::CmpOp::Lt),
                ];
                let op = ops[rng.random_range(0..ops.len())];
                let lhs = defined[rng.random_range(0..defined.len())];
                let rhs = defined[rng.random_range(0..defined.len())];
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin { op, dst, lhs, rhs });
                defined.push(dst);
            }
        }
    }
    let ret = defined[defined.len() - 1];
    func.blocks.push(Block {
        insts,
        term: Terminator::Return(Some(ret)),
    });
    Module {
        globals: vec![
            GlobalInfo {
                name: "g0".into(),
                ty: Ty::Int,
                kind: GlobalKind::Scalar { init: 11.0 },
            },
            GlobalInfo {
                name: "g1".into(),
                ty: Ty::Int,
                kind: GlobalKind::Scalar { init: -4.0 },
            },
            GlobalInfo {
                name: "arr".into(),
                ty: Ty::Int,
                kind: GlobalKind::Array { len: 16 },
            },
        ],
        funcs: vec![func],
        entry: 0,
    }
}

/// Runs an IR module through regalloc/codegen/exec; returns the result
/// register and the final global-region memory image.
fn run_ir(module: &supersym::ir::Module, schedule_for: Option<&supersym::machine::MachineConfig>) -> (i64, Vec<i64>) {
    use supersym::machine::RegisterSplit;
    let mut module = module.clone();
    supersym::codegen::split_live_across_calls(&mut module);
    module.validate().expect("random IR is valid");
    let homes = supersym::regalloc::allocate(&module, RegisterSplit::paper_default(), false);
    let mut program = supersym::codegen::lower_program(&module, &homes);
    if let Some(machine) = schedule_for {
        supersym::codegen::schedule_program(&mut program, machine);
    }
    program.validate().expect("lowered program is valid");
    let mut exec = Executor::new(&program, ExecOptions::default()).expect("loads");
    exec.run().expect("random IR programs terminate");
    let result = exec.int_reg(supersym::isa::IntReg::new(1).unwrap());
    let globals: Vec<i64> = (0..program.globals_words())
        .map(|a| exec.memory_word(a))
        .collect();
    (result, globals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Local value numbering + DCE + dead-store elimination preserve the
    /// observable behaviour of arbitrary straight-line IR.
    #[test]
    fn lvn_preserves_ir_semantics(seed in any::<u64>()) {
        let original = random_ir_module(seed);
        let mut optimized = original.clone();
        supersym::opt::run_local(&mut optimized);
        supersym::opt::dead_store_elimination(&mut optimized);
        optimized.validate().expect("optimized IR is valid");
        let a = run_ir(&original, None);
        let b = run_ir(&optimized, None);
        prop_assert_eq!(a, b);
    }

    /// The list scheduler never changes observable behaviour, for any
    /// machine it schedules toward.
    #[test]
    fn scheduling_preserves_ir_semantics(seed in any::<u64>()) {
        let module = random_ir_module(seed);
        let reference = run_ir(&module, None);
        for machine in [
            presets::base(),
            presets::multititan(),
            presets::cray1(),
            presets::ideal_superscalar(8),
        ] {
            let scheduled = run_ir(&module, Some(&machine));
            prop_assert_eq!(&scheduled, &reference, "diverged for {}", machine.name());
        }
    }

    /// LICM + the full global pipeline preserve semantics too (the random
    /// block has no loops, so this checks the passes are no-ops or safe).
    #[test]
    fn global_passes_safe_on_straightline_ir(seed in any::<u64>()) {
        let original = random_ir_module(seed);
        let mut optimized = original.clone();
        supersym::opt::run_local(&mut optimized);
        supersym::opt::run_global(&mut optimized);
        let a = run_ir(&original, None);
        let b = run_ir(&optimized, None);
        prop_assert_eq!(a, b);
    }
}
