//! Property-based tests: randomly generated Tital programs must behave
//! identically at every optimization level, under unrolling, and on every
//! machine; the timing model must satisfy its structural invariants on
//! arbitrary instruction streams; and the pipeline scheduler's output must
//! pass the independent `supersym-verify` legality checker.
//!
//! The generators are driven by the workspace's shared SplitMix64
//! ([`supersym::rng`] — the container builds offline, so no proptest):
//! each test loops over a fixed set of seeds, and every failure message
//! includes the seed for replay.

use supersym::lang::ast::{BinOp, Block, Expr, FnDecl, GlobalDecl, GlobalKind, Module, Stmt, Ty};
use supersym::machine::presets;
use supersym::opt::UnrollOptions;
use supersym::rng::SplitMix64;
use supersym::sim::{ExecOptions, Executor, SimOptions};
use supersym::{compile_ast, CompileOptions, OptLevel};

// ---------------------------------------------------------------------------
// Deterministic RNG (the shared splitmix64, with test-local conveniences)
// ---------------------------------------------------------------------------

/// Test-local conveniences over the shared [`SplitMix64`] stream.
struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `0..n` (modulo bias is irrelevant at test scale).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `lo..hi`.
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 0
    }
}

// ---------------------------------------------------------------------------
// Random-program generator
// ---------------------------------------------------------------------------

/// Generates a random — but always well-defined — Tital program. Array
/// indices are masked into range, integer division/remainder and shifts
/// are total by language definition, and only integer arithmetic feeds the
/// checksum, so every generated program has one deterministic result at
/// every optimization level.
struct Gen {
    rng: Rng,
    depth_budget: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: Rng::new(seed),
            depth_budget: 300,
        }
    }

    fn var(&mut self) -> String {
        format!("g{}", self.rng.below(4))
    }

    fn arr(&mut self) -> String {
        if self.rng.coin() {
            "a".to_string()
        } else {
            "b".to_string()
        }
    }

    fn expr(&mut self, depth: u32) -> Expr {
        self.depth_budget = self.depth_budget.saturating_sub(1);
        if depth == 0 || self.depth_budget == 0 {
            return match self.rng.below(3) {
                0 => Expr::IntLit(self.rng.range_i64(-30, 30)),
                1 => Expr::Var(self.var()),
                _ => Expr::Elem {
                    arr: self.arr(),
                    index: Box::new(self.masked_index(0)),
                },
            };
        }
        match self.rng.below(8) {
            0 => Expr::IntLit(self.rng.range_i64(-100, 100)),
            1 => Expr::Var(self.var()),
            2 => Expr::Elem {
                arr: self.arr(),
                index: Box::new(self.masked_index(depth - 1)),
            },
            _ => {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Lt,
                    BinOp::Eq,
                ][self.rng.below(10) as usize];
                Expr::binary(op, self.expr(depth - 1), self.expr(depth - 1))
            }
        }
    }

    /// An index expression guaranteed to land in `0..16`.
    fn masked_index(&mut self, depth: u32) -> Expr {
        Expr::binary(BinOp::And, self.expr(depth), Expr::IntLit(15))
    }

    fn stmt(&mut self, depth: u32) -> Stmt {
        self.depth_budget = self.depth_budget.saturating_sub(1);
        let choice = if depth == 0 || self.depth_budget == 0 {
            self.rng.below(2)
        } else {
            self.rng.below(5)
        };
        match choice {
            0 => Stmt::Assign {
                name: self.var(),
                value: self.expr(2),
            },
            1 => Stmt::AssignElem {
                arr: self.arr(),
                index: self.masked_index(1),
                value: self.expr(2),
            },
            2 => Stmt::If {
                cond: self.expr(2),
                then_blk: self.block(depth - 1),
                else_blk: if self.rng.coin() {
                    Some(self.block(depth - 1))
                } else {
                    None
                },
            },
            3 => {
                // A counted loop in canonical form so the unroller sees it.
                let trips = self.rng.range_i64(1, 9);
                let var = format!("i{}", self.rng.below(100));
                Stmt::For {
                    cond: Expr::binary(BinOp::Lt, Expr::Var(var.clone()), Expr::IntLit(trips)),
                    var,
                    init: Expr::IntLit(0),
                    step: 1,
                    body: self.block(depth - 1),
                }
            }
            _ => Stmt::Assign {
                name: self.var(),
                value: self.expr(3),
            },
        }
    }

    fn block(&mut self, depth: u32) -> Block {
        let n = 1 + self.rng.below(3);
        Block {
            stmts: (0..n).map(|_| self.stmt(depth)).collect(),
        }
    }

    fn module(&mut self) -> Module {
        let mut body = self.block(3);
        // Checksum over everything observable.
        let mut sum = Expr::Var("g0".into());
        for name in ["g1", "g2", "g3"] {
            sum = Expr::binary(BinOp::Add, sum, Expr::Var(name.into()));
        }
        for arr in ["a", "b"] {
            for k in 0..16 {
                sum = Expr::binary(
                    BinOp::Add,
                    sum,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::Elem {
                            arr: arr.into(),
                            index: Box::new(Expr::IntLit(k)),
                        },
                        Expr::IntLit(k + 1),
                    ),
                );
            }
        }
        body.stmts.push(Stmt::Return(Some(sum)));
        Module {
            globals: vec![
                GlobalDecl {
                    name: "a".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Array { len: 16 },
                },
                GlobalDecl {
                    name: "b".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Array { len: 16 },
                },
                GlobalDecl {
                    name: "g0".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(3.0) },
                },
                GlobalDecl {
                    name: "g1".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(-7.0) },
                },
                GlobalDecl {
                    name: "g2".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: None },
                },
                GlobalDecl {
                    name: "g3".into(),
                    ty: Ty::Int,
                    kind: GlobalKind::Scalar { init: Some(1.0) },
                },
            ],
            funcs: vec![FnDecl {
                name: "main".into(),
                params: vec![],
                ret: Some(Ty::Int),
                body,
            }],
        }
    }
}

fn run(ast: Module, options: &CompileOptions) -> i64 {
    let program = compile_ast(ast, options).expect("generated programs compile");
    program.validate().expect("generated programs are valid");
    let mut exec = Executor::new(
        &program,
        ExecOptions {
            max_steps: 5_000_000,
            ..ExecOptions::default()
        },
    )
    .expect("program loads");
    exec.run().expect("generated programs terminate");
    exec.int_reg(supersym::isa::IntReg::new(1).unwrap())
}

const AST_SEEDS: std::ops::Range<u64> = 0..24;

/// Optimization levels never change results.
#[test]
fn opt_levels_preserve_semantics() {
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::multititan();
        let reference = run(ast.clone(), &CompileOptions::new(OptLevel::O0, &machine));
        for level in OptLevel::ALL {
            let result = run(ast.clone(), &CompileOptions::new(level, &machine));
            assert_eq!(result, reference, "seed {seed}: level {level} diverged");
        }
    }
}

/// Scheduling for any machine never changes results.
#[test]
fn machines_preserve_semantics() {
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let reference = run(
            ast.clone(),
            &CompileOptions::new(OptLevel::O4, &presets::base()),
        );
        for machine in [
            presets::cray1(),
            presets::ideal_superscalar(8),
            presets::superpipelined(4),
            presets::superscalar_with_class_conflicts(2),
        ] {
            let result = run(ast.clone(), &CompileOptions::new(OptLevel::O4, &machine));
            assert_eq!(
                result,
                reference,
                "seed {seed}: machine {} diverged",
                machine.name()
            );
        }
    }
}

/// Loop unrolling (both flavors, several factors) never changes the
/// results of integer programs.
#[test]
fn unrolling_preserves_semantics() {
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::multititan();
        let reference = run(ast.clone(), &CompileOptions::new(OptLevel::O4, &machine));
        for unroll in [
            UnrollOptions::naive(2),
            UnrollOptions::naive(5),
            UnrollOptions::careful(2),
            UnrollOptions::careful(5),
        ] {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_unroll(unroll);
            let result = run(ast.clone(), &options);
            assert_eq!(result, reference, "seed {seed}: {unroll:?} diverged");
        }
    }
}

/// Timing-model invariants on arbitrary instruction streams: issue
/// times never decrease, completions respect latencies, and no cycle
/// issues more than the machine width.
#[test]
fn timing_model_invariants() {
    use supersym::isa::{FpReg, InstrClass, IntReg, Reg};
    use supersym::sim::{ControlEvent, StepInfo, TimingModel};
    for seed in 0..24_u64 {
        let width = 1 + (seed % 5) as u32;
        let degree = 1 + (seed / 5 % 4) as u32;
        let machine = presets::superpipelined_superscalar(width, degree);
        let mut timing = TimingModel::new(&machine, 64);
        let mut rng = Rng::new(seed);
        let mut last_issue = 0_u64;
        let mut issued_at: std::collections::HashMap<u64, u32> = Default::default();
        for pc in 0..200_usize {
            let class = InstrClass::ALL[rng.below(supersym::isa::NUM_CLASSES as u64) as usize];
            let def = if class.is_memory() || class.is_control() {
                None
            } else if class.index() >= InstrClass::FpAdd.index() {
                Some(Reg::Fp(FpReg::new_unchecked(1 + rng.below(15) as u8)))
            } else {
                Some(Reg::Int(IntReg::new_unchecked(1 + rng.below(15) as u8)))
            };
            let mem = class
                .is_memory()
                .then(|| (rng.below(64) as usize, class == InstrClass::Store));
            let control = if class == InstrClass::Branch {
                ControlEvent::Branch { taken: rng.coin() }
            } else {
                ControlEvent::None
            };
            let info = StepInfo {
                func: supersym::isa::FuncId::new(0),
                pc,
                class,
                uses: Default::default(),
                def,
                mem,
                vlen: 0,
                control,
            };
            let record = timing.issue(&info);
            assert!(
                record.issue >= last_issue,
                "seed {seed}: issue went backwards"
            );
            assert!(
                record.complete >= record.issue + u64::from(machine.latency(class)),
                "seed {seed}: completion violates latency"
            );
            let count = issued_at.entry(record.issue).or_insert(0);
            *count += 1;
            assert!(
                *count <= width,
                "seed {seed}: cycle {} over width",
                record.issue
            );
            last_issue = record.issue;
        }
        assert_eq!(timing.instructions(), 200);
    }
}

/// The cache never reports more misses than accesses, and a repeated
/// access pattern has a lower miss rate than its first pass.
#[test]
fn cache_invariants() {
    use supersym::sim::{Cache, CacheConfig};
    for seed in 0..24_u64 {
        let ways = 1 + (seed % 3) as usize;
        let mut rng = Rng::new(seed);
        let mut cache = Cache::new(CacheConfig {
            lines: 16 * ways,
            words_per_line: 4,
            associativity: ways,
        });
        let pattern: Vec<u64> = (0..256).map(|_| rng.below(4096)).collect();
        for &addr in &pattern {
            cache.access(addr);
        }
        let first = cache.stats();
        assert!(first.misses <= first.accesses, "seed {seed}");
        for &addr in &pattern {
            cache.access(addr);
        }
        let second = cache.stats();
        let second_pass_misses = second.misses - first.misses;
        assert!(second_pass_misses <= first.misses, "seed {seed}");
    }
}

/// Printing an AST and re-parsing it yields a semantically identical
/// program (the printer is a fixed point of print-parse-print), even
/// after the loop unroller has rewritten the tree.
#[test]
fn print_parse_roundtrip() {
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        let printed = supersym::lang::print_module(&ast);
        let reparsed = supersym::lang::parse(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: printed program failed to parse: {e}\n{printed}")
        });
        let reprinted = supersym::lang::print_module(&reparsed);
        assert_eq!(&printed, &reprinted, "seed {seed}");
        // And the reparsed tree runs to the same checksum.
        supersym::lang::check(&reparsed).expect("printed programs type check");
        let machine = presets::base();
        let a = run(ast, &CompileOptions::new(OptLevel::O2, &machine));
        let b = run(reparsed, &CompileOptions::new(OptLevel::O2, &machine));
        assert_eq!(a, b, "seed {seed}");
        // Unrolled trees print and reparse too.
        let mut unrolled = Gen::new(seed).module();
        supersym::opt::unroll_loops(&mut unrolled, UnrollOptions::careful(3));
        let printed = supersym::lang::print_module(&unrolled);
        supersym::lang::parse(&printed).unwrap_or_else(|e| {
            panic!("seed {seed}: unrolled program failed to parse: {e}\n{printed}")
        });
    }
}

/// Simulating the same program twice is deterministic.
#[test]
fn simulation_is_deterministic() {
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        supersym::lang::check(&ast).expect("generated programs type check");
        let machine = presets::cray1();
        let program = compile_ast(ast, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
        let a = supersym::sim::simulate(&program, &machine, SimOptions::default()).unwrap();
        let b = supersym::sim::simulate(&program, &machine, SimOptions::default()).unwrap();
        assert_eq!(a.machine_cycles(), b.machine_cycles(), "seed {seed}");
        assert_eq!(a.instructions(), b.instructions(), "seed {seed}");
    }
}

/// The whole pipeline is deterministic end to end: compiling and
/// simulating the same workload twice — two fully independent pipeline
/// runs, not two simulations of one compiled program — yields
/// byte-identical scheduled code and byte-identical reports, on every
/// paper preset. This is the torture harness's run-to-run contract,
/// pinned as a property test over real machines rather than mutants.
#[test]
fn pipeline_is_deterministic_end_to_end() {
    let workload = supersym::workloads::suite(supersym::workloads::Size::Small)
        .into_iter()
        .next()
        .expect("suite is non-empty");
    for machine in all_preset_machines() {
        let fingerprint = || {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_verify(true);
            let program = supersym::compile(&workload.source, &options)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
            let report =
                supersym::sim::simulate(&program, &machine, SimOptions::default()).unwrap();
            format!(
                "{program}\n{} {} {} {:?} {:?}",
                report.machine(),
                report.instructions(),
                report.machine_cycles(),
                report.base_cycles(),
                report.census()
            )
        };
        assert_eq!(fingerprint(), fingerprint(), "{}", machine.name());
    }
}

// ---------------------------------------------------------------------------
// IR-level and assembly-level properties
// ---------------------------------------------------------------------------

/// Builds a random single-block IR function over scalars, an array and
/// straight-line arithmetic (every operation total, indices masked), plus
/// the module around it.
fn random_ir_module(seed: u64) -> supersym::ir::Module {
    use supersym::ir::{
        Block, Function, GlobalId, GlobalInfo, GlobalKind, Inst, IntBinOp, Module, Terminator,
        VReg, VarRef,
    };
    use supersym::lang::ast::Ty;
    let mut rng = Rng::new(seed);
    let mut func = Function {
        name: "main".into(),
        vars: Vec::new(),
        ret: Some(Ty::Int),
        blocks: Vec::new(),
        vreg_tys: Vec::new(),
    };
    for k in 0..4 {
        func.new_local(format!("l{k}"), Ty::Int);
    }
    let mut insts: Vec<Inst> = Vec::new();
    let mut defined: Vec<VReg> = Vec::new();
    // Seed a few constants.
    for _ in 0..4 {
        let dst = func.new_vreg(Ty::Int);
        insts.push(Inst::ConstInt {
            dst,
            value: rng.range_i64(-50, 50),
        });
        defined.push(dst);
    }
    let n = rng.range_i64(10, 60);
    for _ in 0..n {
        match rng.below(10) {
            0 => {
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt {
                    dst,
                    value: rng.range_i64(-100, 100),
                });
                defined.push(dst);
            }
            1 | 2 => {
                let dst = func.new_vreg(Ty::Int);
                let var = if rng.coin() {
                    VarRef::Local(supersym::ir::LocalId(rng.below(4) as u32))
                } else {
                    VarRef::Global(GlobalId(rng.below(2) as u32))
                };
                insts.push(Inst::ReadVar { dst, var });
                defined.push(dst);
            }
            3 => {
                let var = if rng.coin() {
                    VarRef::Local(supersym::ir::LocalId(rng.below(4) as u32))
                } else {
                    VarRef::Global(GlobalId(rng.below(2) as u32))
                };
                let src = defined[rng.below(defined.len() as u64) as usize];
                insts.push(Inst::WriteVar { var, src });
            }
            4 => {
                // Masked array read: index = some_vreg & 15.
                let raw = defined[rng.below(defined.len() as u64) as usize];
                let mask = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt {
                    dst: mask,
                    value: 15,
                });
                let index = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin {
                    op: IntBinOp::And,
                    dst: index,
                    lhs: raw,
                    rhs: mask,
                });
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::ReadElem {
                    dst,
                    arr: GlobalId(2),
                    index,
                    origin: None,
                });
                defined.push(dst);
            }
            5 => {
                let raw = defined[rng.below(defined.len() as u64) as usize];
                let mask = func.new_vreg(Ty::Int);
                insts.push(Inst::ConstInt {
                    dst: mask,
                    value: 15,
                });
                let index = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin {
                    op: IntBinOp::And,
                    dst: index,
                    lhs: raw,
                    rhs: mask,
                });
                let src = defined[rng.below(defined.len() as u64) as usize];
                insts.push(Inst::WriteElem {
                    arr: GlobalId(2),
                    index,
                    src,
                    origin: None,
                });
            }
            _ => {
                let ops = [
                    IntBinOp::Add,
                    IntBinOp::Sub,
                    IntBinOp::Mul,
                    IntBinOp::Div,
                    IntBinOp::Rem,
                    IntBinOp::And,
                    IntBinOp::Or,
                    IntBinOp::Xor,
                    IntBinOp::Shl,
                    IntBinOp::Shr,
                    IntBinOp::Cmp(supersym::ir::CmpOp::Lt),
                ];
                let op = ops[rng.below(ops.len() as u64) as usize];
                let lhs = defined[rng.below(defined.len() as u64) as usize];
                let rhs = defined[rng.below(defined.len() as u64) as usize];
                let dst = func.new_vreg(Ty::Int);
                insts.push(Inst::IntBin { op, dst, lhs, rhs });
                defined.push(dst);
            }
        }
    }
    let ret = defined[defined.len() - 1];
    func.blocks.push(Block {
        insts,
        term: Terminator::Return(Some(ret)),
    });
    Module {
        globals: vec![
            GlobalInfo {
                name: "g0".into(),
                ty: Ty::Int,
                kind: GlobalKind::Scalar { init: 11.0 },
            },
            GlobalInfo {
                name: "g1".into(),
                ty: Ty::Int,
                kind: GlobalKind::Scalar { init: -4.0 },
            },
            GlobalInfo {
                name: "arr".into(),
                ty: Ty::Int,
                kind: GlobalKind::Array { len: 16 },
            },
        ],
        funcs: vec![func],
        entry: 0,
    }
}

/// Runs an IR module through regalloc/codegen/exec; returns the result
/// register and the final global-region memory image.
fn run_ir(
    module: &supersym::ir::Module,
    schedule_for: Option<&supersym::machine::MachineConfig>,
) -> (i64, Vec<i64>) {
    use supersym::machine::RegisterSplit;
    let mut module = module.clone();
    supersym::codegen::split_live_across_calls(&mut module);
    module.validate().expect("random IR is valid");
    let homes = supersym::regalloc::allocate(&module, RegisterSplit::paper_default(), false);
    let mut program = supersym::codegen::lower_program(&module, &homes);
    if let Some(machine) = schedule_for {
        supersym::codegen::schedule_program(&mut program, machine);
    }
    program.validate().expect("lowered program is valid");
    let mut exec = Executor::new(&program, ExecOptions::default()).expect("loads");
    exec.run().expect("random IR programs terminate");
    let result = exec.int_reg(supersym::isa::IntReg::new(1).unwrap());
    let globals: Vec<i64> = (0..program.globals_words())
        .map(|a| exec.memory_word(a))
        .collect();
    (result, globals)
}

const IR_SEEDS: std::ops::Range<u64> = 0..32;

/// Local value numbering + DCE + dead-store elimination preserve the
/// observable behaviour of arbitrary straight-line IR.
#[test]
fn lvn_preserves_ir_semantics() {
    for seed in IR_SEEDS {
        let original = random_ir_module(seed);
        let mut optimized = original.clone();
        supersym::opt::run_local(&mut optimized);
        supersym::opt::dead_store_elimination(&mut optimized);
        optimized.validate().expect("optimized IR is valid");
        let a = run_ir(&original, None);
        let b = run_ir(&optimized, None);
        assert_eq!(a, b, "seed {seed}");
    }
}

/// The list scheduler never changes observable behaviour, for any
/// machine it schedules toward.
#[test]
fn scheduling_preserves_ir_semantics() {
    for seed in IR_SEEDS {
        let module = random_ir_module(seed);
        let reference = run_ir(&module, None);
        for machine in [
            presets::base(),
            presets::multititan(),
            presets::cray1(),
            presets::ideal_superscalar(8),
        ] {
            let scheduled = run_ir(&module, Some(&machine));
            assert_eq!(
                &scheduled,
                &reference,
                "seed {seed}: diverged for {}",
                machine.name()
            );
        }
    }
}

/// LICM + the full global pipeline preserve semantics too (the random
/// block has no loops, so this checks the passes are no-ops or safe).
#[test]
fn global_passes_safe_on_straightline_ir() {
    for seed in IR_SEEDS {
        let original = random_ir_module(seed);
        let mut optimized = original.clone();
        supersym::opt::run_local(&mut optimized);
        supersym::opt::run_global(&mut optimized);
        let a = run_ir(&original, None);
        let b = run_ir(&optimized, None);
        assert_eq!(a, b, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Verification-layer properties (supersym-verify)
// ---------------------------------------------------------------------------

/// Builds a random straight-line (no control flow) machine-code region.
/// Registers stay inside the temporary range, memory references mix known
/// and unknown aliases so both dependence rules get exercised.
fn random_region(rng: &mut Rng, len: usize) -> Vec<supersym::isa::Instr> {
    use supersym::isa::{FpOp, FpReg, Instr, IntOp, IntReg, MemAlias, Operand};
    let int = |r: u64| IntReg::new_unchecked(1 + (r % 20) as u8);
    let fp = |r: u64| FpReg::new_unchecked(1 + (r % 10) as u8);
    let alias = |rng: &mut Rng| match rng.below(3) {
        0 => MemAlias::unknown(),
        1 => MemAlias::global(rng.below(3) as u32).with_offset(rng.range_i64(0, 8)),
        _ => MemAlias::global(rng.below(3) as u32),
    };
    let int_ops = [
        IntOp::Add,
        IntOp::Sub,
        IntOp::Mul,
        IntOp::Div,
        IntOp::And,
        IntOp::Sll,
        IntOp::CmpLt,
    ];
    (0..len)
        .map(|_| match rng.below(8) {
            0 => Instr::MovI {
                dst: int(rng.next()),
                imm: rng.range_i64(-100, 100),
            },
            1 => Instr::Load {
                dst: int(rng.next()),
                base: IntReg::GP,
                offset: rng.range_i64(0, 16),
                alias: alias(rng),
            },
            2 => Instr::Store {
                src: int(rng.next()),
                base: IntReg::GP,
                offset: rng.range_i64(0, 16),
                alias: alias(rng),
            },
            3 => Instr::FpOp {
                op: [FpOp::FAdd, FpOp::FMul, FpOp::FDiv][rng.below(3) as usize],
                dst: fp(rng.next()),
                lhs: fp(rng.next()),
                rhs: fp(rng.next()),
            },
            4 => Instr::IToF {
                dst: fp(rng.next()),
                src: int(rng.next()),
            },
            _ => Instr::IntOp {
                op: int_ops[rng.below(int_ops.len() as u64) as usize],
                dst: int(rng.next()),
                lhs: int(rng.next()),
                rhs: if rng.coin() {
                    Operand::Reg(int(rng.next()))
                } else {
                    Operand::Imm(rng.range_i64(-50, 50))
                },
            },
        })
        .collect()
}

/// Every paper preset machine, including the shaped/limited ones.
fn all_preset_machines() -> Vec<supersym::machine::MachineConfig> {
    vec![
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::vliw(4),
        presets::ideal_superscalar(2),
        presets::ideal_superscalar(8),
        presets::superpipelined(4),
        presets::superpipelined_superscalar(2, 2),
        presets::superscalar_with_class_conflicts(4),
        presets::underpipelined_slow_cycle(),
        presets::underpipelined_half_issue(),
    ]
}

/// The pipeline scheduler's output always passes the independent legality
/// checker: a permutation of the input with every RAW/WAR/WAW and memory
/// dependence order-preserved — for random regions on every preset machine.
#[test]
fn scheduler_output_always_passes_legality_checker() {
    use supersym::isa::{Function, Instr, Program};
    let machines = all_preset_machines();
    for seed in 0..48_u64 {
        let mut rng = Rng::new(seed);
        let len = 2 + rng.below(24) as usize;
        let mut instrs = random_region(&mut rng, len);
        instrs.push(Instr::Halt);
        let mut before = Program::new();
        let id = before.add_function(Function::new("region", instrs, vec![0]));
        before.set_entry(id);
        for machine in &machines {
            let mut after = before.clone();
            supersym::codegen::schedule_program(&mut after, machine);
            let violations = supersym::verify::check_schedule(&before, &after);
            assert!(
                violations.is_empty(),
                "seed {seed} on {}: {:?}",
                machine.name(),
                violations
            );
        }
    }
}

/// The cycle-account conservation invariant: on every preset machine, for
/// random scheduled regions, every machine cycle is charged to exactly one
/// of issue, a stall cause, or pipeline drain — the account balances
/// *exactly*, and two runs of the same program produce identical accounts
/// and critical-producer tables.
#[test]
fn cycle_account_conserves_and_is_deterministic() {
    use supersym::isa::{Function, Instr, Program};
    use supersym::sim::simulate;
    let machines = all_preset_machines();
    for seed in 100..124_u64 {
        let mut rng = Rng::new(seed);
        let len = 2 + rng.below(24) as usize;
        let mut instrs = random_region(&mut rng, len);
        instrs.push(Instr::Halt);
        let mut program = Program::new();
        let id = program.add_function(Function::new("region", instrs, vec![0]));
        program.set_entry(id);
        for machine in &machines {
            let mut scheduled = program.clone();
            supersym::codegen::schedule_program(&mut scheduled, machine);
            let first = simulate(&scheduled, machine, SimOptions::default());
            let second = simulate(&scheduled, machine, SimOptions::default());
            let (first, second) = match (first, second) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(a), Err(b)) => {
                    // Random regions may trap (e.g. divide by zero); the
                    // trap itself must still be deterministic.
                    assert_eq!(a.to_string(), b.to_string(), "seed {seed}");
                    continue;
                }
                (a, b) => panic!(
                    "seed {seed} on {}: nondeterministic outcome {a:?} vs {b:?}",
                    machine.name()
                ),
            };
            let account = first.cycle_account();
            assert!(
                account.conserved(),
                "seed {seed} on {}: {account:?}",
                machine.name()
            );
            assert_eq!(
                account.issue_cycles() + account.total_stall_cycles() + account.drain_cycles(),
                account.machine_cycles(),
                "seed {seed} on {}: cycles leaked",
                machine.name()
            );
            assert_eq!(
                account,
                second.cycle_account(),
                "seed {seed} on {}: account not deterministic",
                machine.name()
            );
            assert_eq!(
                first.critical_producers(),
                second.critical_producers(),
                "seed {seed} on {}: producer table not deterministic",
                machine.name()
            );
        }
    }
}

/// The block timing cache is bit-exact, not approximate: with the cache
/// on and off, every preset machine produces byte-identical reports —
/// cycle account, machine cycles, instruction count, census, and
/// critical-producer table — on real loop workloads (dense replay
/// traffic), random scheduled regions, and torture-mutated source
/// programs (which hit the fallback and overflow paths). Errors must
/// also agree: a trapped or fuel-exhausted run traps identically.
#[test]
fn block_cache_is_bit_exact_on_all_presets() {
    use supersym::isa::{Function, Instr, Program};
    use supersym::sim::simulate;
    use supersym_torture::mutate::mutate_source;

    let machines = all_preset_machines();
    let exec = ExecOptions {
        memory_words: 1 << 16,
        max_steps: 200_000,
        ..ExecOptions::default()
    };
    let cached = SimOptions {
        exec,
        block_cache: true,
    };
    let exact = SimOptions {
        exec,
        block_cache: false,
    };
    let differ = |label: &str, machine: &supersym::machine::MachineConfig, program: &Program| {
        let a = simulate(program, machine, cached);
        let b = simulate(program, machine, exact);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.cycle_account(),
                    b.cycle_account(),
                    "{label} on {}: cycle accounts diverge",
                    machine.name()
                );
                assert_eq!(
                    a.machine_cycles(),
                    b.machine_cycles(),
                    "{label} on {}: machine cycles diverge",
                    machine.name()
                );
                assert_eq!(
                    a.instructions(),
                    b.instructions(),
                    "{label} on {}: instruction counts diverge",
                    machine.name()
                );
                assert_eq!(
                    a.census(),
                    b.census(),
                    "{label} on {}: censuses diverge",
                    machine.name()
                );
                assert_eq!(
                    a.critical_producers(),
                    b.critical_producers(),
                    "{label} on {}: producer tables diverge",
                    machine.name()
                );
                true
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{label} on {}: errors diverge",
                    machine.name()
                );
                false
            }
            (a, b) => panic!(
                "{label} on {}: cached/exact outcomes diverge: {a:?} vs {b:?}",
                machine.name()
            ),
        }
    };

    // Real loop workloads: nested loops, calls, vector code.
    let workloads = [
        ("linpack8", supersym::workloads::linpack(8).source),
        ("livermore32", supersym::workloads::livermore(32, 1).source),
        ("whet1", supersym::workloads::whet(1).source),
    ];
    let mut compared = 0_u32;
    for machine in &machines {
        for (label, source) in &workloads {
            let program = supersym::compile(source, &CompileOptions::new(OptLevel::O4, machine))
                .expect("paper workloads compile");
            if differ(label, machine, &program) {
                compared += 1;
            }
        }
    }
    assert_eq!(compared, 33, "every workload ran on every preset");

    // Random scheduled regions (straight-line, single trace).
    for seed in 300..316_u64 {
        let mut rng = Rng::new(seed);
        let len = 2 + rng.below(24) as usize;
        let mut instrs = random_region(&mut rng, len);
        instrs.push(Instr::Halt);
        let mut program = Program::new();
        let id = program.add_function(Function::new("region", instrs, vec![0]));
        program.set_entry(id);
        for machine in &machines {
            let mut scheduled = program.clone();
            supersym::codegen::schedule_program(&mut scheduled, machine);
            differ(&format!("region{seed}"), machine, &scheduled);
        }
    }

    // Torture-mutated sources: irregular control flow, traps, and
    // fuel exhaustion. Only mutants that still compile are compared.
    let mut rng = SplitMix64::new(0x0010_CACE);
    let mut mutants_run = 0_u32;
    for index in 0..48_u32 {
        let source = mutate_source(&mut rng, &[]).to_text();
        for machine in &machines {
            let Ok(program) =
                supersym::compile(&source, &CompileOptions::new(OptLevel::O4, machine))
            else {
                continue;
            };
            differ(&format!("mutant{index}"), machine, &program);
            mutants_run += 1;
        }
    }
    assert!(
        mutants_run >= 11,
        "mutant corpus barely compiled anywhere: {mutants_run} runs"
    );
}

/// All paper presets pass the machine-description lint with no errors.
#[test]
fn paper_presets_pass_machine_lint() {
    use supersym::verify::Severity;
    for machine in all_preset_machines() {
        let diagnostics = machine.validate();
        let errors: Vec<_> = diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", machine.name());
    }
}

// ---------------------------------------------------------------------------
// Dependence-oracle properties (supersym-analyze)
// ---------------------------------------------------------------------------

/// Sharpening the dependence oracle is invisible to the program: on every
/// paper preset machine, compiling with the symbolic oracle yields a
/// schedule that passes the in-pipeline legality check
/// (`check_schedule_with` runs when `verify` is on) and executes to
/// exactly the architectural result of the conservative-oracle compile.
/// Also asserts the corpus exercises real scheduling work: at least 48
/// multi-instruction scheduling regions per preset.
#[test]
fn oracle_sharpening_preserves_semantics() {
    use supersym::analyze::{scheduling_regions, OracleKind};
    let machines = all_preset_machines();
    for machine in &machines {
        let mut sharpened_regions = 0_usize;
        for seed in AST_SEEDS {
            let ast = Gen::new(seed).module();
            supersym::lang::check(&ast).expect("generated programs type check");
            let conservative = run(
                ast.clone(),
                &CompileOptions::new(OptLevel::O4, machine)
                    .with_verify(true)
                    .with_oracle(OracleKind::Conservative),
            );
            // Compile the symbolic side by hand so the scheduled program is
            // on hand for region counting; `verify` makes the pipeline check
            // the sharpened schedule against the symbolic oracle before it
            // ever executes.
            let options = CompileOptions::new(OptLevel::O4, machine)
                .with_verify(true)
                .with_oracle(OracleKind::Symbolic);
            let program = compile_ast(ast, &options).expect("generated programs compile");
            program.validate().expect("generated programs are valid");
            for func in program.functions() {
                sharpened_regions += scheduling_regions(func)
                    .iter()
                    .filter(|(lo, hi)| hi - lo >= 2)
                    .count();
            }
            let mut exec = Executor::new(
                &program,
                ExecOptions {
                    max_steps: 5_000_000,
                    ..ExecOptions::default()
                },
            )
            .expect("program loads");
            exec.run().expect("generated programs terminate");
            let symbolic = exec.int_reg(supersym::isa::IntReg::new(1).unwrap());
            assert_eq!(
                symbolic,
                conservative,
                "seed {seed} on {}: oracle sharpening changed the result",
                machine.name()
            );
        }
        assert!(
            sharpened_regions >= 48,
            "{}: expected at least 48 multi-instruction scheduling regions, saw {sharpened_regions}",
            machine.name()
        );
    }
}

/// Both oracles' schedules pass a legality checker pinned to the same
/// oracle, and — because symbolic memory edges are a strict subset of
/// conservative ones — every conservative schedule is also accepted by
/// the sharper symbolic checker.
#[test]
fn oracle_schedules_pass_matching_checkers() {
    use supersym::analyze::OracleKind;
    use supersym::codegen::schedule_program_with;
    use supersym::isa::{Function, Instr, Program};
    use supersym::verify::check_schedule_with;
    let machines = all_preset_machines();
    for seed in 0..48_u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x5DEE_CE66)); // decorrelate from other tests
        let len = 2 + rng.below(24) as usize;
        let mut instrs = random_region(&mut rng, len);
        instrs.push(Instr::Halt);
        let mut before = Program::new();
        let id = before.add_function(Function::new("region", instrs, vec![0]));
        before.set_entry(id);
        for machine in &machines {
            for (scheduler, checkers) in [
                (
                    OracleKind::Conservative.as_loop_oracle(),
                    // Conservative schedules satisfy both checkers.
                    vec![
                        OracleKind::Conservative.as_loop_oracle(),
                        OracleKind::Symbolic.as_loop_oracle(),
                    ],
                ),
                (
                    OracleKind::Symbolic.as_loop_oracle(),
                    vec![OracleKind::Symbolic.as_loop_oracle()],
                ),
            ] {
                let mut after = before.clone();
                schedule_program_with(&mut after, machine, scheduler);
                for checker in checkers {
                    let violations = check_schedule_with(&before, &after, checker);
                    assert!(
                        violations.is_empty(),
                        "seed {seed} on {}: {violations:?}",
                        machine.name()
                    );
                }
            }
        }
    }
}

/// The verified rewrite-rule table is a pure optimization: on every paper
/// preset, every suite workload compiled with the table disabled and
/// enabled produces the identical executor result. This is the
/// rules-on/rules-off differential over real programs — the synthesized
/// rules are proven algebraically by the certifiers, and this checks the
/// whole consumption path (matcher, LVN integration, reassociation
/// gating) end to end on top of that.
#[test]
fn rule_table_preserves_semantics_on_every_preset() {
    use supersym::workloads::{suite, Size};
    let machines = all_preset_machines();
    for workload in &suite(Size::Small) {
        for machine in &machines {
            let mut results = [0_i64; 2];
            for (slot, rules) in [(0, false), (1, true)] {
                let options = CompileOptions::new(OptLevel::O4, machine).with_rules(rules);
                let program = supersym::compile(&workload.source, &options)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, machine.name()));
                let mut exec = Executor::new(
                    &program,
                    ExecOptions {
                        max_steps: 20_000_000,
                        ..ExecOptions::default()
                    },
                )
                .expect("workload loads");
                exec.run()
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, machine.name()));
                results[slot] = exec.int_reg(supersym::isa::IntReg::new(1).unwrap());
            }
            assert_eq!(
                results[0],
                results[1],
                "{} on {}: rules changed the result",
                workload.name,
                machine.name()
            );
        }
    }
}

/// The translation validator has zero false rejections on the real
/// optimizer: compiling every suite workload for every paper preset with
/// certification on succeeds, every pass run earns a certificate
/// (structural or differential — never inconclusive), the certified
/// program is identical to the plain compile, and across the sweep all
/// six optimizer passes actually get exercised and certified.
#[test]
fn certifier_accepts_every_pass_on_the_whole_suite() {
    use std::collections::BTreeSet;
    use supersym::workloads::{suite, Size};
    let machines = all_preset_machines();
    let mut certified_passes: BTreeSet<String> = BTreeSet::new();
    for workload in &suite(Size::Small) {
        for machine in &machines {
            let options =
                CompileOptions::new(OptLevel::O4, machine).with_unroll(UnrollOptions::careful(2));
            let (program, certificates) = supersym::compile_certified(&workload.source, &options)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, machine.name()));
            assert!(
                !certificates.is_empty(),
                "{} on {}: no passes observed",
                workload.name,
                machine.name()
            );
            for cert in &certificates {
                assert!(
                    cert.is_certified(),
                    "{} on {}: pass {} uncertified: {:?}",
                    workload.name,
                    machine.name(),
                    cert.pass,
                    cert.diagnostics
                );
                certified_passes.insert(cert.pass.clone());
            }
            let plain = supersym::compile(&workload.source, &options).expect("plain compile");
            assert_eq!(
                program.to_string(),
                plain.to_string(),
                "{} on {}: certification changed the output",
                workload.name,
                machine.name()
            );
        }
    }
    for pass in [
        "local_value_numbering",
        "strength_reduce",
        "dead_code_elimination",
        "loop_invariant_code_motion",
        "dead_store_elimination",
        "reassociate",
    ] {
        assert!(
            certified_passes.contains(pass),
            "pass {pass} never fired across the suite sweep (saw {certified_passes:?})"
        );
    }
}

// ---------------------------------------------------------------------------
// Loop-carried oracle properties (supersym-analyze loopdep)
// ---------------------------------------------------------------------------

/// The loop-carried oracles bracket exactly like the region-level ones:
/// on random loop bodies, every carried edge the symbolic oracle reports
/// is covered by a conservative edge between the same instructions of the
/// same kind at a distance no larger (smaller distance = stronger
/// constraint), so scheduling or bounding with symbolic facts can only
/// *remove* constraints relative to the conservative baseline — never
/// invent permission the conservative analysis would deny.
#[test]
fn loop_carried_edges_bracket_symbolic_under_conservative() {
    use supersym::analyze::OracleKind;
    for seed in 300..348_u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9)); // decorrelate
        let len = 2 + rng.below(20) as usize;
        let body = random_region(&mut rng, len);
        let conservative = OracleKind::Conservative
            .as_loop_oracle()
            .loop_carried(&body);
        let symbolic = OracleKind::Symbolic.as_loop_oracle().loop_carried(&body);
        for edge in &symbolic {
            assert!(
                conservative.iter().any(|c| c.pred == edge.pred
                    && c.succ == edge.succ
                    && c.kind == edge.kind
                    && c.distance <= edge.distance),
                "seed {seed}: symbolic edge {edge} not covered conservatively\n\
                 conservative: {conservative:?}"
            );
        }
        // Register-carried edges are oracle-independent facts; both sides
        // must agree on them exactly.
        let registers = |edges: &[supersym::analyze::CarriedEdge]| {
            let mut regs: Vec<_> = edges
                .iter()
                .filter(|e| !matches!(e.kind, supersym::analyze::DepKind::Memory))
                .copied()
                .collect();
            regs.sort_by_key(|e| (e.pred, e.succ));
            regs
        };
        assert_eq!(
            registers(&conservative),
            registers(&symbolic),
            "seed {seed}: register recurrences must not depend on the oracle"
        );
    }
}

/// Schedules produced under the loop-carried oracles stay within the
/// legality envelope of the matching checker on all eleven paper presets
/// — and, because carried edges all have distance >= 1 and the in-order
/// scheduler only reorders within an iteration, a schedule under the
/// conservative loop oracle also passes the conservative checker that
/// consumes the very same carried facts.
#[test]
fn loop_oracle_schedules_pass_conservative_checker() {
    use supersym::analyze::OracleKind;
    use supersym::codegen::schedule_program_with;
    use supersym::isa::{Function, Instr, Program};
    use supersym::verify::check_schedule_with;
    let machines = all_preset_machines();
    for seed in 400..448_u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0xC2B2_AE35)); // decorrelate
        let len = 2 + rng.below(24) as usize;
        let mut instrs = random_region(&mut rng, len);
        instrs.push(Instr::Halt);
        let mut before = Program::new();
        let id = before.add_function(Function::new("region", instrs, vec![0]));
        before.set_entry(id);
        for machine in &machines {
            for (scheduler, checkers) in [
                (
                    OracleKind::Conservative,
                    vec![OracleKind::Conservative, OracleKind::Symbolic],
                ),
                (OracleKind::Symbolic, vec![OracleKind::Symbolic]),
            ] {
                let mut after = before.clone();
                schedule_program_with(&mut after, machine, scheduler.as_loop_oracle());
                for checker in checkers {
                    let violations = check_schedule_with(&before, &after, checker.as_loop_oracle());
                    assert!(
                        violations.is_empty(),
                        "seed {seed} on {} ({scheduler:?} -> {checker:?}): {violations:?}",
                        machine.name()
                    );
                }
            }
        }
    }
}

/// Conservation law for emitted timelines: on every functional-unit lane
/// of the simulate process, per-instruction pipeline spans never extend
/// past the end of the run, and each lane's occupied time (the union of
/// its spans) is at most the run's machine cycles.
#[test]
fn timeline_lane_occupancy_is_conserved() {
    use supersym::isa::InstrClass;
    use supersym::sim::simulate_with_sink;
    use supersym::trace::{parse_json, JsonValue, TimelineSink, PID_SIMULATE};
    for seed in AST_SEEDS {
        let ast = Gen::new(seed).module();
        for machine in [presets::ideal_superscalar(8), presets::cray1()] {
            let options = CompileOptions::new(OptLevel::O4, &machine);
            let program = compile_ast(ast.clone(), &options).expect("generated programs compile");
            let lanes: Vec<String> = machine
                .functional_units()
                .iter()
                .map(|unit| unit.name().to_string())
                .collect();
            let class_lane: Vec<(String, usize)> = InstrClass::ALL
                .iter()
                .map(|&class| (class.mnemonic().to_string(), machine.unit_of(class)))
                .collect();
            let mut sink = TimelineSink::new(Vec::new()).with_pipeline_lanes(lanes, class_lane);
            let report = simulate_with_sink(&program, &machine, SimOptions::default(), &mut sink)
                .expect("generated programs terminate");
            let text = String::from_utf8(sink.finish().expect("in-memory timeline"))
                .expect("timelines are utf-8");
            let doc = parse_json(&text).expect("emitted timeline parses");
            supersym::trace::validate_timeline(&text).expect("emitted timeline validates");

            let mut per_lane: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
            for event in doc
                .get("traceEvents")
                .and_then(JsonValue::as_array)
                .expect("traceEvents array")
            {
                if event.get("ph").and_then(JsonValue::as_str) != Some("X")
                    || event.get("pid").and_then(JsonValue::as_u64) != Some(PID_SIMULATE)
                {
                    continue;
                }
                let tid = event.get("tid").and_then(JsonValue::as_u64).expect("tid");
                if tid == 0 {
                    continue; // counter lane, not a functional unit
                }
                let ts = event.get("ts").and_then(JsonValue::as_u64).expect("ts");
                let dur = event.get("dur").and_then(JsonValue::as_u64).expect("dur");
                per_lane.entry(tid).or_default().push((ts, ts + dur));
            }
            assert!(
                !per_lane.is_empty(),
                "seed {seed} on {}: no pipeline spans",
                machine.name()
            );
            let cycles = report.machine_cycles();
            for (tid, mut spans) in per_lane {
                spans.sort_unstable();
                let mut occupied = 0_u64;
                let mut cursor = 0_u64;
                for (start, end) in spans {
                    assert!(
                        end <= cycles,
                        "seed {seed} on {}: lane {tid} span [{start}, {end}) past run end {cycles}",
                        machine.name()
                    );
                    let lo = start.max(cursor);
                    if end > lo {
                        occupied += end - lo;
                        cursor = end;
                    }
                }
                assert!(
                    occupied <= cycles,
                    "seed {seed} on {}: lane {tid} occupied {occupied} > {cycles}",
                    machine.name()
                );
            }
        }
    }
}
