//! End-to-end tests for `titalc sweep`: checkpointing, kill-and-resume
//! byte-identity, fault quarantine, the result cache, and exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn titalc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_titalc"))
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A scratch directory unique to one test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("titalc-sweep-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const GRID: &str = "issue=1,2,4 pipe=1,2 lat=unit,titan";

fn sweep_args(dir: &Path, out: &str) -> Vec<String> {
    [
        "sweep",
        "--grid",
        GRID,
        "--workloads",
        "whet",
        "--jobs",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .chain([dir.join(out).to_string_lossy().into_owned()])
    .collect()
}

#[test]
fn resume_after_torn_checkpoint_is_byte_identical() {
    let dir = scratch("resume");
    let checkpoint = dir.join("ck.jsonl");

    // Uninterrupted run, journaled.
    let mut args = sweep_args(&dir, "out1.jsonl");
    args.extend(["--checkpoint".to_string(), checkpoint.display().to_string()]);
    let full = titalc().args(&args).output().expect("spawn titalc");
    assert!(full.status.success(), "{}", stderr(&full));

    // Simulate a SIGKILL mid-write: drop the journal's tail records and
    // leave the last surviving line torn in half.
    let journal = std::fs::read_to_string(&checkpoint).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 8, "journal too short to tear: {journal}");
    let keep = lines[..8].join("\n");
    let torn = format!("{keep}\n{}", &lines[8][..lines[8].len() / 2]);
    std::fs::write(&checkpoint, torn).unwrap();

    // Resume must complete the missing cells and reproduce the output
    // byte for byte.
    let mut args = sweep_args(&dir, "out2.jsonl");
    args.extend(["--resume".to_string(), checkpoint.display().to_string()]);
    let resumed = titalc().args(&args).output().expect("spawn titalc");
    assert!(resumed.status.success(), "{}", stderr(&resumed));
    let summary = stdout(&resumed);
    assert!(summary.contains("\"resumed\": 7"), "{summary}");
    assert!(summary.contains("\"resumable\": true"), "{summary}");

    let out1 = std::fs::read(dir.join("out1.jsonl")).unwrap();
    let out2 = std::fs::read(dir.join("out2.jsonl")).unwrap();
    assert_eq!(out1, out2, "resumed output must be byte-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_refuses_a_checkpoint_for_another_sweep() {
    let dir = scratch("identity");
    let checkpoint = dir.join("ck.jsonl");
    let mut args = sweep_args(&dir, "out1.jsonl");
    args.extend(["--checkpoint".to_string(), checkpoint.display().to_string()]);
    let full = titalc().args(&args).output().expect("spawn titalc");
    assert!(full.status.success(), "{}", stderr(&full));

    // Same checkpoint, different grid: identity hash mismatch, exit 1.
    let output = titalc()
        .args([
            "sweep",
            "--grid",
            "issue=1,2 pipe=1",
            "--workloads",
            "whet",
            "--resume",
        ])
        .arg(&checkpoint)
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("cannot resume"),
        "{}",
        stderr(&output)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_faults_quarantine_and_exit_3() {
    let dir = scratch("inject");
    let mut args = sweep_args(&dir, "out.jsonl");
    args.extend(["--inject".to_string(), "panic:5,timeout:7".to_string()]);
    let output = titalc().args(&args).output().expect("spawn titalc");
    assert_eq!(output.status.code(), Some(3), "{}", stderr(&output));
    let summary = stdout(&output);
    assert!(!summary.contains("\"quarantined\": 0"), "{summary}");

    // Every record is present in the output, completed or quarantined.
    let out = std::fs::read_to_string(dir.join("out.jsonl")).unwrap();
    assert_eq!(out.lines().count(), 1 + 12, "header + one line per record");
    assert!(out.contains("\"status\":\"panic\""), "{out}");
    assert!(out.contains("\"status\":\"timeout\""), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_makes_repeat_sweeps_incremental() {
    let dir = scratch("cache");
    let cache = dir.join("cache.jsonl");
    let mut args = sweep_args(&dir, "out1.jsonl");
    args.extend(["--cache".to_string(), cache.display().to_string()]);
    let first = titalc().args(&args).output().expect("spawn titalc");
    assert!(first.status.success(), "{}", stderr(&first));
    assert!(
        stdout(&first).contains("\"cached\": 0"),
        "{}",
        stdout(&first)
    );

    let mut args = sweep_args(&dir, "out2.jsonl");
    args.extend(["--cache".to_string(), cache.display().to_string()]);
    let second = titalc().args(&args).output().expect("spawn titalc");
    assert!(second.status.success(), "{}", stderr(&second));
    let summary = stdout(&second);
    assert!(summary.contains("\"cached\": 12"), "{summary}");
    assert!(summary.contains("\"executed\": 0"), "{summary}");

    // Cached results must not change the report.
    let out1 = std::fs::read(dir.join("out1.jsonl")).unwrap();
    let out2 = std::fs::read(dir.join("out2.jsonl")).unwrap();
    assert_eq!(out1, out2, "cache hits must reproduce the same records");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_cache_records_degrade_to_recompute() {
    let dir = scratch("corrupt");
    let cache = dir.join("cache.jsonl");
    let mut args = sweep_args(&dir, "out1.jsonl");
    args.extend(["--cache".to_string(), cache.display().to_string()]);
    let first = titalc().args(&args).output().expect("spawn titalc");
    assert!(first.status.success(), "{}", stderr(&first));

    // Flip a digit inside every record's metrics: the per-record checksum
    // no longer matches, so every entry is dropped and recomputed.
    let text = std::fs::read_to_string(&cache).unwrap();
    let corrupted = text.replace("\"instructions\":", "\"instructions\":9");
    assert_ne!(text, corrupted, "corruption must change the cache");
    std::fs::write(&cache, corrupted).unwrap();

    let mut args = sweep_args(&dir, "out2.jsonl");
    args.extend(["--cache".to_string(), cache.display().to_string()]);
    let second = titalc().args(&args).output().expect("spawn titalc");
    assert!(second.status.success(), "{}", stderr(&second));
    let summary = stdout(&second);
    assert!(summary.contains("\"cached\": 0"), "{summary}");
    assert!(summary.contains("\"executed\": 12"), "{summary}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unwritable_output_exits_4() {
    let output = titalc()
        .args([
            "sweep",
            "--grid",
            "issue=1 pipe=1",
            "--workloads",
            "whet",
            "--out",
            "/nonexistent-dir/sweep.jsonl",
        ])
        .output()
        .expect("spawn titalc");
    assert_eq!(output.status.code(), Some(4), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("cannot write output"),
        "{}",
        stderr(&output)
    );
}

#[test]
fn bad_grid_and_unknown_workload_exit_1() {
    for args in [
        vec!["sweep", "--grid", "issue=0 pipe=1"],
        vec!["sweep", "--grid", "issue=1", "--workloads", "nosuch"],
        vec!["sweep"],
    ] {
        let output = titalc().args(&args).output().expect("spawn titalc");
        assert_eq!(
            output.status.code(),
            Some(1),
            "{args:?}: {}",
            stderr(&output)
        );
    }
}

#[test]
fn pareto_frontier_reports_rising_speedup() {
    let dir = scratch("pareto");
    let output = titalc()
        .args(sweep_args(&dir, "out.jsonl"))
        .output()
        .expect("spawn titalc");
    assert!(output.status.success(), "{}", stderr(&output));
    let summary = stdout(&output);
    // The base machine (cost 1, speedup 1) anchors the frontier.
    assert!(summary.contains("\"cost\": 1"), "{summary}");
    let speedups: Vec<f64> = summary
        .lines()
        .filter_map(|l| l.trim().strip_prefix("\"speedup\": "))
        .map(|v| v.trim_end_matches(',').parse().unwrap())
        .collect();
    assert!(speedups.len() > 1, "{summary}");
    assert!(
        speedups.windows(2).all(|w| w[0] < w[1]),
        "frontier speedups must rise strictly: {speedups:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_timeline_passes_the_validator() {
    let dir = scratch("timeline");
    let timeline = dir.join("sweep-timeline.json");
    let mut args = sweep_args(&dir, "out.jsonl");
    args.extend(["--timeline".to_string(), timeline.display().to_string()]);
    args.extend(["--jobs".to_string(), "4".to_string()]);
    let output = titalc().args(&args).output().expect("spawn titalc");
    assert!(output.status.success(), "{}", stderr(&output));
    // The summary carries the sweep metrics registry.
    let summary = stdout(&output);
    assert!(summary.contains("\"sweep.cell_latency_us\""), "{summary}");
    assert!(summary.contains("\"sweep.executed\""), "{summary}");

    let lint = titalc()
        .arg("lint")
        .arg(&timeline)
        .output()
        .expect("spawn titalc");
    assert!(
        lint.status.success(),
        "sweep timeline failed validation: {}{}",
        stdout(&lint),
        stderr(&lint)
    );
    assert!(
        stdout(&lint).contains("valid timeline"),
        "{}",
        stdout(&lint)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Every writer the sweep command can be pointed at must fail the same
/// way: a diagnostic naming the path and exit code 4.
#[test]
fn unwritable_output_paths_all_exit_4() {
    let dir = scratch("exit4");
    let missing = dir.join("no-such-dir").join("x.json");
    for flag in ["--timeline", "--out", "--cache"] {
        let args = [
            "sweep",
            "--grid",
            "issue=1 pipe=1",
            "--workloads",
            "whet",
            flag,
        ];
        let output = titalc()
            .args(args)
            .arg(&missing)
            .output()
            .expect("spawn titalc");
        assert_eq!(
            output.status.code(),
            Some(4),
            "{flag}: {}{}",
            stdout(&output),
            stderr(&output)
        );
        assert!(
            stderr(&output).contains("no-such-dir"),
            "{flag} diagnostic must name the path: {}",
            stderr(&output)
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
