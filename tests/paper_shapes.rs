//! Shape tests: the qualitative claims of the paper, asserted against our
//! measurements (small workload sizes; the full-size numbers live in
//! EXPERIMENTS.md and regenerate via `cargo bench --bench paper`).

use supersym::experiments::run_workload;
use supersym::machine::presets;
use supersym::opt::UnrollOptions;
use supersym::workloads::{ccom, linpack, livermore, suite, yacc, Size};
use supersym::OptLevel;

/// §2.7 + Figure 4-1: a superscalar and superpipelined machine of equal
/// degree have basically the same performance, with the superscalar ahead
/// by a startup transient.
#[test]
fn supersymmetry_on_one_benchmark() {
    let workload = ccom(6);
    let base = run_workload(&workload, OptLevel::O4, &presets::base(), None, None);
    let mut last_ss = 0.0;
    for degree in [2, 4, 8] {
        let ss = run_workload(
            &workload,
            OptLevel::O4,
            &presets::ideal_superscalar(degree),
            None,
            None,
        )
        .speedup_over(&base);
        let sp = run_workload(
            &workload,
            OptLevel::O4,
            &presets::superpipelined(degree),
            None,
            None,
        )
        .speedup_over(&base);
        assert!(
            ss >= sp,
            "superpipelined beat superscalar at degree {degree}"
        );
        assert!(
            sp >= ss * 0.80,
            "superpipelined too far behind at degree {degree}: {sp} vs {ss}"
        );
        assert!(ss >= last_ss, "speedup not monotone in degree");
        last_ss = ss;
    }
}

/// §4.2 + Figure 4-4: with actual latencies the CRAY-1 benefits very
/// little from parallel issue; with unit latencies the (misleading)
/// benefit is large.
#[test]
fn cray1_benefits_little_from_multi_issue() {
    let workload = yacc(20);
    let cray = presets::cray1();
    let unit = cray.with_unit_latencies();
    let real_1 = run_workload(
        &workload,
        OptLevel::O4,
        &cray.with_issue_width(1),
        None,
        None,
    );
    let real_4 = run_workload(
        &workload,
        OptLevel::O4,
        &cray.with_issue_width(4),
        None,
        None,
    );
    let unit_1 = run_workload(
        &workload,
        OptLevel::O4,
        &unit.with_issue_width(1),
        None,
        None,
    );
    let unit_4 = run_workload(
        &workload,
        OptLevel::O4,
        &unit.with_issue_width(4),
        None,
        None,
    );
    let real_gain = real_4.speedup_over(&real_1) - 1.0;
    let unit_gain = unit_4.speedup_over(&unit_1) - 1.0;
    assert!(
        unit_gain > 3.0 * real_gain,
        "unit-latency gain {unit_gain:.2} should dwarf real gain {real_gain:.2}"
    );
    assert!(
        real_gain < 0.30,
        "real CRAY-1 gain too large: {real_gain:.2}"
    );
}

/// §4.3 + Figure 4-5: the available parallelism of every benchmark sits in
/// a narrow band around two ("the ceiling is still quite low").
#[test]
fn ilp_ceiling_is_low() {
    let machine = presets::ideal_superscalar(8);
    for workload in suite(Size::Small) {
        let report = run_workload(&workload, OptLevel::O4, &machine, None, None);
        let ilp = report.available_parallelism();
        assert!(
            (1.3..4.0).contains(&ilp),
            "{} parallelism {ilp:.2} outside the expected band",
            workload.name
        );
    }
}

/// §4.4 + Figure 4-6: careful unrolling beats naive unrolling on numeric
/// code, and the gap grows with the unroll factor.
#[test]
fn careful_unrolling_beats_naive() {
    let machine = presets::ideal_superscalar(8);
    for workload in [linpack(16), livermore(40, 1)] {
        let naive = run_workload(
            &workload,
            OptLevel::O4,
            &machine,
            Some(UnrollOptions::naive(4)),
            None,
        )
        .available_parallelism();
        let careful = run_workload(
            &workload,
            OptLevel::O4,
            &machine,
            Some(UnrollOptions::careful(4)),
            None,
        )
        .available_parallelism();
        assert!(
            careful > naive * 0.98,
            "{}: careful {careful:.2} vs naive {naive:.2}",
            workload.name
        );
    }
}

/// §4.4 + Figure 4-8: pipeline scheduling reliably increases available
/// parallelism; classical optimization changes it much less.
#[test]
fn scheduling_is_the_reliable_lever() {
    let machine = presets::ideal_superscalar(8);
    for workload in [ccom(6), yacc(20), livermore(40, 1)] {
        let none =
            run_workload(&workload, OptLevel::O0, &machine, None, None).available_parallelism();
        let sched =
            run_workload(&workload, OptLevel::O1, &machine, None, None).available_parallelism();
        assert!(
            sched >= none * 1.05,
            "{}: scheduling gained only {none:.2} -> {sched:.2}",
            workload.name
        );
    }
}

/// §6: "many machines already exploit most of the parallelism available in
/// non-numeric code" — on the MultiTitan (average degree of
/// superpipelining 1.7), adding issue width gains little on ccom.
#[test]
fn multititan_near_parallelism_limit_on_nonnumeric_code() {
    let workload = ccom(6);
    let single = presets::multititan();
    let dual = single.with_issue_width(2);
    let single_report = run_workload(&workload, OptLevel::O4, &single, None, None);
    let dual_report = run_workload(&workload, OptLevel::O4, &dual, None, None);
    let gain = dual_report.speedup_over(&single_report) - 1.0;
    assert!(
        gain < 0.45,
        "dual-issue MultiTitan gained {gain:.2}, more than the latency argument allows"
    );
}

/// §4.2's opening claim, via the oracle limit analyzer: with conditional
/// branches as barriers (the [14, 15] regime) non-numeric code shows about
/// two instructions of parallelism, and perfect speculation exposes an
/// order of magnitude more.
#[test]
fn limit_study_matches_cited_literature() {
    use supersym::experiments::limit_study;
    use supersym::workloads::Size;
    let study = limit_study(Size::Small);
    for (name, _, barriers, speculative) in &study.rows {
        assert!(
            (1.2..6.0).contains(barriers),
            "{name}: branch-barrier limit {barriers:.2} outside the literature's band"
        );
        // whet's serial polynomial chains keep even the speculative limit
        // low; everywhere else the gap is large.
        assert!(
            *speculative > 1.8 * barriers,
            "{name}: speculation ({speculative:.1}) should dwarf barriers ({barriers:.2})"
        );
    }
    // Non-numeric codes sit around two.
    let nonnumeric: Vec<f64> = study
        .rows
        .iter()
        .filter(|(name, ..)| ["ccom", "yacc", "stan", "grr", "met"].contains(&name.as_str()))
        .map(|&(_, _, barriers, _)| barriers)
        .collect();
    let mean = nonnumeric.iter().sum::<f64>() / nonnumeric.len() as f64;
    assert!((1.4..2.8).contains(&mean), "non-numeric mean {mean:.2}");
}

/// The alias-oracle ablation behind EXPERIMENTS.md: under naive unrolling
/// (one induction variable shared by all copies — §4.4's "false
/// conflicts" regime), the symbolic base+offset oracle recovers
/// measurably more parallelism than the conservative annotation-only
/// oracle on a wide machine, and never changes program results.
#[test]
fn symbolic_oracle_recovers_naive_unrolling_losses() {
    use supersym::analyze::OracleKind;
    use supersym::machine::RegisterSplit;
    use supersym::sim::{simulate, SimOptions};
    use supersym::{compile, CompileOptions};
    let machine = presets::ideal_superscalar(8);
    let workload = livermore(40, 1);
    let mut measured = [0.0_f64, 0.0];
    for (slot, oracle) in [(0, OracleKind::Conservative), (1, OracleKind::Symbolic)] {
        let options = CompileOptions::new(OptLevel::O4, &machine)
            .with_unroll(UnrollOptions::naive(4))
            .with_split(RegisterSplit::unrolling_study())
            .with_oracle(oracle)
            .with_verify(true);
        let program = compile(&workload.source, &options).expect("livermore compiles");
        let report = simulate(&program, &machine, SimOptions::default()).expect("livermore runs");
        measured[slot] = report.available_parallelism();
    }
    // Result equivalence across oracles is the differential property
    // test's job (tests/properties.rs); this asserts the parallelism win.
    assert!(
        measured[1] > measured[0] * 1.015,
        "symbolic {:.3} should beat conservative {:.3} by over 1.5%",
        measured[1],
        measured[0]
    );
}

/// The stall-breakdown study explains each machine's ILP saturation with
/// the right cause: a wide ideal superscalar is bound by true data
/// dependences (RAW waits dominate — exactly the paper's "parallelism of
/// around 2" ceiling), while the underpipelined machine that issues every
/// other cycle is bound by its functional-unit reservation, not by the
/// program. Every row's account must balance exactly.
#[test]
fn stall_breakdown_explains_ilp_saturation() {
    use supersym::experiments::stall_breakdown;
    let study = stall_breakdown(Size::Small);
    assert_eq!(study.rows.len(), 11, "one row per paper preset");
    for (machine, account, _) in &study.rows {
        assert!(account.conserved(), "{machine}: account does not balance");
        assert_eq!(
            account.issue_cycles() + account.total_stall_cycles() + account.drain_cycles(),
            account.machine_cycles(),
            "{machine}: cycles leaked"
        );
    }
    let dominant = |name: &str| -> &str {
        study
            .rows
            .iter()
            .find(|(machine, ..)| machine == name)
            .map(|(_, _, cause)| *cause)
            .unwrap_or_else(|| panic!("no row for {name}"))
    };
    assert_eq!(
        dominant("superscalar(8)"),
        "raw_interlock",
        "a wide ideal machine saturates on true dependences"
    );
    assert_eq!(
        dominant("underpipelined (issue < 1 per cycle)"),
        "fu_busy",
        "the half-issue machine saturates on its own issue reservation"
    );
    // Latency machines stall on operand readiness in the cycle view too.
    let cray = study
        .rows
        .iter()
        .find(|(machine, ..)| machine == "CRAY-1")
        .map(|(_, account, _)| account)
        .expect("CRAY-1 row");
    assert!(
        cray.stall_cycles(0) > cray.machine_cycles() / 4,
        "CRAY-1 latencies make RAW stalls a large share"
    );
}

/// The rules-study shape reported in EXPERIMENTS.md: the verified
/// rewrite-rule table is conservative — it never grows any workload's
/// static or dynamic instruction stream — and it is not a no-op: at
/// least one workload gets strictly shorter with the issue rate no
/// worse. (Most rows are zeros by design: constant folding and CSE
/// already catch the suite's redundancy; the table wins only where an
/// identity pattern over *variables* survives to LVN.)
#[test]
fn rules_study_shrinks_at_least_one_workload_and_regresses_none() {
    use supersym::experiments::rules_study;
    let study = rules_study(Size::Small);
    assert_eq!(study.rows.len(), 8, "one row per suite workload");
    let mut improved = 0_usize;
    for row in &study.rows {
        let [static_off, static_on] = row.static_insts;
        let [dynamic_off, dynamic_on] = row.dynamic_insts;
        assert!(
            static_on <= static_off,
            "{}: rules grew the static stream {static_off} -> {static_on}",
            row.benchmark
        );
        assert!(
            dynamic_on <= dynamic_off,
            "{}: rules grew the dynamic stream {dynamic_off} -> {dynamic_on}",
            row.benchmark
        );
        if static_on < static_off || dynamic_on < dynamic_off {
            improved += 1;
            let [ilp_off, ilp_on] = row.parallelism;
            assert!(
                ilp_on >= ilp_off - 1e-9,
                "{}: the shortened stream issues worse ({ilp_off:.3} -> {ilp_on:.3})",
                row.benchmark
            );
        }
    }
    assert!(improved >= 1, "the rule table fired on no workload at all");
}

/// Loop-nest bound soundness (the `titalc bound` invariant): for every
/// workload on every paper preset, the parallelism the simulator measures
/// never exceeds the static ILP ceiling computed from loop dependence
/// analysis alone — and on a dependence-bound preset (the stall breakdown
/// shows the degree-2 ideal superscalar is raw-interlock dominated) the
/// ceiling is tight: within 10% of the measurement on at least one
/// workload, so the bound explains the saturation rather than merely
/// capping it.
#[test]
fn static_ilp_bound_is_sound_everywhere_and_tight_when_dependence_bound() {
    use supersym::experiments::bound_study;
    let study = bound_study(Size::Small);
    assert_eq!(study.rows.len(), 11, "all paper presets covered");
    let mut loops_seen = 0usize;
    for (machine, cells) in &study.rows {
        assert_eq!(cells.len(), 8, "{machine}: all workloads covered");
        for cell in cells {
            assert!(
                cell.sound && cell.measured_ilp <= cell.bound_ilp * (1.0 + 1e-9),
                "{} on {machine}: measured {:.4} exceeds static bound {:.4}",
                cell.benchmark,
                cell.measured_ilp,
                cell.bound_ilp
            );
            loops_seen += cell.loops;
        }
    }
    assert!(
        loops_seen > 0,
        "the analysis must recognize loops in the suite"
    );
    let (_, cells) = study
        .rows
        .iter()
        .find(|(machine, _)| machine == "superscalar(2)")
        .expect("degree-2 superscalar row present");
    let tightest = cells
        .iter()
        .map(|c| c.measured_ilp / c.bound_ilp)
        .fold(0.0_f64, f64::max);
    assert!(
        tightest >= 0.90,
        "bound not tight on the dependence-bound preset: best ratio {tightest:.3}"
    );
}
