//! Replays the crash corpus (`tests/corpus/`) through the real pipeline.
//!
//! Every reproducer in the corpus once violated — or probes a hazard
//! class that could violate — the robustness contract. Replay runs each
//! file twice and fails on a panic or on run-to-run divergence; typed
//! rejections are the expected, fixed state.

use std::path::{Path, PathBuf};
use supersym::torture::replay_torture_corpus;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_replays_without_panics_or_divergence() {
    let report = replay_torture_corpus(&corpus_dir()).expect("read corpus");
    assert_eq!(report.finding_count(), 0, "regressions:\n{report}");
    let replayed: u64 = report.layers.iter().map(|l| l.mutants).sum();
    assert!(
        replayed >= 5,
        "corpus seeds missing: only {replayed} file(s) replayed"
    );
}
