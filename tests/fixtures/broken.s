// Deliberately broken assembly program, used by the CLI lint test:
// a read of an undefined temporary, a call to a nonexistent function,
// a jump to a label that is never bound, and a function that runs off
// its last instruction.
main:
  ld r10, 0(r2)
  call fn#7
  jmp L5
helper:
  movi r9, #1
