// A small clean program: `titalc lint` should accept it silently.
main:
  movi r9, #8
  L0:
  sub r9, r9, #1
  cmpgt r10, r9, #0
  bt r10, L0
  st 0(r30), r9
  halt
