//! IR containers: modules, functions, blocks.

use crate::inst::{Inst, Terminator, VReg, VarRef};
use std::error::Error;
use std::fmt;
use supersym_lang::ast::Ty;

/// Identifies a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifies a global (scalar or array) within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies a local variable (or parameter) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalId(pub u32);

/// Kind of a module global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalKind {
    /// A scalar with an initial value (bit pattern per its type).
    Scalar {
        /// Initial value as written in the source (0 when omitted).
        init: f64,
    },
    /// A fixed-size array.
    Array {
        /// Element count.
        len: usize,
    },
}

/// A module global.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Source name.
    pub name: String,
    /// Element/scalar type.
    pub ty: Ty,
    /// Scalar or array.
    pub kind: GlobalKind,
}

/// A function-local variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name (compiler temps get synthetic names).
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Parameter position for parameters, `None` for plain locals.
    pub param_index: Option<usize>,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// A block holding only a terminator.
    #[must_use]
    pub fn empty(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
        }
    }
}

/// An IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Locals (parameters first, in order).
    pub vars: Vec<VarInfo>,
    /// Return type.
    pub ret: Option<Ty>,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Types of vregs, indexed by [`VReg::0`].
    pub vreg_tys: Vec<Ty>,
}

impl Function {
    /// Allocates a fresh vreg of type `ty`.
    pub fn new_vreg(&mut self, ty: Ty) -> VReg {
        let vreg = VReg(self.vreg_tys.len() as u32);
        self.vreg_tys.push(ty);
        vreg
    }

    /// Allocates a fresh local variable, returning its id.
    pub fn new_local(&mut self, name: impl Into<String>, ty: Ty) -> LocalId {
        let id = LocalId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            ty,
            param_index: None,
        });
        id
    }

    /// The type of a vreg.
    ///
    /// # Panics
    ///
    /// Panics if the vreg is not from this function.
    #[must_use]
    pub fn vreg_ty(&self, vreg: VReg) -> Ty {
        self.vreg_tys[vreg.0 as usize]
    }

    /// Number of parameters.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.vars.iter().filter(|v| v.param_index.is_some()).count()
    }

    /// Total static instruction count (excluding terminators).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A whole IR module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Globals (scalars and arrays).
    pub globals: Vec<GlobalInfo>,
    /// Functions; calls reference them by index.
    pub funcs: Vec<Function>,
    /// Index of `main`, the entry function.
    pub entry: usize,
}

/// IR structural errors found by [`Module::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A vreg was used before (or without) being defined in its block.
    UseBeforeDef {
        /// Function name.
        func: String,
        /// Block.
        block: BlockId,
    },
    /// A terminator targets a block that does not exist.
    BadTarget {
        /// Function name.
        func: String,
        /// The missing block.
        target: BlockId,
    },
    /// A call references a function index out of range.
    BadCallee {
        /// Function name.
        func: String,
        /// The callee index.
        callee: u32,
    },
    /// A variable reference is out of range.
    BadVar {
        /// Function name.
        func: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UseBeforeDef { func, block } => {
                write!(f, "vreg used before definition in `{func}` {block}")
            }
            IrError::BadTarget { func, target } => {
                write!(f, "terminator in `{func}` targets missing {target}")
            }
            IrError::BadCallee { func, callee } => {
                write!(f, "call in `{func}` to missing function #{callee}")
            }
            IrError::BadVar { func } => write!(f, "bad variable reference in `{func}`"),
        }
    }
}

impl Error for IrError {}

impl Module {
    /// Validates structural invariants: block-local vreg discipline (every
    /// vreg used in a block is defined earlier *in that block*), terminator
    /// targets exist, callees and variable references are in range.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), IrError> {
        for func in &self.funcs {
            for (block_index, block) in func.blocks.iter().enumerate() {
                let block_id = BlockId(block_index as u32);
                let mut defined = vec![false; func.vreg_tys.len()];
                let mut use_ok = true;
                for inst in &block.insts {
                    inst.for_each_use(|v| {
                        if !defined[v.0 as usize] {
                            use_ok = false;
                        }
                    });
                    if !use_ok {
                        return Err(IrError::UseBeforeDef {
                            func: func.name.clone(),
                            block: block_id,
                        });
                    }
                    if let Inst::Call { callee, .. } = inst {
                        if *callee as usize >= self.funcs.len() {
                            return Err(IrError::BadCallee {
                                func: func.name.clone(),
                                callee: *callee,
                            });
                        }
                    }
                    let var = match inst {
                        Inst::ReadVar { var, .. } | Inst::WriteVar { var, .. } => Some(*var),
                        _ => None,
                    };
                    if let Some(var) = var {
                        let ok = match var {
                            VarRef::Global(g) => (g.0 as usize) < self.globals.len(),
                            VarRef::Local(l) => (l.0 as usize) < func.vars.len(),
                        };
                        if !ok {
                            return Err(IrError::BadVar {
                                func: func.name.clone(),
                            });
                        }
                    }
                    if let Some(dst) = inst.dst() {
                        defined[dst.0 as usize] = true;
                    }
                }
                if let Some(used) = block.term.used_vreg() {
                    if !defined[used.0 as usize] {
                        return Err(IrError::UseBeforeDef {
                            func: func.name.clone(),
                            block: block_id,
                        });
                    }
                }
                for target in block.term.successors() {
                    if target.index() >= func.blocks.len() {
                        return Err(IrError::BadTarget {
                            func: func.name.clone(),
                            target,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Finds a function index by name.
    #[must_use]
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::IntBinOp;

    fn one_block_func(insts: Vec<Inst>, term: Terminator) -> Function {
        let n_vregs = insts
            .iter()
            .filter_map(Inst::dst)
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(0);
        Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![Block { insts, term }],
            vreg_tys: vec![Ty::Int; n_vregs as usize],
        }
    }

    #[test]
    fn validate_ok() {
        let func = one_block_func(
            vec![
                Inst::ConstInt {
                    dst: VReg(0),
                    value: 1,
                },
                Inst::ConstInt {
                    dst: VReg(1),
                    value: 2,
                },
                Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: VReg(2),
                    lhs: VReg(0),
                    rhs: VReg(1),
                },
            ],
            Terminator::Return(None),
        );
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        assert!(module.validate().is_ok());
    }

    #[test]
    fn use_before_def_caught() {
        let func = one_block_func(
            vec![Inst::IntBin {
                op: IntBinOp::Add,
                dst: VReg(1),
                lhs: VReg(0),
                rhs: VReg(0),
            }],
            Terminator::Return(None),
        );
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        assert!(matches!(
            module.validate(),
            Err(IrError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn cross_block_vreg_caught() {
        // vreg defined in bb0, used in bb1: violates the discipline.
        let mut func = one_block_func(
            vec![Inst::ConstInt {
                dst: VReg(0),
                value: 1,
            }],
            Terminator::Jump(BlockId(1)),
        );
        func.blocks.push(Block {
            insts: vec![Inst::WriteVar {
                var: VarRef::Local(LocalId(0)),
                src: VReg(0),
            }],
            term: Terminator::Return(None),
        });
        func.vars.push(VarInfo {
            name: "x".into(),
            ty: Ty::Int,
            param_index: None,
        });
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        assert!(matches!(
            module.validate(),
            Err(IrError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn bad_target_caught() {
        let func = one_block_func(vec![], Terminator::Jump(BlockId(7)));
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        assert!(matches!(module.validate(), Err(IrError::BadTarget { .. })));
    }

    #[test]
    fn bad_callee_caught() {
        let func = one_block_func(
            vec![Inst::Call {
                dst: None,
                callee: 9,
                args: vec![],
            }],
            Terminator::Return(None),
        );
        let module = Module {
            globals: vec![],
            funcs: vec![func],
            entry: 0,
        };
        assert!(matches!(module.validate(), Err(IrError::BadCallee { .. })));
    }

    #[test]
    fn fresh_vregs_and_locals() {
        let mut func = one_block_func(vec![], Terminator::Return(None));
        let v = func.new_vreg(Ty::Float);
        assert_eq!(func.vreg_ty(v), Ty::Float);
        let l = func.new_local("t", Ty::Int);
        assert_eq!(func.vars[l.0 as usize].name, "t");
    }
}
