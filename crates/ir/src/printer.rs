//! Human-readable IR printing (for debugging and golden tests).

use crate::func::{Block, Function, Module};
use crate::inst::{Inst, IntBinOp, Terminator};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::ConstInt { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::ConstFloat { dst, value } => write!(f, "{dst} = fconst {value}"),
            Inst::IntBin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", int_op_name(*op))
            }
            Inst::FloatBin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = f{:?} {lhs}, {rhs}", op)
            }
            Inst::FloatCmp { op, dst, lhs, rhs } => {
                write!(f, "{dst} = fcmp.{:?} {lhs}, {rhs}", op)
            }
            Inst::Cast { dst, src, to } => write!(f, "{dst} = cast.{to} {src}"),
            Inst::ReadVar { dst, var } => write!(f, "{dst} = read {var}"),
            Inst::WriteVar { var, src } => write!(f, "write {var}, {src}"),
            Inst::ReadElem {
                dst,
                arr,
                index,
                origin,
            } => {
                write!(f, "{dst} = elem @g{}[{index}]", arr.0)?;
                if let Some(origin) = origin {
                    write!(f, " !origin({origin:?})")?;
                }
                Ok(())
            }
            Inst::WriteElem {
                arr,
                index,
                src,
                origin,
            } => {
                write!(f, "elem @g{}[{index}] = {src}", arr.0)?;
                if let Some(origin) = origin {
                    write!(f, " !origin({origin:?})")?;
                }
                Ok(())
            }
            Inst::Call { dst, callee, args } => {
                if let Some(dst) = dst {
                    write!(f, "{dst} = ")?;
                }
                write!(f, "call #{callee}(")?;
                for (index, arg) in args.iter().enumerate() {
                    if index > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn int_op_name(op: IntBinOp) -> String {
    match op {
        IntBinOp::Cmp(c) => format!("cmp.{c:?}").to_lowercase(),
        other => format!("{other:?}").to_lowercase(),
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "branch {cond} ? {then_bb} : {else_bb}"),
            Terminator::Return(Some(v)) => write!(f, "return {v}"),
            Terminator::Return(None) => write!(f, "return"),
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in &self.insts {
            writeln!(f, "    {inst}")?;
        }
        writeln!(f, "    {}", self.term)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} ({} vars)", self.name, self.vars.len())?;
        for (index, block) in self.blocks.iter().enumerate() {
            writeln!(f, "  bb{index}:")?;
            block.fmt(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, global) in self.globals.iter().enumerate() {
            writeln!(f, "global @g{index} {} : {:?}", global.name, global.kind)?;
        }
        for func in &self.funcs {
            func.fmt(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::lower;

    #[test]
    fn printing_smoke() {
        let ast = supersym_lang::parse(
            "global arr a[4]; fn main() -> int { var s = 0; for (i = 0; i < 4; i = i + 1) { s = s + a[i]; } return s; }",
        )
        .unwrap();
        supersym_lang::check(&ast).unwrap();
        let module = lower(&ast).unwrap();
        let text = module.to_string();
        assert!(text.contains("fn main"));
        assert!(text.contains("elem @g0"));
        assert!(text.contains("branch"));
        assert!(text.contains("!origin"));
    }
}
