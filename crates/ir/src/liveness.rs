//! Variable liveness (backward dataflow over blocks).
//!
//! Vregs are block-local by construction, so the only values with
//! inter-block lifetimes are *variables*. This analysis tells dead-store
//! elimination which `WriteVar`s matter and the register allocator which
//! locals are worth home registers.

use crate::func::{BlockId, Function, Module};
use crate::inst::{Inst, VarRef};
use std::collections::HashSet;

/// Per-block live-in/live-out variable sets.
#[derive(Debug, Clone)]
pub struct VarLiveness {
    /// Variables live at block entry.
    pub live_in: Vec<HashSet<VarRef>>,
    /// Variables live at block exit.
    pub live_out: Vec<HashSet<VarRef>>,
}

impl VarLiveness {
    /// Whether `var` is live out of `block`.
    #[must_use]
    pub fn is_live_out(&self, block: BlockId, var: VarRef) -> bool {
        self.live_out[block.index()].contains(&var)
    }
}

/// Computes variable liveness for one function.
///
/// Globals are treated as live-out of every block that can leave the
/// function (returns and calls can expose them), so stores to globals are
/// never considered dead here. Calls also *use* every global (the callee
/// may read it) and *define* none (conservatively, the callee may write it —
/// handled by treating calls as uses of globals downstream too).
#[must_use]
pub fn var_liveness(module: &Module, func: &Function) -> VarLiveness {
    let n = func.blocks.len();
    // use[b]: read before any write in b. def[b]: written in b before read.
    let mut use_sets = vec![HashSet::new(); n];
    let mut def_sets: Vec<HashSet<VarRef>> = vec![HashSet::new(); n];
    for (index, block) in func.blocks.iter().enumerate() {
        for inst in &block.insts {
            match inst {
                Inst::ReadVar { var, .. } if !def_sets[index].contains(var) => {
                    use_sets[index].insert(*var);
                }
                Inst::ReadVar { .. } => {}
                Inst::WriteVar { var, .. } => {
                    def_sets[index].insert(*var);
                }
                Inst::Call { .. } => {
                    // The callee may read any global: treat all globals as
                    // used here unless already (re)defined... a write before
                    // the call still reaches the callee, so calls *use*
                    // globals regardless of def_sets.
                    for g in 0..module.globals.len() {
                        use_sets[index].insert(VarRef::Global(crate::func::GlobalId(g as u32)));
                    }
                    // And may write any global: kill nothing (conservative).
                }
                _ => {}
            }
        }
    }
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VarRef>> = vec![HashSet::new(); n];
    // Returns expose globals.
    let globals_set: HashSet<VarRef> = (0..module.globals.len())
        .map(|g| VarRef::Global(crate::func::GlobalId(g as u32)))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for index in (0..n).rev() {
            let block = &func.blocks[index];
            let mut out: HashSet<VarRef> = HashSet::new();
            if block.term.successors().is_empty() {
                out.extend(globals_set.iter().copied());
            }
            for succ in block.term.successors() {
                out.extend(live_in[succ.index()].iter().copied());
            }
            let mut inn = out.clone();
            inn.retain(|v| !def_sets[index].contains(v));
            inn.extend(use_sets[index].iter().copied());
            if out != live_out[index] || inn != live_in[index] {
                live_out[index] = out;
                live_in[index] = inn;
                changed = true;
            }
        }
    }
    VarLiveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, GlobalId, GlobalInfo, GlobalKind, LocalId, VarInfo};
    use crate::inst::{Terminator, VReg};
    use supersym_lang::ast::Ty;

    fn local(i: u32) -> VarRef {
        VarRef::Local(LocalId(i))
    }

    fn make_module(func: Function) -> Module {
        Module {
            globals: vec![GlobalInfo {
                name: "g".into(),
                ty: Ty::Int,
                kind: GlobalKind::Scalar { init: 0.0 },
            }],
            funcs: vec![func],
            entry: 0,
        }
    }

    #[test]
    fn straightline_local_dead_after_last_read() {
        // bb0: write l0; jump bb1. bb1: read l0; return.
        let func = Function {
            name: "f".into(),
            vars: vec![VarInfo {
                name: "x".into(),
                ty: Ty::Int,
                param_index: None,
            }],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(0),
                            value: 1,
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(0),
                        },
                    ],
                    term: Terminator::Jump(crate::func::BlockId(1)),
                },
                Block {
                    insts: vec![Inst::ReadVar {
                        dst: VReg(1),
                        var: local(0),
                    }],
                    term: Terminator::Return(None),
                },
            ],
            vreg_tys: vec![Ty::Int, Ty::Int],
        };
        let module = make_module(func);
        let live = var_liveness(&module, &module.funcs[0]);
        assert!(live.is_live_out(crate::func::BlockId(0), local(0)));
        assert!(!live.is_live_out(crate::func::BlockId(1), local(0)));
    }

    #[test]
    fn globals_live_at_returns() {
        let func = Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![Block::empty(Terminator::Return(None))],
            vreg_tys: vec![],
        };
        let module = make_module(func);
        let live = var_liveness(&module, &module.funcs[0]);
        assert!(live.is_live_out(crate::func::BlockId(0), VarRef::Global(GlobalId(0))));
    }

    #[test]
    fn calls_keep_globals_live() {
        // bb0: write g; call f; return — the write must stay live.
        let func = Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![Block {
                insts: vec![
                    Inst::ConstInt {
                        dst: VReg(0),
                        value: 1,
                    },
                    Inst::WriteVar {
                        var: VarRef::Global(GlobalId(0)),
                        src: VReg(0),
                    },
                    Inst::Call {
                        dst: None,
                        callee: 0,
                        args: vec![],
                    },
                ],
                term: Terminator::Return(None),
            }],
            vreg_tys: vec![Ty::Int],
        };
        let module = make_module(func);
        let live = var_liveness(&module, &module.funcs[0]);
        // The global is in the block's use set (the call reads it), so it is
        // live-in as well.
        assert!(live.live_in[0].contains(&VarRef::Global(GlobalId(0))));
    }

    #[test]
    fn loop_carried_local_stays_live() {
        // bb0 -> bb1(header, reads l0) -> {bb1 via bb2(writes l0), bb3}.
        let func = Function {
            name: "f".into(),
            vars: vec![VarInfo {
                name: "i".into(),
                ty: Ty::Int,
                param_index: None,
            }],
            ret: None,
            blocks: vec![
                Block::empty(Terminator::Jump(crate::func::BlockId(1))),
                Block {
                    insts: vec![Inst::ReadVar {
                        dst: VReg(0),
                        var: local(0),
                    }],
                    term: Terminator::Branch {
                        cond: VReg(0),
                        then_bb: crate::func::BlockId(2),
                        else_bb: crate::func::BlockId(3),
                    },
                },
                Block {
                    insts: vec![
                        Inst::ConstInt {
                            dst: VReg(1),
                            value: 1,
                        },
                        Inst::WriteVar {
                            var: local(0),
                            src: VReg(1),
                        },
                    ],
                    term: Terminator::Jump(crate::func::BlockId(1)),
                },
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int, Ty::Int],
        };
        let module = make_module(func);
        let live = var_liveness(&module, &module.funcs[0]);
        // The write in the latch feeds the header's read on the next trip.
        assert!(live.is_live_out(crate::func::BlockId(2), local(0)));
        assert!(live.live_in[1].contains(&local(0)));
    }
}
