//! AST → IR lowering.
//!
//! Expects a [`supersym_lang::check`]ed module. Lowering establishes the
//! block-local vreg discipline: every statement's expression trees become
//! straight-line TAC in the current block, with variables read/written
//! through explicit `ReadVar`/`WriteVar`.

use crate::func::{Block, BlockId, Function, GlobalId, GlobalInfo, GlobalKind, Module, VarInfo};
use crate::inst::{CmpOp, FloatBinOp, Inst, IntBinOp, Terminator, VReg, VarRef};
use std::collections::HashMap;
use supersym_lang::ast;
use supersym_lang::ast::{BinOp, Expr, Stmt, Ty, UnOp};
use supersym_lang::LangError;

/// Lowers a checked AST module into IR.
///
/// The entry function is `main` when present, else the first function.
///
/// # Errors
///
/// Returns a [`LangError`] if the module references undefined names — this
/// cannot happen for modules that passed [`supersym_lang::check`].
pub fn lower(source: &ast::Module) -> Result<Module, LangError> {
    // Gate the whole module's nesting depth up front (measured
    // iteratively): lowering, its annotation helpers, and even recursive
    // `Drop` of the tree all recurse to the AST depth, and a typed error
    // beats a stack overflow no handler can catch.
    if source.depth() > MAX_LOWER_DEPTH {
        return Err(LangError::TooDeep {
            limit: MAX_LOWER_DEPTH,
            line: 0,
        });
    }
    let mut globals = Vec::new();
    let mut global_ids = HashMap::new();
    for g in &source.globals {
        global_ids.insert(g.name.clone(), GlobalId(globals.len() as u32));
        globals.push(GlobalInfo {
            name: g.name.clone(),
            ty: g.ty,
            kind: match g.kind {
                ast::GlobalKind::Scalar { init } => GlobalKind::Scalar {
                    init: init.unwrap_or(0.0),
                },
                ast::GlobalKind::Array { len } => GlobalKind::Array { len },
            },
        });
    }
    let func_ids: HashMap<String, u32> = source
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u32))
        .collect();
    let func_rets: HashMap<String, Option<Ty>> = source
        .funcs
        .iter()
        .map(|f| (f.name.clone(), f.ret))
        .collect();

    let mut funcs = Vec::new();
    for f in &source.funcs {
        let ctx = LowerCtx {
            globals: &globals,
            global_ids: &global_ids,
            func_ids: &func_ids,
            func_rets: &func_rets,
        };
        funcs.push(lower_function(&ctx, f)?);
    }
    // A module with no functions has no entry to fall back on; it would
    // lower into a "program" whose entry points past the function table.
    if funcs.is_empty() {
        return Err(LangError::Undefined {
            name: "main".to_string(),
            line: 0,
        });
    }
    let entry = source
        .funcs
        .iter()
        .position(|f| f.name == "main")
        .unwrap_or(0);
    Ok(Module {
        globals,
        funcs,
        entry,
    })
}

struct LowerCtx<'a> {
    globals: &'a [GlobalInfo],
    global_ids: &'a HashMap<String, GlobalId>,
    func_ids: &'a HashMap<String, u32>,
    func_rets: &'a HashMap<String, Option<Ty>>,
}

/// Depth limit for the lowering recursion: the checker's AST bound plus
/// headroom for the handful of levels source-level unrolling can add to an
/// already-checked tree (shifted loop bounds, substituted induction
/// variables). Lowering a deeper tree fails with [`LangError::TooDeep`]
/// instead of overflowing the stack.
const MAX_LOWER_DEPTH: u32 = supersym_lang::MAX_AST_DEPTH + 64;

struct FnLowerer<'a> {
    ctx: &'a LowerCtx<'a>,
    func: Function,
    cur: BlockId,
    scopes: Vec<HashMap<String, crate::func::LocalId>>,
    depth: u32,
}

fn undefined(name: &str) -> LangError {
    LangError::Undefined {
        name: name.to_string(),
        line: 0,
    }
}

fn lower_function(ctx: &LowerCtx<'_>, decl: &ast::FnDecl) -> Result<Function, LangError> {
    let mut func = Function {
        name: decl.name.clone(),
        vars: Vec::new(),
        ret: decl.ret,
        blocks: vec![Block::empty(Terminator::Return(None))],
        vreg_tys: Vec::new(),
    };
    let mut scopes = vec![HashMap::new()];
    for (index, (name, ty)) in decl.params.iter().enumerate() {
        let id = crate::func::LocalId(func.vars.len() as u32);
        func.vars.push(VarInfo {
            name: name.clone(),
            ty: *ty,
            param_index: Some(index),
        });
        scopes[0].insert(name.clone(), id);
    }
    let mut lowerer = FnLowerer {
        ctx,
        func,
        cur: BlockId(0),
        scopes,
        depth: 0,
    };
    lowerer.block(&decl.body)?;
    // Fall-off-the-end return (void functions; checked functions returning a
    // value always return explicitly on every live path or fall into this
    // default, which returns garbage only for paths check() deemed dead).
    lowerer.set_term(Terminator::Return(None));
    Ok(lowerer.func)
}

impl FnLowerer<'_> {
    fn emit(&mut self, inst: Inst) {
        self.func.blocks[self.cur.index()].insts.push(inst);
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func
            .blocks
            .push(Block::empty(Terminator::Return(None)));
        id
    }

    fn set_term(&mut self, term: Terminator) {
        self.func.blocks[self.cur.index()].term = term;
    }

    fn lookup(&self, name: &str) -> Option<VarRef> {
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.get(name) {
                return Some(VarRef::Local(id));
            }
        }
        self.ctx
            .global_ids
            .get(name)
            .filter(|g| {
                matches!(
                    self.ctx.globals[g.0 as usize].kind,
                    GlobalKind::Scalar { .. }
                )
            })
            .map(|&g| VarRef::Global(g))
    }

    fn var_ty(&self, var: VarRef) -> Ty {
        match var {
            VarRef::Global(g) => self.ctx.globals[g.0 as usize].ty,
            VarRef::Local(l) => self.func.vars[l.0 as usize].ty,
        }
    }

    fn block(&mut self, block: &ast::Block) -> Result<(), LangError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// Bumps the lowering recursion depth, failing with
    /// [`LangError::TooDeep`] at [`MAX_LOWER_DEPTH`].
    fn enter(&mut self) -> Result<(), LangError> {
        if self.depth >= MAX_LOWER_DEPTH {
            return Err(LangError::TooDeep {
                limit: MAX_LOWER_DEPTH,
                line: 0,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        self.enter()?;
        let result = self.stmt_inner(stmt);
        self.leave();
        result
    }

    fn stmt_inner(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Let { name, ty, init } => {
                let (src, _) = self.expr(init)?;
                let id = crate::func::LocalId(self.func.vars.len() as u32);
                self.func.vars.push(VarInfo {
                    name: name.clone(),
                    ty: *ty,
                    param_index: None,
                });
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), id);
                self.emit(Inst::WriteVar {
                    var: VarRef::Local(id),
                    src,
                });
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let var = self.lookup(name).ok_or_else(|| undefined(name))?;
                let (src, _) = self.expr(value)?;
                self.emit(Inst::WriteVar { var, src });
                Ok(())
            }
            Stmt::AssignElem { arr, index, value } => {
                let arr_id = *self.ctx.global_ids.get(arr).ok_or_else(|| undefined(arr))?;
                let origin = self.index_origin(index);
                let (index, _) = self.expr(index)?;
                let (src, _) = self.expr(value)?;
                self.emit(Inst::WriteElem {
                    arr: arr_id,
                    index,
                    src,
                    origin,
                });
                Ok(())
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (cond, _) = self.expr(cond)?;
                let then_bb = self.new_block();
                let join_bb = self.new_block();
                let else_bb = if else_blk.is_some() {
                    self.new_block()
                } else {
                    join_bb
                };
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                });
                self.cur = then_bb;
                self.block(then_blk)?;
                self.set_term(Terminator::Jump(join_bb));
                if let Some(else_blk) = else_blk {
                    self.cur = else_bb;
                    self.block(else_blk)?;
                    self.set_term(Terminator::Jump(join_bb));
                }
                self.cur = join_bb;
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                self.set_term(Terminator::Jump(header));
                self.cur = header;
                let (cond, _) = self.expr(cond)?;
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.cur = body_bb;
                self.block(body)?;
                self.set_term(Terminator::Jump(header));
                self.cur = exit_bb;
                Ok(())
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                // i = init
                let (init_vreg, _) = self.expr(init)?;
                let id = crate::func::LocalId(self.func.vars.len() as u32);
                self.func.vars.push(VarInfo {
                    name: var.clone(),
                    ty: Ty::Int,
                    param_index: None,
                });
                self.scopes.push(HashMap::new());
                self.scopes
                    .last_mut()
                    .expect("just pushed")
                    .insert(var.clone(), id);
                self.emit(Inst::WriteVar {
                    var: VarRef::Local(id),
                    src: init_vreg,
                });
                // header: cond ? body : exit
                let header = self.new_block();
                self.set_term(Terminator::Jump(header));
                self.cur = header;
                let (cond, _) = self.expr(cond)?;
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.set_term(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                // body; i = i + step; jump header
                self.cur = body_bb;
                self.block(body)?;
                let i_val = self.func.new_vreg(Ty::Int);
                self.emit(Inst::ReadVar {
                    dst: i_val,
                    var: VarRef::Local(id),
                });
                let step_vreg = self.func.new_vreg(Ty::Int);
                self.emit(Inst::ConstInt {
                    dst: step_vreg,
                    value: *step,
                });
                let next = self.func.new_vreg(Ty::Int);
                self.emit(Inst::IntBin {
                    op: IntBinOp::Add,
                    dst: next,
                    lhs: i_val,
                    rhs: step_vreg,
                });
                self.emit(Inst::WriteVar {
                    var: VarRef::Local(id),
                    src: next,
                });
                self.set_term(Terminator::Jump(header));
                self.scopes.pop();
                self.cur = exit_bb;
                Ok(())
            }
            Stmt::Return(value) => {
                let vreg = match value {
                    Some(value) => Some(self.expr(value)?.0),
                    None => None,
                };
                self.set_term(Terminator::Return(vreg));
                // Anything after a return in the same source block is dead;
                // keep lowering into a fresh unreachable block.
                let dead = self.new_block();
                self.cur = dead;
                Ok(())
            }
            Stmt::ExprStmt(expr) => {
                if let Expr::Call { name, args } = expr {
                    self.lower_call(name, args, /* want_value = */ false)?;
                } else {
                    self.expr(expr)?;
                }
                Ok(())
            }
        }
    }

    /// Decomposes an index expression into *base + constant delta* for the
    /// disambiguation annotation: the top-level additive chain is flattened,
    /// integer-literal terms are summed into the delta, and the remaining
    /// terms (canonically ordered) are fingerprinted as the base.
    ///
    /// Expressions containing calls are not annotated (the callee could
    /// change the base's meaning between two uses); neither are those whose
    /// base terms reference no variables we can track.
    fn index_origin(&self, index: &Expr) -> Option<crate::inst::IndexOrigin> {
        use crate::inst::IndexOrigin;
        if index.contains_call() {
            return None;
        }
        let mut delta = 0_i64;
        let mut terms: Vec<(bool, &Expr)> = Vec::new(); // (negated, term)
        flatten_additive(index, false, &mut delta, &mut terms);
        if terms.is_empty() {
            return Some(IndexOrigin::Absolute(delta));
        }
        // Collect the variables the base reads; all must resolve.
        let mut vars: Vec<VarRef> = Vec::new();
        for (_, term) in &terms {
            if !self.collect_vars(term, &mut vars) {
                return None;
            }
        }
        vars.sort_unstable();
        vars.dedup();
        // Canonical fingerprint: sorted (sign, structural-hash) pairs.
        let mut prints: Vec<(bool, u64)> = terms
            .iter()
            .map(|&(neg, term)| (neg, fingerprint(term)))
            .collect();
        prints.sort_unstable();
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        prints.hash(&mut hasher);
        Some(IndexOrigin::Relative {
            base: hasher.finish(),
            vars,
            delta,
        })
    }

    /// Accumulates the variables read by `expr` into `vars`; returns `false`
    /// if any name fails to resolve (should not happen post-check).
    fn collect_vars(&self, expr: &Expr, vars: &mut Vec<VarRef>) -> bool {
        match expr {
            Expr::IntLit(_) | Expr::FloatLit(_) => true,
            Expr::Var(name) => match self.lookup(name) {
                Some(var) => {
                    vars.push(var);
                    true
                }
                None => false,
            },
            // An array element in the base could change under stores we do
            // not track: refuse the annotation.
            Expr::Elem { .. } => false,
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.collect_vars(expr, vars),
            Expr::Binary { lhs, rhs, .. } => {
                self.collect_vars(lhs, vars) && self.collect_vars(rhs, vars)
            }
            Expr::Call { .. } => false,
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        want_value: bool,
    ) -> Result<Option<(VReg, Ty)>, LangError> {
        let callee = *self.ctx.func_ids.get(name).ok_or_else(|| undefined(name))?;
        let ret = *self
            .ctx
            .func_rets
            .get(name)
            .ok_or_else(|| undefined(name))?;
        let mut arg_vregs = Vec::with_capacity(args.len());
        for arg in args {
            arg_vregs.push(self.expr(arg)?.0);
        }
        let dst = match (want_value, ret) {
            (_, Some(ty)) => Some((self.func.new_vreg(ty), ty)),
            (false, None) => None,
            (true, None) => return Err(undefined(name)), // checked earlier
        };
        self.emit(Inst::Call {
            dst: dst.map(|(v, _)| v),
            callee,
            args: arg_vregs,
        });
        Ok(dst)
    }

    fn expr(&mut self, expr: &Expr) -> Result<(VReg, Ty), LangError> {
        self.enter()?;
        let result = self.expr_inner(expr);
        self.leave();
        result
    }

    fn expr_inner(&mut self, expr: &Expr) -> Result<(VReg, Ty), LangError> {
        match expr {
            Expr::IntLit(value) => {
                let dst = self.func.new_vreg(Ty::Int);
                self.emit(Inst::ConstInt { dst, value: *value });
                Ok((dst, Ty::Int))
            }
            Expr::FloatLit(value) => {
                let dst = self.func.new_vreg(Ty::Float);
                self.emit(Inst::ConstFloat { dst, value: *value });
                Ok((dst, Ty::Float))
            }
            Expr::Var(name) => {
                let var = self.lookup(name).ok_or_else(|| undefined(name))?;
                let ty = self.var_ty(var);
                let dst = self.func.new_vreg(ty);
                self.emit(Inst::ReadVar { dst, var });
                Ok((dst, ty))
            }
            Expr::Elem { arr, index } => {
                let arr_id = *self.ctx.global_ids.get(arr).ok_or_else(|| undefined(arr))?;
                let ty = self.ctx.globals[arr_id.0 as usize].ty;
                let origin = self.index_origin(index);
                let (index, _) = self.expr(index)?;
                let dst = self.func.new_vreg(ty);
                self.emit(Inst::ReadElem {
                    dst,
                    arr: arr_id,
                    index,
                    origin,
                });
                Ok((dst, ty))
            }
            Expr::Unary { op, expr } => {
                let (operand, ty) = self.expr(expr)?;
                match (op, ty) {
                    (UnOp::Neg, Ty::Int) => {
                        let zero = self.func.new_vreg(Ty::Int);
                        self.emit(Inst::ConstInt {
                            dst: zero,
                            value: 0,
                        });
                        let dst = self.func.new_vreg(Ty::Int);
                        self.emit(Inst::IntBin {
                            op: IntBinOp::Sub,
                            dst,
                            lhs: zero,
                            rhs: operand,
                        });
                        Ok((dst, Ty::Int))
                    }
                    (UnOp::Neg, Ty::Float) => {
                        let zero = self.func.new_vreg(Ty::Float);
                        self.emit(Inst::ConstFloat {
                            dst: zero,
                            value: 0.0,
                        });
                        let dst = self.func.new_vreg(Ty::Float);
                        self.emit(Inst::FloatBin {
                            op: FloatBinOp::Sub,
                            dst,
                            lhs: zero,
                            rhs: operand,
                        });
                        Ok((dst, Ty::Float))
                    }
                    (UnOp::Not, _) => {
                        let zero = self.func.new_vreg(Ty::Int);
                        self.emit(Inst::ConstInt {
                            dst: zero,
                            value: 0,
                        });
                        let dst = self.func.new_vreg(Ty::Int);
                        self.emit(Inst::IntBin {
                            op: IntBinOp::Cmp(CmpOp::Eq),
                            dst,
                            lhs: operand,
                            rhs: zero,
                        });
                        Ok((dst, Ty::Int))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (lhs, lhs_ty) = self.expr(lhs)?;
                let (rhs, _) = self.expr(rhs)?;
                match lhs_ty {
                    Ty::Int => {
                        let ir_op = int_bin_op(*op);
                        let dst = self.func.new_vreg(Ty::Int);
                        self.emit(Inst::IntBin {
                            op: ir_op,
                            dst,
                            lhs,
                            rhs,
                        });
                        Ok((dst, Ty::Int))
                    }
                    Ty::Float => {
                        if let Some(cmp) = cmp_op(*op) {
                            let dst = self.func.new_vreg(Ty::Int);
                            self.emit(Inst::FloatCmp {
                                op: cmp,
                                dst,
                                lhs,
                                rhs,
                            });
                            Ok((dst, Ty::Int))
                        } else {
                            let ir_op = float_bin_op(*op);
                            let dst = self.func.new_vreg(Ty::Float);
                            self.emit(Inst::FloatBin {
                                op: ir_op,
                                dst,
                                lhs,
                                rhs,
                            });
                            Ok((dst, Ty::Float))
                        }
                    }
                }
            }
            Expr::Call { name, args } => {
                let result = self.lower_call(name, args, true)?;
                Ok(result.expect("value-producing call"))
            }
            Expr::Cast { to, expr } => {
                let (src, _) = self.expr(expr)?;
                let dst = self.func.new_vreg(*to);
                self.emit(Inst::Cast { dst, src, to: *to });
                Ok((dst, *to))
            }
        }
    }
}

/// Flattens a top-level `+`/`-` chain: literal terms are folded into
/// `delta`, everything else is pushed onto `terms` with its sign.
fn flatten_additive<'e>(
    expr: &'e Expr,
    negated: bool,
    delta: &mut i64,
    terms: &mut Vec<(bool, &'e Expr)>,
) {
    match expr {
        Expr::IntLit(v) => {
            *delta = delta.wrapping_add(if negated { -*v } else { *v });
        }
        Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => {
            flatten_additive(lhs, negated, delta, terms);
            flatten_additive(rhs, negated, delta, terms);
        }
        Expr::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
        } => {
            flatten_additive(lhs, negated, delta, terms);
            flatten_additive(rhs, !negated, delta, terms);
        }
        other => terms.push((negated, other)),
    }
}

/// Structural fingerprint of an expression (stable across clones).
fn fingerprint(expr: &Expr) -> u64 {
    use std::hash::{Hash, Hasher};
    fn walk<H: Hasher>(expr: &Expr, h: &mut H) {
        match expr {
            Expr::IntLit(v) => {
                0_u8.hash(h);
                v.hash(h);
            }
            Expr::FloatLit(v) => {
                1_u8.hash(h);
                v.to_bits().hash(h);
            }
            Expr::Var(name) => {
                2_u8.hash(h);
                name.hash(h);
            }
            Expr::Elem { arr, index } => {
                3_u8.hash(h);
                arr.hash(h);
                walk(index, h);
            }
            Expr::Unary { op, expr } => {
                4_u8.hash(h);
                std::mem::discriminant(op).hash(h);
                walk(expr, h);
            }
            Expr::Binary { op, lhs, rhs } => {
                5_u8.hash(h);
                std::mem::discriminant(op).hash(h);
                walk(lhs, h);
                walk(rhs, h);
            }
            Expr::Call { name, args } => {
                6_u8.hash(h);
                name.hash(h);
                for arg in args {
                    walk(arg, h);
                }
            }
            Expr::Cast { to, expr } => {
                7_u8.hash(h);
                std::mem::discriminant(to).hash(h);
                walk(expr, h);
            }
        }
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    walk(expr, &mut hasher);
    hasher.finish()
}

fn cmp_op(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        _ => None,
    }
}

fn int_bin_op(op: BinOp) -> IntBinOp {
    if let Some(cmp) = cmp_op(op) {
        return IntBinOp::Cmp(cmp);
    }
    match op {
        BinOp::Add => IntBinOp::Add,
        BinOp::Sub => IntBinOp::Sub,
        BinOp::Mul => IntBinOp::Mul,
        BinOp::Div => IntBinOp::Div,
        BinOp::Rem => IntBinOp::Rem,
        BinOp::And => IntBinOp::And,
        BinOp::Or => IntBinOp::Or,
        BinOp::Xor => IntBinOp::Xor,
        BinOp::Shl => IntBinOp::Shl,
        BinOp::Shr => IntBinOp::Shr,
        _ => unreachable!("comparisons handled above"),
    }
}

fn float_bin_op(op: BinOp) -> FloatBinOp {
    match op {
        BinOp::Add => FloatBinOp::Add,
        BinOp::Sub => FloatBinOp::Sub,
        BinOp::Mul => FloatBinOp::Mul,
        BinOp::Div => FloatBinOp::Div,
        _ => unreachable!("type checking rejects other float operators"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &str) -> Module {
        let ast = supersym_lang::parse(src).unwrap();
        supersym_lang::check(&ast).unwrap();
        let module = lower(&ast).unwrap();
        module.validate().unwrap();
        module
    }

    #[test]
    fn function_less_module_rejected_not_lowered() {
        // Found by the torture harness: `global arr a[32];` alone (or an
        // empty file) used to lower into a program with no functions and
        // a dangling entry, which failed `Program::validate` only as a
        // debug assertion deep in the driver.
        for source in ["", "global arr a[32];"] {
            let module = supersym_lang::parse(source).unwrap();
            supersym_lang::check(&module).unwrap();
            assert!(
                matches!(lower(&module), Err(LangError::Undefined { ref name, .. }) if name == "main"),
                "{source:?} must not lower"
            );
        }
    }

    #[test]
    fn too_deep_module_rejected_not_crashed() {
        use supersym_lang::ast::{BinOp, Block, Expr, FnDecl, Module, Stmt};
        // Build a left-leaning chain one node past the lowering limit; the
        // parser never sees it, so lowering's own gate must fire.
        let mut e = Expr::IntLit(1);
        for _ in 0..MAX_LOWER_DEPTH {
            e = Expr::binary(BinOp::Add, e, Expr::IntLit(1));
        }
        let module = Module {
            globals: vec![],
            funcs: vec![FnDecl {
                name: "main".into(),
                params: vec![],
                ret: Some(supersym_lang::ast::Ty::Int),
                body: Block {
                    stmts: vec![Stmt::Return(Some(e))],
                },
            }],
        };
        assert!(module.depth() > MAX_LOWER_DEPTH);
        assert!(matches!(lower(&module), Err(LangError::TooDeep { .. })));
    }

    #[test]
    fn lower_arithmetic() {
        let m = lower_src("fn main() -> int { return 1 + 2 * 3; }");
        let f = &m.funcs[0];
        assert_eq!(f.blocks.len(), 2); // entry + dead block after return
        assert!(matches!(f.blocks[0].term, Terminator::Return(Some(_))));
        assert_eq!(f.inst_count(), 5); // 3 consts + mul + add
    }

    #[test]
    fn lower_if_else_diamond() {
        let m = lower_src("fn main(int x) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }");
        let f = &m.funcs[0];
        // entry, then, join, else.
        assert_eq!(f.blocks.len(), 4);
        assert!(matches!(f.blocks[0].term, Terminator::Branch { .. }));
    }

    #[test]
    fn lower_for_loop_shape() {
        let m = lower_src("fn main() { for (i = 0; i < 4; i = i + 1) { } }");
        let f = &m.funcs[0];
        let loops = crate::cfg::natural_loops(f);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn lower_while_loop_shape() {
        let m = lower_src("fn main(int n) { while (n > 0) { n = n - 1; } }");
        let loops = crate::cfg::natural_loops(&m.funcs[0]);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn origin_annotations() {
        let m = lower_src(
            "global arr a[8];
             fn main() { for (i = 0; i < 4; i = i + 1) { a[i + 1] = a[i]; } }",
        );
        let f = &m.funcs[0];
        let mut read_origin = None;
        let mut write_origin = None;
        for block in &f.blocks {
            for inst in &block.insts {
                match inst {
                    Inst::ReadElem { origin, .. } => read_origin = origin.clone(),
                    Inst::WriteElem { origin, .. } => write_origin = origin.clone(),
                    _ => {}
                }
            }
        }
        let crate::inst::IndexOrigin::Relative {
            base: rb,
            delta: rd,
            ..
        } = read_origin.expect("read annotated")
        else {
            panic!("read origin should be relative")
        };
        let crate::inst::IndexOrigin::Relative {
            base: wb,
            delta: wd,
            ..
        } = write_origin.expect("write annotated")
        else {
            panic!("write origin should be relative")
        };
        assert_eq!(rb, wb, "both index off the same base");
        assert_eq!(rd, 0);
        assert_eq!(wd, 1);
    }

    #[test]
    fn void_and_value_calls() {
        let m = lower_src(
            "fn helper() { }
             fn twice(int x) -> int { return x * 2; }
             fn main() -> int { helper(); return twice(21); }",
        );
        let main = &m.funcs[2];
        let calls: Vec<&Inst> = main.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(matches!(calls[0], Inst::Call { dst: None, .. }));
        assert!(matches!(calls[1], Inst::Call { dst: Some(_), .. }));
    }

    #[test]
    fn entry_is_main() {
        let m = lower_src("fn aux() { } fn main() { }");
        assert_eq!(m.entry, 1);
    }

    #[test]
    fn globals_carried_through() {
        let m = lower_src("global var x = 5; global farr b[3]; fn main() { x = x + 1; }");
        assert_eq!(m.globals.len(), 2);
        assert!(matches!(m.globals[0].kind, GlobalKind::Scalar { init } if init == 5.0));
        assert!(matches!(m.globals[1].kind, GlobalKind::Array { len: 3 }));
    }

    #[test]
    fn float_compare_yields_int_vreg() {
        let m = lower_src("fn main(float a, float b) -> int { return a < b; }");
        let f = &m.funcs[0];
        let cmp = f.blocks[0]
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::FloatCmp { dst, .. } => Some(*dst),
                _ => None,
            })
            .expect("has a float compare");
        assert_eq!(f.vreg_ty(cmp), Ty::Int);
    }

    #[test]
    fn unary_lowering() {
        let m = lower_src("fn main(int x) -> int { return -x + !x; }");
        assert!(m.funcs[0].inst_count() >= 5);
    }

    #[test]
    fn statements_after_return_are_unreachable_but_valid() {
        let m = lower_src("fn main() -> int { return 1; return 2; }");
        assert!(m.validate().is_ok());
    }
}
