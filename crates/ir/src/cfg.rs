//! Control-flow analyses: predecessors, reverse postorder, dominators,
//! natural loops.

use crate::func::{BlockId, Function};

/// Predecessor lists, indexed by block.
#[must_use]
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (index, block) in func.blocks.iter().enumerate() {
        for succ in block.term.successors() {
            preds[succ.index()].push(BlockId(index as u32));
        }
    }
    preds
}

/// Reverse postorder over blocks reachable from the entry.
#[must_use]
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; func.blocks.len()];
    let mut postorder = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    visited[0] = true;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        let succs = func.blocks[block.index()].term.successors();
        if *next < succs.len() {
            let succ = succs[*next];
            *next += 1;
            if !visited[succ.index()] {
                visited[succ.index()] = true;
                stack.push((succ, 0));
            }
        } else {
            postorder.push(block);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Immediate dominators, computed with the Cooper–Harvey–Kennedy iterative
/// algorithm. `idom[entry] == entry`; unreachable blocks get `None`.
#[must_use]
pub fn dominators(func: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(func);
    let mut rpo_index = vec![usize::MAX; func.blocks.len()];
    for (order, &block) in rpo.iter().enumerate() {
        rpo_index[block.index()] = order;
    }
    let preds = predecessors(func);
    let mut idom: Vec<Option<BlockId>> = vec![None; func.blocks.len()];
    idom[0] = Some(BlockId(0));
    let mut changed = true;
    while changed {
        changed = false;
        for &block in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &pred in &preds[block.index()] {
                if idom[pred.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pred,
                    Some(current) => intersect(pred, current, &idom, &rpo_index),
                });
            }
            if let Some(new_idom) = new_idom {
                if idom[block.index()] != Some(new_idom) {
                    idom[block.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has an idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has an idom");
        }
    }
    a
}

/// Whether `a` dominates `b` under the given idom tree.
#[must_use]
pub fn dominates(a: BlockId, b: BlockId, idom: &[Option<BlockId>]) -> bool {
    let mut current = b;
    loop {
        if current == a {
            return true;
        }
        match idom[current.index()] {
            Some(parent) if parent != current => current = parent,
            _ => return false,
        }
    }
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop body (header included).
    pub body: Vec<BlockId>,
    /// The back-edge sources (latches).
    pub latches: Vec<BlockId>,
}

/// Finds natural loops: for every back edge `latch -> header` where the
/// header dominates the latch, collect the loop body. Back edges sharing a
/// header are merged into one loop.
#[must_use]
pub fn natural_loops(func: &Function) -> Vec<Loop> {
    let idom = dominators(func);
    let preds = predecessors(func);
    let mut loops: Vec<Loop> = Vec::new();
    for (index, block) in func.blocks.iter().enumerate() {
        let from = BlockId(index as u32);
        if idom[index].is_none() {
            continue; // unreachable
        }
        for target in block.term.successors() {
            if dominates(target, from, &idom) {
                // Back edge from -> target.
                let loop_entry = loops.iter_mut().find(|l| l.header == target);
                let looped = match loop_entry {
                    Some(l) => {
                        l.latches.push(from);
                        l
                    }
                    None => {
                        loops.push(Loop {
                            header: target,
                            body: vec![target],
                            latches: vec![from],
                        });
                        loops.last_mut().expect("just pushed")
                    }
                };
                // Walk predecessors back from the latch to the header.
                let mut work = vec![from];
                while let Some(b) = work.pop() {
                    if looped.body.contains(&b) {
                        continue;
                    }
                    looped.body.push(b);
                    for &p in &preds[b.index()] {
                        work.push(p);
                    }
                }
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function, Module};
    use crate::inst::{Inst, Terminator, VReg};
    use supersym_lang::ast::Ty;

    /// Builds the classic diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> Function {
        Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![
                Block {
                    insts: vec![Inst::ConstInt {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Terminator::Branch {
                        cond: VReg(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block::empty(Terminator::Jump(BlockId(3))),
                Block::empty(Terminator::Jump(BlockId(3))),
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int],
        }
    }

    /// Entry -> header; header -> {body, exit}; body -> header.
    fn simple_loop() -> Function {
        Function {
            name: "f".into(),
            vars: vec![],
            ret: None,
            blocks: vec![
                Block::empty(Terminator::Jump(BlockId(1))),
                Block {
                    insts: vec![Inst::ConstInt {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Terminator::Branch {
                        cond: VReg(0),
                        then_bb: BlockId(2),
                        else_bb: BlockId(3),
                    },
                },
                Block::empty(Terminator::Jump(BlockId(1))),
                Block::empty(Terminator::Return(None)),
            ],
            vreg_tys: vec![Ty::Int],
        }
    }

    #[test]
    fn diamond_preds() {
        let func = diamond();
        let preds = predecessors(&func);
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn diamond_rpo_starts_at_entry_ends_at_join() {
        let func = diamond();
        let rpo = reverse_postorder(&func);
        assert_eq!(rpo.first(), Some(&BlockId(0)));
        assert_eq!(rpo.last(), Some(&BlockId(3)));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn diamond_dominators() {
        let func = diamond();
        let idom = dominators(&func);
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        // The join is dominated by the entry, not by either branch arm.
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(dominates(BlockId(0), BlockId(3), &idom));
        assert!(!dominates(BlockId(1), BlockId(3), &idom));
    }

    #[test]
    fn loop_detection() {
        let func = simple_loop();
        let loops = natural_loops(&func);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        let mut body = l.body.clone();
        body.sort();
        assert_eq!(body, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut func = diamond();
        func.blocks.push(Block::empty(Terminator::Return(None))); // orphan
        let idom = dominators(&func);
        assert_eq!(idom[4], None);
    }

    #[test]
    fn diamond_has_no_loops() {
        assert!(natural_loops(&diamond()).is_empty());
    }

    #[test]
    fn validate_module_with_loop() {
        let module = Module {
            globals: vec![],
            funcs: vec![simple_loop()],
            entry: 0,
        };
        assert!(module.validate().is_ok());
    }
}
