//! # supersym-ir
//!
//! The intermediate representation of the supersym compiler: three-address
//! code over *virtual registers* organized into a control-flow graph of
//! basic blocks, plus the analyses the optimizer needs (predecessors,
//! reverse postorder, dominators, natural loops, variable liveness).
//!
//! ## The temporaries discipline
//!
//! Virtual registers ([`VReg`]) are **block-local**: no vreg is live across
//! a basic-block boundary or a call. All longer-lived values flow through
//! *variables* ([`VarRef`]) with explicit [`Inst::ReadVar`] /
//! [`Inst::WriteVar`]. This mirrors the paper's compiler, which "divides the
//! register set into two disjoint parts ... one part as temporaries for
//! short-term expressions ... the other part as home locations for local and
//! global variables" (§3). Register allocation later decides which variables
//! get home registers (the paper's *global register allocation*) and maps
//! vregs onto the temporary registers.
//!
//! ## Example
//!
//! ```
//! let module = supersym_lang::parse(
//!     "fn main() -> int { var s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }",
//! )?;
//! supersym_lang::check(&module)?;
//! let ir = supersym_ir::lower(&module)?;
//! assert_eq!(ir.funcs.len(), 1);
//! ir.validate().expect("lowered IR is well-formed");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cfg;
mod func;
mod inst;
mod liveness;
mod lower;
mod printer;

pub use cfg::{dominates, dominators, natural_loops, predecessors, reverse_postorder, Loop};
pub use func::{
    Block, BlockId, Function, GlobalId, GlobalInfo, GlobalKind, IrError, LocalId, Module, VarInfo,
};
pub use inst::{CmpOp, FloatBinOp, IndexOrigin, Inst, IntBinOp, Terminator, VReg, VarRef};
pub use liveness::{var_liveness, VarLiveness};
pub use lower::lower;
