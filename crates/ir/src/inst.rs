//! IR instructions and terminators.

use crate::func::{BlockId, GlobalId, LocalId};
use std::fmt;
use supersym_lang::ast::Ty;

/// A virtual register. Block-local by construction (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A variable reference: a module global scalar or a function local
/// (parameters are locals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarRef {
    /// A global scalar.
    Global(GlobalId),
    /// A function-local variable or parameter.
    Local(LocalId),
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarRef::Global(g) => write!(f, "@g{}", g.0),
            VarRef::Local(l) => write!(f, "@l{}", l.0),
        }
    }
}

/// Integer binary operations (comparisons yield 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic).
    Shr,
    /// Comparison.
    Cmp(CmpOp),
}

impl IntBinOp {
    /// Whether the operation commutes.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            IntBinOp::Add
                | IntBinOp::Mul
                | IntBinOp::And
                | IntBinOp::Or
                | IntBinOp::Xor
                | IntBinOp::Cmp(CmpOp::Eq)
                | IntBinOp::Cmp(CmpOp::Ne)
        )
    }
}

/// Comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// The predicate with operands swapped (`a < b` == `b > a`).
    #[must_use]
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated predicate (`!(a < b)` == `a >= b`).
    #[must_use]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Floating-point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl FloatBinOp {
    /// Whether the operation commutes (treating FP arithmetic as exact, as
    /// the paper's reassociating unroller does).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, FloatBinOp::Add | FloatBinOp::Mul)
    }
}

/// The compiler's decomposition of an array index into
/// *base expression + constant delta*, used for memory disambiguation.
///
/// Two accesses to the same array whose origins share the same `base`
/// fingerprint — and whose base expressions' variables are unmodified in
/// between — differ only by their deltas, so distinct deltas prove
/// distinct addresses. This is the analysis behind the paper's careful
/// unrolling (§4.4): after substituting `j -> j + k` into `a[row + j]`, all
/// copies share the base `{row, j}` and carry deltas `0..factor`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexOrigin {
    /// The index is a compile-time constant (e.g. `a[3]`).
    Absolute(i64),
    /// The index is `base-expression + delta`.
    Relative {
        /// Structural fingerprint of the (constant-stripped, canonically
        /// ordered) base expression. Two origins with equal fingerprints
        /// denote the same runtime base value as long as no variable in
        /// the `vars` field has been written in between.
        base: u64,
        /// Variables the base expression reads (invalidation set).
        vars: Vec<VarRef>,
        /// Constant addend.
        delta: i64,
    },
}

/// A non-terminator IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst <- constant` (integer).
    ConstInt {
        /// Destination.
        dst: VReg,
        /// Value.
        value: i64,
    },
    /// `dst <- constant` (float).
    ConstFloat {
        /// Destination.
        dst: VReg,
        /// Value.
        value: f64,
    },
    /// Integer arithmetic `dst <- lhs op rhs`.
    IntBin {
        /// Operation.
        op: IntBinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Float arithmetic `dst <- lhs op rhs`.
    FloatBin {
        /// Operation.
        op: FloatBinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Float comparison `dst <- lhs op rhs` (integer 0/1 result).
    FloatCmp {
        /// Predicate.
        op: CmpOp,
        /// Destination (integer-typed vreg).
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Conversion between `int` and `float`.
    Cast {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
        /// Target type.
        to: Ty,
    },
    /// `dst <- variable`.
    ReadVar {
        /// Destination.
        dst: VReg,
        /// Source variable.
        var: VarRef,
    },
    /// `variable <- src`.
    WriteVar {
        /// Destination variable.
        var: VarRef,
        /// Source vreg.
        src: VReg,
    },
    /// `dst <- arr[index]`.
    ReadElem {
        /// Destination.
        dst: VReg,
        /// The global array.
        arr: GlobalId,
        /// Index vreg (int).
        index: VReg,
        /// Index decomposition for memory disambiguation between unrolled
        /// copies (§4.4).
        origin: Option<IndexOrigin>,
    },
    /// `arr[index] <- src`.
    WriteElem {
        /// The global array.
        arr: GlobalId,
        /// Index vreg (int).
        index: VReg,
        /// Value vreg.
        src: VReg,
        /// Index decomposition, as on reads.
        origin: Option<IndexOrigin>,
    },
    /// Function call. Ends a scheduling region; vregs do not live across it.
    Call {
        /// Result vreg for non-void callees.
        dst: Option<VReg>,
        /// Index of the callee in the module.
        callee: u32,
        /// Argument vregs.
        args: Vec<VReg>,
    },
}

impl Inst {
    /// The vreg this instruction defines, if any.
    #[must_use]
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Inst::ConstInt { dst, .. }
            | Inst::ConstFloat { dst, .. }
            | Inst::IntBin { dst, .. }
            | Inst::FloatBin { dst, .. }
            | Inst::FloatCmp { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::ReadVar { dst, .. }
            | Inst::ReadElem { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::WriteVar { .. } | Inst::WriteElem { .. } => None,
        }
    }

    /// Calls `f` for each vreg this instruction reads.
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        match self {
            Inst::ConstInt { .. } | Inst::ConstFloat { .. } => {}
            Inst::IntBin { lhs, rhs, .. }
            | Inst::FloatBin { lhs, rhs, .. }
            | Inst::FloatCmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Cast { src, .. } => f(*src),
            Inst::ReadVar { .. } => {}
            Inst::WriteVar { src, .. } => f(*src),
            Inst::ReadElem { index, .. } => f(*index),
            Inst::WriteElem { index, src, .. } => {
                f(*index);
                f(*src);
            }
            Inst::Call { args, .. } => {
                for arg in args {
                    f(*arg);
                }
            }
        }
    }

    /// Whether the instruction is *pure*: removable when its result is
    /// unused, and a candidate for CSE / code motion.
    #[must_use]
    pub fn is_pure(&self) -> bool {
        match self {
            Inst::ConstInt { .. }
            | Inst::ConstFloat { .. }
            | Inst::IntBin { .. }
            | Inst::FloatBin { .. }
            | Inst::FloatCmp { .. }
            | Inst::Cast { .. }
            | Inst::ReadVar { .. }
            | Inst::ReadElem { .. } => true,
            Inst::WriteVar { .. } | Inst::WriteElem { .. } | Inst::Call { .. } => false,
        }
    }

    /// Whether the instruction has side effects on memory or variables
    /// (stores and calls).
    #[must_use]
    pub fn is_side_effecting(&self) -> bool {
        matches!(
            self,
            Inst::WriteVar { .. } | Inst::WriteElem { .. } | Inst::Call { .. }
        )
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on an integer vreg (non-zero = then).
    Branch {
        /// Condition vreg.
        cond: VReg,
        /// Target when non-zero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Function return.
    Return(Option<VReg>),
}

impl Terminator {
    /// Successor blocks.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// The vreg the terminator reads, if any.
    #[must_use]
    pub fn used_vreg(&self) -> Option<VReg> {
        match self {
            Terminator::Branch { cond, .. } => Some(*cond),
            Terminator::Return(v) => *v,
            Terminator::Jump(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses() {
        let inst = Inst::IntBin {
            op: IntBinOp::Add,
            dst: VReg(3),
            lhs: VReg(1),
            rhs: VReg(2),
        };
        assert_eq!(inst.dst(), Some(VReg(3)));
        let mut uses = Vec::new();
        inst.for_each_use(|v| uses.push(v));
        assert_eq!(uses, vec![VReg(1), VReg(2)]);
    }

    #[test]
    fn purity() {
        assert!(Inst::ConstInt {
            dst: VReg(0),
            value: 1
        }
        .is_pure());
        assert!(!Inst::WriteVar {
            var: VarRef::Local(LocalId(0)),
            src: VReg(0)
        }
        .is_pure());
        assert!(!Inst::Call {
            dst: None,
            callee: 0,
            args: vec![]
        }
        .is_pure());
    }

    #[test]
    fn cmp_transforms() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn terminator_successors() {
        let branch = Terminator::Branch {
            cond: VReg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(branch.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Return(None).successors(), vec![]);
        assert_eq!(branch.used_vreg(), Some(VReg(0)));
    }

    #[test]
    fn commutativity() {
        assert!(IntBinOp::Add.is_commutative());
        assert!(!IntBinOp::Sub.is_commutative());
        assert!(IntBinOp::Cmp(CmpOp::Eq).is_commutative());
        assert!(!IntBinOp::Cmp(CmpOp::Lt).is_commutative());
        assert!(FloatBinOp::Mul.is_commutative());
        assert!(!FloatBinOp::Div.is_commutative());
    }
}
