//! `stan`: the Stanford (Hennessy) benchmark collection.
//!
//! Substitutes for the paper's "collection of Hennessy benchmarks from
//! Stanford (including puzzle, tower, queens, etc.)": recursive
//! permutations, towers of Hanoi, the eight-queens search, integer matrix
//! multiply, bubble sort, recursive quicksort and the sieve of
//! Eratosthenes — the same composition of recursion-heavy, branchy and
//! array-walking integer code.

use crate::Workload;

/// Builds the benchmark; `reps` scales how many times the collection runs.
#[must_use]
pub fn stan(reps: usize) -> Workload {
    let source = format!(
        r#"
// The Stanford collection.
global arr permarray[12];
global var permcount;
global var movecount;
global arr queenrow[9];
global arr queencol[9];        // column occupied flags
global arr queendiag1[17];
global arr queendiag2[17];
global var solutions;
global arr ima[64];            // 8x8 integer matrices
global arr imb[64];
global arr imr[64];
global arr sortbuf[256];
global var seed = 42;
global arr flags[1024];

fn rnd() -> int {{
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed;
}}

// --- perm: recursive permutation generation (Heap-ish swap scheme) ---
fn swap(int i, int k) {{
    var tmp = permarray[i];
    permarray[i] = permarray[k];
    permarray[k] = tmp;
}}

fn permute(int n) {{
    permcount = permcount + 1;
    if (n > 1) {{
        permute(n - 1);
        for (k = 0; k < n - 1; k = k + 1) {{
            swap(n - 1, k);
            permute(n - 1);
            swap(n - 1, k);
        }}
    }}
}}

fn perm() -> int {{
    for (i = 0; i < 7; i = i + 1) {{ permarray[i] = i; }}
    permcount = 0;
    permute(6);
    return permcount;
}}

// --- towers of Hanoi ---
fn hanoi(int n, int from, int to, int via) {{
    if (n > 0) {{
        hanoi(n - 1, from, via, to);
        movecount = movecount + 1;
        hanoi(n - 1, via, to, from);
    }}
}}

fn towers() -> int {{
    movecount = 0;
    hanoi(10, 0, 2, 1);
    return movecount;
}}

// --- eight queens ---
fn place(int row) {{
    if (row == 8) {{
        solutions = solutions + 1;
        return;
    }}
    for (c = 0; c < 8; c = c + 1) {{
        if (queencol[c] == 0) {{
            if (queendiag1[row + c] == 0) {{
                if (queendiag2[row - c + 8] == 0) {{
                    queencol[c] = 1;
                    queendiag1[row + c] = 1;
                    queendiag2[row - c + 8] = 1;
                    queenrow[row] = c;
                    place(row + 1);
                    queencol[c] = 0;
                    queendiag1[row + c] = 0;
                    queendiag2[row - c + 8] = 0;
                }}
            }}
        }}
    }}
}}

fn queens() -> int {{
    solutions = 0;
    for (i = 0; i < 9; i = i + 1) {{ queencol[i] = 0; }}
    for (i = 0; i < 17; i = i + 1) {{ queendiag1[i] = 0; queendiag2[i] = 0; }}
    place(0);
    return solutions;
}}

// --- integer matrix multiply (8x8) ---
fn intmm() -> int {{
    for (i = 0; i < 64; i = i + 1) {{
        ima[i] = rnd() % 16;
        imb[i] = rnd() % 16;
    }}
    for (i = 0; i < 8; i = i + 1) {{
        for (j = 0; j < 8; j = j + 1) {{
            var s = 0;
            for (k = 0; k < 8; k = k + 1) {{
                s = s + ima[i * 8 + k] * imb[k * 8 + j];
            }}
            imr[i * 8 + j] = s;
        }}
    }}
    return imr[27];
}}

// --- bubble sort ---
fn bubble() -> int {{
    for (i = 0; i < 128; i = i + 1) {{ sortbuf[i] = rnd() % 1000; }}
    for (i = 0; i < 127; i = i + 1) {{
        for (k = 0; k < 127 - i; k = k + 1) {{
            if (sortbuf[k] > sortbuf[k + 1]) {{
                var tmp = sortbuf[k];
                sortbuf[k] = sortbuf[k + 1];
                sortbuf[k + 1] = tmp;
            }}
        }}
    }}
    return sortbuf[64];
}}

// --- recursive quicksort ---
fn quicksort(int lo, int hi) {{
    if (lo >= hi) {{ return; }}
    var pivot = sortbuf[(lo + hi) / 2];
    var i = lo;
    var k = hi;
    while (i <= k) {{
        while (sortbuf[i] < pivot) {{ i = i + 1; }}
        while (sortbuf[k] > pivot) {{ k = k - 1; }}
        if (i <= k) {{
            var tmp = sortbuf[i];
            sortbuf[i] = sortbuf[k];
            sortbuf[k] = tmp;
            i = i + 1;
            k = k - 1;
        }}
    }}
    quicksort(lo, k);
    quicksort(i, hi);
}}

fn quick() -> int {{
    for (i = 0; i < 256; i = i + 1) {{ sortbuf[i] = rnd() % 10000; }}
    quicksort(0, 255);
    return sortbuf[128];
}}

// --- sieve of Eratosthenes ---
fn sieve() -> int {{
    for (i = 0; i < 1024; i = i + 1) {{ flags[i] = 1; }}
    var count = 0;
    for (i = 2; i < 1024; i = i + 1) {{
        if (flags[i] == 1) {{
            count = count + 1;
            var k = i + i;
            while (k < 1024) {{
                flags[k] = 0;
                k = k + i;
            }}
        }}
    }}
    return count;
}}

fn main() -> int {{
    var check = 0;
    for (rep = 0; rep < {reps}; rep = rep + 1) {{
        check = check + perm();
        check = check + towers();
        check = check + queens();
        check = check + intmm();
        check = check + bubble();
        check = check + quick();
        check = check + sieve();
    }}
    return check;
}}
"#,
        reps = reps,
    );
    Workload {
        name: "stan",
        description: "Stanford collection: perm, towers, queens, intmm, bubble, quick, sieve (paper: Hennessy benchmarks)",
        source,
        fp_sensitive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = stan(1);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
