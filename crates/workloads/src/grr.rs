//! `grr`: a PC-board router.
//!
//! Substitutes for the paper's `grr` ("A PC board router"). Implements the
//! classic Lee maze-routing algorithm: each net is routed by a
//! breadth-first wavefront expansion over a grid with obstacles, followed by
//! a backtrace that commits the path (which then becomes an obstacle for
//! later nets — congestion, as on a real board). Integer, queue-driven, and
//! full of data-dependent branches.

use crate::Workload;

/// Builds the benchmark: an `n`×`n` grid and `nets` two-pin nets.
#[must_use]
pub fn grr(n: usize, nets: usize) -> Workload {
    assert!(n >= 8, "grid too small to route");
    let cells = n * n;
    let source = format!(
        r#"
// grr: Lee-algorithm maze router.
global arr grid[{cells}];     // 0 free, 1 obstacle/committed
global arr dist[{cells}];     // wavefront distances (-1 unreached)
global arr queue[{qlen}];     // BFS queue of cell indices
global var qhead; global var qtail;
global var seed = 7;
global var routed; global var total_len; global var failures;

fn rnd(int limit) -> int {{
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed % limit;
}}

fn setup() {{
    for (i = 0; i < {cells}; i = i + 1) {{
        grid[i] = 0;
    }}
    // Sprinkle obstacles (about 15%), keeping the border clear.
    for (i = 0; i < {obstacles}; i = i + 1) {{
        var r = 1 + rnd({nm2});
        var c = 1 + rnd({nm2});
        grid[r * {n} + c] = 1;
    }}
}}

fn push(int cell, int d) {{
    dist[cell] = d;
    queue[qtail] = cell;
    qtail = qtail + 1;
}}

// Expands the wavefront from src until dst is reached. Returns the path
// length, or 0-1 when unroutable.
fn wavefront(int src, int dst) -> int {{
    for (i = 0; i < {cells}; i = i + 1) {{ dist[i] = 0 - 1; }}
    qhead = 0;
    qtail = 0;
    push(src, 0);
    while (qhead < qtail) {{
        var cell = queue[qhead];
        qhead = qhead + 1;
        if (cell == dst) {{ return dist[cell]; }}
        var d = dist[cell] + 1;
        var row = cell / {n};
        var col = cell % {n};
        if (col > 0) {{
            if (grid[cell - 1] == 0 && dist[cell - 1] < 0) {{ push(cell - 1, d); }}
        }}
        if (col < {nm1}) {{
            if (grid[cell + 1] == 0 && dist[cell + 1] < 0) {{ push(cell + 1, d); }}
        }}
        if (row > 0) {{
            if (grid[cell - {n}] == 0 && dist[cell - {n}] < 0) {{ push(cell - {n}, d); }}
        }}
        if (row < {nm1}) {{
            if (grid[cell + {n}] == 0 && dist[cell + {n}] < 0) {{ push(cell + {n}, d); }}
        }}
    }}
    return 0 - 1;
}}

// Walks back from dst to src along decreasing distances, committing cells.
// (Bounds are checked with nested ifs: `&&` does not short-circuit.)
fn backtrace(int src, int dst) {{
    var cell = dst;
    while (cell != src) {{
        grid[cell] = 1;
        var d = dist[cell];
        var row = cell / {n};
        var col = cell % {n};
        var next = 0 - 1;
        if (col > 0) {{
            if (dist[cell - 1] == d - 1) {{ next = cell - 1; }}
        }}
        if (next < 0) {{
            if (col < {nm1}) {{
                if (dist[cell + 1] == d - 1) {{ next = cell + 1; }}
            }}
        }}
        if (next < 0) {{
            if (row > 0) {{
                if (dist[cell - {n}] == d - 1) {{ next = cell - {n}; }}
            }}
        }}
        if (next < 0) {{
            if (row < {nm1}) {{
                if (dist[cell + {n}] == d - 1) {{ next = cell + {n}; }}
            }}
        }}
        if (next < 0) {{ next = src; }}
        cell = next;
    }}
}}

fn free_cell() -> int {{
    var cell = rnd({cells});
    while (grid[cell] == 1) {{
        cell = (cell + 17) % {cells};
    }}
    return cell;
}}

fn main() -> int {{
    setup();
    routed = 0;
    total_len = 0;
    failures = 0;
    for (net = 0; net < {nets}; net = net + 1) {{
        var src = free_cell();
        var dst = free_cell();
        if (src != dst) {{
            var len = wavefront(src, dst);
            if (len > 0) {{
                backtrace(src, dst);
                grid[src] = 1;
                routed = routed + 1;
                total_len = total_len + len;
            }} else {{
                failures = failures + 1;
            }}
        }}
    }}
    return routed * 1000000 + total_len * 100 + failures;
}}
"#,
        n = n,
        nm1 = n - 1,
        nm2 = n - 2,
        cells = cells,
        qlen = cells + 4,
        obstacles = cells * 15 / 100,
        nets = nets,
    );
    Workload {
        name: "grr",
        description: "Lee-algorithm maze router with congestion (paper: grr, a PC board router)",
        source,
        fp_sensitive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = grr(10, 2);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
