//! # supersym-workloads
//!
//! The benchmark suite of the Jouppi/Wall study, ported to Tital. The
//! paper's eight benchmarks (§3) were Modula-2/C programs whose sources are
//! not available; each is replaced here by a program exercising the same
//! code shape (the substitutions are documented per module and in
//! DESIGN.md):
//!
//! | paper | here | character |
//! |---|---|---|
//! | `ccom` (their C compiler) | [`ccom`] lexer + recursive-descent compiler over synthetic source | branchy integer, irregular |
//! | `grr` (PC board router) | [`grr`] Lee-algorithm wavefront router | queues, grids, data-dependent branches |
//! | `linpack` | [`linpack`] DAXPY Gaussian elimination | FP, unrollable inner loop |
//! | `livermore` | [`livermore`] the first 14 Livermore loops | FP kernels incl. recurrences |
//! | `met` (Metronome) | [`met`] gate-level timing verifier | DAG propagation |
//! | `stan` (Stanford suite) | [`stan`] perm/towers/queens/intmm/bubble/quick/sieve | mixed, recursion |
//! | `whet` (Whetstones) | [`whet`] Whetstone modules, polynomial transcendentals | serial FP chains |
//! | `yacc` | [`yacc`] table-driven SLR parser interpreter | table lookups + branches |
//!
//! Every program's `main` returns an integer checksum so the test suite can
//! prove optimizations semantics-preserving.
//!
//! ## Example
//!
//! ```
//! use supersym_workloads::{suite, Size};
//! let workloads = suite(Size::Small);
//! assert_eq!(workloads.len(), 8);
//! for w in &workloads {
//!     // Every benchmark parses and type checks.
//!     let ast = supersym_lang::parse(&w.source)?;
//!     supersym_lang::check(&ast)?;
//! }
//! # Ok::<(), supersym_lang::LangError>(())
//! ```

mod ccom;
mod grr;
mod linpack;
mod livermore;
mod met;
mod stan;
mod whet;
mod yacc;

pub use ccom::ccom;
pub use grr::grr;
pub use linpack::linpack;
pub use livermore::livermore;
pub use met::met;
pub use stan::stan;
pub use whet::whet;
pub use yacc::yacc;

/// A benchmark: a Tital program plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name (the paper's benchmark name).
    pub name: &'static str,
    /// What the program does and what it substitutes for.
    pub description: &'static str,
    /// Tital source text.
    pub source: String,
    /// Whether the checksum is sensitive to FP reassociation (careful
    /// unrolling may change it within a small tolerance).
    pub fp_sensitive: bool,
}

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Quick sizes for unit tests and debug builds.
    Small,
    /// The sizes used by the experiment harness.
    Standard,
}

/// The full eight-benchmark suite at the given size.
#[must_use]
pub fn suite(size: Size) -> Vec<Workload> {
    match size {
        Size::Small => vec![
            ccom(6),
            grr(12, 4),
            linpack(12),
            livermore(40, 2),
            met(120, 2),
            stan(1),
            whet(2),
            yacc(40),
        ],
        Size::Standard => vec![
            ccom(60),
            grr(24, 12),
            linpack(32),
            livermore(100, 10),
            met(600, 10),
            stan(2),
            whet(12),
            yacc(400),
        ],
    }
}

/// The two numeric benchmarks used in the unrolling study (Figure 4-6).
#[must_use]
pub fn numeric_suite(size: Size) -> Vec<Workload> {
    match size {
        Size::Small => vec![linpack(12), livermore(40, 2)],
        Size::Standard => vec![linpack(32), livermore(100, 10)],
    }
}
