//! `livermore`: the first 14 Livermore loops (double precision, not
//! unrolled), after McMahon's kernel collection.
//!
//! Kernels with long dependence-free bodies (1, 3, 7, 9, 12) supply the
//! parallelism; kernels 5, 6 and 11 are the genuine recurrences the paper
//! leans on ("Three of the Livermore loops, for example, implement
//! recurrences that benefit little from unrolling", §4.4). Kernels 8, 13
//! and 14 are simplified to Tital's feature set (no multidimensional
//! arrays, no I/O) while keeping their dependence structure.

use crate::Workload;

/// Builds the benchmark: kernels run over arrays of length `n` for `reps`
/// passes.
#[must_use]
pub fn livermore(n: usize, reps: usize) -> Workload {
    assert!(n >= 32, "livermore kernels need n >= 32");
    let big = n * 2 + 32;
    let source = format!(
        r#"
// The first 14 Livermore loops.
global farr x[{big}];
global farr y[{big}];
global farr z[{big}];
global farr u[{big}];
global farr v[{big}];
global farr w[{big}];
global farr px[{big}];
global farr cx[{big}];
global fvar q; global fvar r; global fvar t;
global var seed = 77;

fn rnd() -> float {{
    seed = (seed * 3125) % 65536;
    return itof(seed) / 65536.0;
}}

fn init() {{
    for (i = 0; i < {big}; i = i + 1) {{
        x[i] = rnd() * 0.5 + 0.25;
        y[i] = rnd() * 0.5 + 0.25;
        z[i] = rnd() * 0.5 + 0.25;
        u[i] = rnd() * 0.5 + 0.25;
        v[i] = rnd() * 0.25 + 0.1;
        w[i] = rnd() * 0.25 + 0.1;
        px[i] = rnd();
        cx[i] = rnd();
    }}
    q = 0.5; r = 0.25; t = 0.125;
}}

// Kernel 1: hydro fragment.
fn k1() {{
    for (k = 0; k < {n}; k = k + 1) {{
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }}
}}

// Kernel 2: ICCG excerpt (incomplete Cholesky conjugate gradient).
fn k2() {{
    var ii = {n};
    var ipntp = 0;
    while (ii > 1) {{
        var ipnt = ipntp;
        ipntp = ipntp + ii;
        ii = ii / 2;
        var i = ipnt + 1;
        for (k = ipntp + 1; k < ipntp + ii; k = k + 1) {{
            x[k] = x[i] - v[i] * x[i + 1];
            i = i + 2;
        }}
    }}
}}

// Kernel 3: inner product.
fn k3() -> float {{
    fvar qq = 0.0;
    for (k = 0; k < {n}; k = k + 1) {{
        qq = qq + z[k] * x[k];
    }}
    return qq;
}}

// Kernel 4: banded linear equations.
fn k4() {{
    for (k = 6; k < {n}; k = k + 5) {{
        fvar temp = 0.0;
        for (j = 0; j < {n}; j = j + 5) {{
            temp = temp + x[j] * y[j];
        }}
        x[k - 1] = y[4] * (x[k - 1] - temp);
    }}
}}

// Kernel 5: tri-diagonal elimination, below diagonal (recurrence).
fn k5() {{
    for (i = 1; i < {n}; i = i + 1) {{
        x[i] = z[i] * (y[i] - x[i - 1]);
    }}
}}

// Kernel 6: general linear recurrence equations.
fn k6() {{
    for (i = 1; i < {n}; i = i + 1) {{
        w[i] = 0.01 + v[i] * w[i - 1];
    }}
}}

// Kernel 7: equation of state fragment (highly parallel).
fn k7() {{
    for (k = 0; k < {n}; k = k + 1) {{
        x[k] = u[k] + r * (z[k] + r * y[k])
             + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
                  + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }}
}}

// Kernel 8: ADI integration (simplified to one sweep, 1-D arrays).
fn k8() {{
    for (k = 1; k < {nm1}; k = k + 1) {{
        du1 = u[k + 1] - u[k - 1];
        du2 = v[k + 1] - v[k - 1];
        x[k] = x[k] + 0.1 * (du1 * du2 + y[k] * du1 + z[k] * du2);
    }}
}}
global fvar du1; global fvar du2;

// Kernel 9: integrate predictors.
fn k9() {{
    for (i = 0; i < {n}; i = i + 1) {{
        px[i] = 0.05 + 0.25 * px[i] + 0.125 * cx[i]
              + 0.0625 * (y[i] + z[i]) + 0.015 * (u[i] + v[i]);
    }}
}}

// Kernel 10: difference predictors.
fn k10() {{
    for (i = 0; i < {n}; i = i + 1) {{
        fvar ar = cx[i];
        fvar br = ar - px[i];
        px[i] = ar;
        fvar cr = br - y[i];
        y[i] = br;
        z[i] = cr - z[i];
    }}
}}

// Kernel 11: first sum (prefix recurrence).
fn k11() {{
    for (k = 1; k < {n}; k = k + 1) {{
        x[k] = x[k - 1] + y[k];
    }}
}}

// Kernel 12: first difference (fully parallel).
fn k12() {{
    for (k = 0; k < {n}; k = k + 1) {{
        x[k] = y[k + 1] - y[k];
    }}
}}

// Kernel 13: 2-D particle-in-cell (simplified: gather/scatter with
// index arithmetic).
fn k13() {{
    for (i = 0; i < {n}; i = i + 1) {{
        var j = ftoi(px[i] * 8.0) & 31;
        var k = ftoi(cx[i] * 8.0) & 31;
        y[i] = y[i] + z[j] + u[k];
        v[j] = v[j] + 1.0;
    }}
}}

// Kernel 14: 1-D particle-in-cell (simplified).
fn k14() {{
    for (i = 0; i < {n}; i = i + 1) {{
        var ix = ftoi(w[i] * 16.0) & 31;
        x[i] = x[i] + cx[ix] * 0.5;
        w[i] = w[i] + x[i] * 0.001;
        if (w[i] > 1.0) {{ w[i] = w[i] - 1.0; }}
    }}
}}

fn scale_pass() {{
    // Keep every array bounded between passes (k13's scatter increments v
    // and k6's recurrence would otherwise amplify geometrically).
    for (i = 0; i < {big}; i = i + 1) {{
        x[i] = x[i] * 0.25 + 0.25;
        w[i] = w[i] * 0.5 + 0.1;
        v[i] = v[i] * 0.25 + 0.1;
        y[i] = y[i] * 0.25 + 0.25;
        z[i] = z[i] * 0.25 + 0.25;
        px[i] = px[i] * 0.25 + 0.1;
        cx[i] = cx[i] * 0.25 + 0.1;
    }}
}}

fn main() -> int {{
    init();
    fvar total = 0.0;
    for (rep = 0; rep < {reps}; rep = rep + 1) {{
        k1();
        k2();
        total = total + k3();
        k4();
        k5();
        k6();
        k7();
        k8();
        k9();
        k10();
        k11();
        k12();
        k13();
        k14();
        total = total + x[{n} / 2] + w[{n} / 3] + px[{n} / 4];
        scale_pass();
    }}
    return ftoi(total * 100.0);
}}
"#,
        n = n,
        nm1 = n - 1,
        big = big,
        reps = reps,
    );
    Workload {
        name: "livermore",
        description:
            "the first 14 Livermore loops (paper: Livermore, double precision, not unrolled)",
        source,
        fp_sensitive: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = livermore(40, 1);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
