//! `linpack`: DAXPY-based Gaussian elimination with back substitution.
//!
//! Substitutes for the paper's double-precision Linpack. The inner
//! elimination loop is the classic DAXPY (`a[i][j] -= m * a[k][j]`); the
//! paper's "official" 4x-unrolled variant is obtained by compiling with
//! `UnrollOptions::careful(4)`. The matrix is random but diagonally
//! dominant, so elimination without pivoting is numerically stable.

use crate::Workload;

/// Builds the benchmark for an `n`×`n` system.
#[must_use]
pub fn linpack(n: usize) -> Workload {
    assert!(n >= 2, "linpack needs at least a 2x2 system");
    let source = format!(
        r#"
// linpack: solve A x = b by Gaussian elimination (no pivoting; A is
// diagonally dominant) and back substitution.
global farr a[{nn}];
global farr b[{n}];
global farr x[{n}];
global farr pivot[{n}];
global var seed = 1325;

fn rnd() -> float {{
    seed = (seed * 3125) % 65536;
    return itof(seed) / 65536.0 - 0.5;
}}

fn matgen() {{
    for (i = 0; i < {n}; i = i + 1) {{
        for (j = 0; j < {n}; j = j + 1) {{
            a[i * {n} + j] = rnd();
        }}
    }}
    for (i = 0; i < {n}; i = i + 1) {{
        a[i * {n} + i] = a[i * {n} + i] + {n}.0;
        b[i] = 1.0 + rnd();
    }}
}}

fn eliminate() {{
    for (k = 0; k < {nm1}; k = k + 1) {{
        var krow = k * {n};
        // Factor the pivot row out into its own array: updated rows and the
        // pivot row are then provably independent. (This stands in for the
        // paper's interprocedural alias analysis, which proved the same
        // independence on the two-dimensional original.)
        for (j = k; j < {n}; j = j + 1) {{
            pivot[j] = a[krow + j];
        }}
        for (i = k + 1; i < {n}; i = i + 1) {{
            var irow = i * {n};
            fvar m = a[irow + k] / pivot[k];
            // The DAXPY inner loop.
            for (j = k; j < {n}; j = j + 1) {{
                a[irow + j] = a[irow + j] - m * pivot[j];
            }}
            b[i] = b[i] - m * b[k];
        }}
    }}
}}

fn solve() {{
    for (i = {nm1}; i >= 0; i = i - 1) {{
        var irow = i * {n};
        fvar s = b[i];
        for (j = i + 1; j < {n}; j = j + 1) {{
            s = s - a[irow + j] * x[j];
        }}
        x[i] = s / a[irow + i];
    }}
}}

fn main() -> int {{
    matgen();
    eliminate();
    solve();
    fvar check = 0.0;
    for (i = 0; i < {n}; i = i + 1) {{
        check = check + x[i];
    }}
    return ftoi(check * 1000.0);
}}
"#,
        n = n,
        nn = n * n,
        nm1 = n - 1,
    );
    Workload {
        name: "linpack",
        description:
            "DAXPY Gaussian elimination + back substitution (paper: Linpack, double precision)",
        source,
        fp_sensitive: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = linpack(8);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
