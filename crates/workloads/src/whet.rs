//! `whet`: the Whetstone benchmark's module structure.
//!
//! Substitutes for the paper's Whetstones. The classic modules are kept
//! (simple identifiers, array elements, conditional jumps, integer
//! arithmetic, "trig" and "standard" function modules, procedure calls);
//! the transcendental library functions are replaced by short polynomial
//! approximations — our ISA, like the MultiTitan's FP units, has no
//! transcendental hardware, and the paper's point is the *serial FP chains*
//! these modules produce, which polynomials preserve.

use crate::Workload;

/// Builds the benchmark; `loops` scales every module's iteration count.
#[must_use]
pub fn whet(loops: usize) -> Workload {
    let n1 = 40 * loops;
    let n2 = 30 * loops;
    let n4 = 80 * loops;
    let n6 = 90 * loops;
    let n7 = 30 * loops;
    let n8 = 40 * loops;
    let n10 = 60 * loops;
    let n11 = 30 * loops;
    let source = format!(
        r#"
// Whetstone modules with polynomial transcendentals.
global fvar x1; global fvar x2; global fvar x3; global fvar x4;
global fvar tt; global fvar t2;
global farr e1[4];
global var j;

// Odd polynomial approximating sin on [-1, 1].
fn psin(float a) -> float {{
    fvar s = a * a;
    return a * (1.0 - s * (0.16666 - s * (0.00833 - s * 0.000198)));
}}

// Even polynomial approximating cos on [-1, 1].
fn pcos(float a) -> float {{
    fvar s = a * a;
    return 1.0 - s * (0.5 - s * (0.041666 - s * 0.001388));
}}

// Polynomial approximating atan on [-1, 1].
fn patan(float a) -> float {{
    fvar s = a * a;
    return a * (1.0 - s * (0.33333 - s * (0.2 - s * 0.142857)));
}}

// exp(a) for a in [-1, 0]: truncated series.
fn pexp(float a) -> float {{
    return 1.0 + a * (1.0 + a * (0.5 + a * (0.16666 + a * 0.041666)));
}}

// log(1 + a) for a in [0, 1]: truncated series.
fn plog(float a) -> float {{
    return a * (1.0 - a * (0.5 - a * (0.33333 - a * 0.25)));
}}

fn psqrt(float a) -> float {{
    // Three Newton steps from a decent seed.
    fvar g = a * 0.5 + 0.35;
    g = 0.5 * (g + a / g);
    g = 0.5 * (g + a / g);
    g = 0.5 * (g + a / g);
    return g;
}}

// Module 8's procedure.
fn p3(float px, float py) -> float {{
    fvar xl = tt * (px + py);
    fvar yl = tt * (xl + py);
    return (xl + yl) / t2;
}}

// Module 1: simple identifiers.
fn m1() {{
    x1 = 1.0; x2 = -1.0; x3 = -1.0; x4 = -1.0;
    for (i = 0; i < {n1}; i = i + 1) {{
        x1 = (x1 + x2 + x3 - x4) * tt;
        x2 = (x1 + x2 - x3 + x4) * tt;
        x3 = (x1 - x2 + x3 + x4) * tt;
        x4 = (0.0 - x1 + x2 + x3 + x4) * tt;
    }}
}}

// Module 2: array elements.
fn m2() {{
    e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
    for (i = 0; i < {n2}; i = i + 1) {{
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * tt;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * tt;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * tt;
        e1[3] = (0.0 - e1[0] + e1[1] + e1[2] + e1[3]) * tt;
    }}
}}

// Module 4: conditional jumps.
fn m4() {{
    j = 1;
    for (i = 0; i < {n4}; i = i + 1) {{
        if (j == 1) {{ j = 2; }} else {{ j = 3; }}
        if (j > 2) {{ j = 0; }} else {{ j = 1; }}
        if (j < 1) {{ j = 1; }} else {{ j = 0; }}
    }}
}}

// Module 6: integer arithmetic.
fn m6() -> int {{
    var jj = 1;
    var k = 2;
    var l = 3;
    for (i = 0; i < {n6}; i = i + 1) {{
        jj = jj * (k - jj) * (l - k);
        k = l * k - (l - jj) * k;
        l = (l - k) * (k + jj);
        e1[(l - 2) & 3] = itof(jj + k + l);
        e1[(k - 2) & 3] = itof(jj * k * l);
    }}
    return jj + k + l;
}}

// Module 7: "trig" functions.
fn m7() {{
    x1 = 0.5; x2 = 0.5;
    for (i = 0; i < {n7}; i = i + 1) {{
        x1 = tt * patan(t2 * psin(x1) * pcos(x1) / (pcos(x1 + x2) + pcos(x1 - x2) + 1.0));
        x2 = tt * patan(t2 * psin(x2) * pcos(x2) / (pcos(x1 + x2) + pcos(x1 - x2) + 1.0));
    }}
}}

// Module 8: procedure calls.
fn m8() {{
    x1 = 1.0; x2 = 1.0; x3 = 1.0;
    for (i = 0; i < {n8}; i = i + 1) {{
        x3 = p3(x1, x2);
    }}
}}

// Module 10: integer arithmetic.
fn m10() -> int {{
    var jj = 2;
    var k = 3;
    for (i = 0; i < {n10}; i = i + 1) {{
        jj = jj + k;
        k = jj + k;
        jj = k - jj;
        k = k - jj - jj;
    }}
    return jj + k;
}}

// Module 11: "standard" functions.
fn m11() {{
    x1 = 0.75;
    for (i = 0; i < {n11}; i = i + 1) {{
        x1 = psqrt(pexp(plog(x1) / t2));
    }}
}}

fn main() -> int {{
    tt = 0.499975;
    t2 = 2.0;
    var check = 0;
    m1();
    check = check + ftoi(x4 * 100000.0);
    m2();
    check = check + ftoi(e1[3] * 100000.0);
    m4();
    check = check + j;
    check = check + m6();
    m7();
    check = check + ftoi(x2 * 100000.0);
    m8();
    check = check + ftoi(x3 * 100000.0);
    check = check + m10();
    m11();
    check = check + ftoi(x1 * 100000.0);
    return check;
}}
"#,
    );
    Workload {
        name: "whet",
        description: "Whetstone module mix with polynomial transcendentals (paper: Whetstones)",
        source,
        fp_sensitive: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = whet(1);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
