//! `met`: a board-level timing verifier.
//!
//! Substitutes for the paper's Metronome. Builds a random gate-level DAG
//! (each gate has two fan-ins from earlier gates, with per-edge delays),
//! then runs the classic static-timing passes: forward arrival-time
//! propagation (`arrival = max(in1 + d1, in2 + d2)`), backward
//! required-time propagation, slack computation, and critical-path
//! counting. Graph-walking integer code with max/min chains — the paper's
//! "event-driven simulator" shape.

use crate::Workload;

/// Builds the benchmark: `gates` gates re-verified `passes` times (with
/// delay perturbation between passes, as an incremental verifier would see).
#[must_use]
pub fn met(gates: usize, passes: usize) -> Workload {
    assert!(gates >= 16, "need a few gates");
    let source = format!(
        r#"
// met: static timing verification over a random DAG.
global arr in1[{gates}];
global arr in2[{gates}];
global arr d1[{gates}];
global arr d2[{gates}];
global arr arrival[{gates}];
global arr required[{gates}];
global arr slack[{gates}];
global var seed = 3;
global var critical; global var worst;

fn rnd(int limit) -> int {{
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed % limit;
}}

fn build() {{
    // Gates 0..7 are primary inputs (self-loops with zero delay).
    for (g = 0; g < 8; g = g + 1) {{
        in1[g] = g; in2[g] = g; d1[g] = 0; d2[g] = 0;
    }}
    for (g = 8; g < {gates}; g = g + 1) {{
        in1[g] = rnd(g);
        in2[g] = rnd(g);
        d1[g] = 1 + rnd(9);
        d2[g] = 1 + rnd(9);
    }}
}}

fn forward() {{
    for (g = 0; g < 8; g = g + 1) {{ arrival[g] = 0; }}
    for (g = 8; g < {gates}; g = g + 1) {{
        var a = arrival[in1[g]] + d1[g];
        var b = arrival[in2[g]] + d2[g];
        if (a > b) {{ arrival[g] = a; }} else {{ arrival[g] = b; }}
    }}
    worst = 0;
    for (g = 0; g < {gates}; g = g + 1) {{
        if (arrival[g] > worst) {{ worst = arrival[g]; }}
    }}
}}

fn backward() {{
    for (g = 0; g < {gates}; g = g + 1) {{ required[g] = worst; }}
    for (g = {gm1}; g >= 8; g = g - 1) {{
        var r1 = required[g] - d1[g];
        var r2 = required[g] - d2[g];
        if (r1 < required[in1[g]]) {{ required[in1[g]] = r1; }}
        if (r2 < required[in2[g]]) {{ required[in2[g]] = r2; }}
    }}
}}

fn slacks() {{
    critical = 0;
    for (g = 0; g < {gates}; g = g + 1) {{
        slack[g] = required[g] - arrival[g];
        if (slack[g] <= 0) {{ critical = critical + 1; }}
    }}
}}

fn perturb() {{
    // An engineering change: adjust a handful of delays.
    for (i = 0; i < 8; i = i + 1) {{
        var g = 8 + rnd({gm8});
        d1[g] = 1 + rnd(9);
    }}
}}

fn main() -> int {{
    build();
    var check = 0;
    for (p = 0; p < {passes}; p = p + 1) {{
        forward();
        backward();
        slacks();
        check = check + worst * 1000 + critical;
        perturb();
    }}
    return check;
}}
"#,
        gates = gates,
        gm1 = gates - 1,
        gm8 = gates - 8,
        passes = passes,
    );
    Workload {
        name: "met",
        description:
            "static timing verifier: arrival/required/slack over a gate DAG (paper: Metronome)",
        source,
        fp_sensitive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = met(32, 1);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
