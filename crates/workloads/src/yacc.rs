//! `yacc`: a table-driven LR parser interpreter.
//!
//! Substitutes for the paper's run of the Unix parser generator. What
//! dominates a yacc-built program's execution — and what gave the paper its
//! lowest ILP figure (1.6) — is the LR automaton's interpreter loop:
//! table-indexed fetches, a state stack, and unpredictable
//! shift/reduce branches. This program embeds the canonical SLR(1) tables
//! for the dragon-book expression grammar
//! (`E -> E + T | T; T -> T * F | F; F -> ( E ) | id`) and parses a stream
//! of generated expressions.

use crate::Workload;

/// Terminal codes: id 0, + 1, * 2, ( 3, ) 4, $ 5.
/// ACTION encoding: 0 error, 100+s shift to s, 200+r reduce by rule r,
/// 300 accept.
const ACTION: [[i32; 6]; 12] = [
    [105, 0, 0, 104, 0, 0],     // 0
    [0, 106, 0, 0, 0, 300],     // 1
    [0, 202, 107, 0, 202, 202], // 2
    [0, 204, 204, 0, 204, 204], // 3
    [105, 0, 0, 104, 0, 0],     // 4
    [0, 206, 206, 0, 206, 206], // 5
    [105, 0, 0, 104, 0, 0],     // 6
    [105, 0, 0, 104, 0, 0],     // 7
    [0, 106, 0, 0, 111, 0],     // 8
    [0, 201, 107, 0, 201, 201], // 9
    [0, 203, 203, 0, 203, 203], // 10
    [0, 205, 205, 0, 205, 205], // 11
];

/// GOTO\[state\]\[nonterminal\]: E 0, T 1, F 2 (0 = none).
const GOTO: [[i32; 3]; 12] = [
    [1, 2, 3],
    [0, 0, 0],
    [0, 0, 0],
    [0, 0, 0],
    [8, 2, 3],
    [0, 0, 0],
    [0, 0, 0],
    [0, 9, 3],
    [0, 10, 0],
    [0, 0, 0],
    [0, 0, 0],
    [0, 0, 0],
];

/// Rule metadata: (rhs length, lhs nonterminal index).
const RULES: [(i32, i32); 7] = [
    (0, 0),
    (3, 0), // E -> E + T
    (1, 0), // E -> T
    (3, 1), // T -> T * F
    (1, 1), // T -> F
    (3, 2), // F -> ( E )
    (1, 2), // F -> id
];

/// Builds the benchmark: `exprs` generated expressions are parsed.
#[must_use]
pub fn yacc(exprs: usize) -> Workload {
    // Emit the table-initialization statements from the Rust constants.
    let mut init = String::new();
    for (s, row) in ACTION.iter().enumerate() {
        for (t, &a) in row.iter().enumerate() {
            if a != 0 {
                init.push_str(&format!("    action[{}] = {};\n", s * 6 + t, a));
            }
        }
    }
    for (s, row) in GOTO.iter().enumerate() {
        for (nt, &g) in row.iter().enumerate() {
            if g != 0 {
                init.push_str(&format!("    goto_tab[{}] = {};\n", s * 3 + nt, g));
            }
        }
    }
    for (r, &(len, lhs)) in RULES.iter().enumerate() {
        init.push_str(&format!(
            "    rule_len[{r}] = {len};\n    rule_lhs[{r}] = {lhs};\n"
        ));
    }

    let toklen = exprs * 32 + 16;
    let source = format!(
        r#"
// yacc: SLR(1) parser interpreter for E -> E + T | T; T -> T * F | F;
// F -> ( E ) | id. Terminals: id 0, + 1, * 2, ( 3, ) 4, $ 5.
global arr action[72];        // 12 states x 6 terminals
global arr goto_tab[36];      // 12 states x 3 nonterminals
global arr rule_len[7];
global arr rule_lhs[7];
global arr tokens[{toklen}];
global var ntokens;
global arr stack[256];        // state stack
global var seed = 11;
global var reduces; global var shifts; global var errors;

fn rnd(int limit) -> int {{
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed % limit;
}}

fn tables() {{
{init}}}

fn put(int t) {{
    tokens[ntokens] = t;
    ntokens = ntokens + 1;
}}

// Generates a valid expression: atom ((+|*) atom)*, atoms occasionally
// parenthesized subexpressions.
fn gen_atom(int depth) {{
    var paren = 0;
    if (depth > 0) {{
        if (rnd(4) == 0) {{ paren = 1; }}
    }}
    if (paren == 1) {{
        put(3);
        gen_expr(depth - 1);
        put(4);
    }} else {{
        put(0);
    }}
}}

fn gen_expr(int depth) {{
    gen_atom(depth);
    var more = rnd(4);
    for (i = 0; i < more; i = i + 1) {{
        put(1 + rnd(2));
        gen_atom(depth);
    }}
}}

// The LR interpreter loop: parses tokens[from..] until accept; returns the
// index just past the consumed input.
fn parse(int from) -> int {{
    var sp = 0;
    stack[0] = 0;
    var pos = from;
    var running = 1;
    while (running == 1) {{
        var state = stack[sp];
        var tok = tokens[pos];
        var act = action[state * 6 + tok];
        if (act >= 300) {{
            running = 0;                 // accept
        }} else {{
            if (act >= 200) {{
                var rule = act - 200;     // reduce
                sp = sp - rule_len[rule];
                var top = stack[sp];
                stack[sp + 1] = goto_tab[top * 3 + rule_lhs[rule]];
                sp = sp + 1;
                reduces = reduces + 1;
            }} else {{
                if (act >= 100) {{
                    sp = sp + 1;          // shift
                    stack[sp] = act - 100;
                    pos = pos + 1;
                    shifts = shifts + 1;
                }} else {{
                    errors = errors + 1;  // skip bad token
                    pos = pos + 1;
                    running = 0;
                }}
            }}
        }}
    }}
    return pos + 1;
}}

fn main() -> int {{
    tables();
    reduces = 0; shifts = 0; errors = 0;
    var check = 0;
    for (e = 0; e < {exprs}; e = e + 1) {{
        ntokens = 0;
        gen_expr(3);
        put(5);                           // $
        // Parse each stream several times: the automaton loop, not the
        // stream generator, is what dominates a yacc-built parser.
        for (t = 0; t < 4; t = t + 1) {{
            var consumed = parse(0);
            check = check + consumed;
        }}
    }}
    return check * 1000 + reduces % 1000 + errors * 1000000;
}}
"#,
        toklen = toklen,
        init = init,
        exprs = exprs,
    );
    Workload {
        name: "yacc",
        description: "SLR(1) parser interpreter over generated expressions (paper: the Unix parser generator)",
        source,
        fp_sensitive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = yacc(3);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
