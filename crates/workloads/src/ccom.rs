//! `ccom`: a compiler-shaped workload.
//!
//! Substitutes for the paper's own C compiler compiling itself. The program
//! generates a synthetic source text (assignment statements over one-letter
//! identifiers with digits, numbers, parenthesized arithmetic), then runs a
//! real compiler front half over it: a character-level lexer, a hashed
//! symbol table, a recursive-descent expression parser, and a stack-machine
//! code emitter. The profile — short branchy loops, table lookups,
//! recursion, almost no exploitable parallelism — is what made compilers the
//! paper's canonical "slightly parallel" workload (ILP ≈ 2).

use crate::Workload;

/// Builds the benchmark; `stmts` controls how many synthetic statements are
/// compiled.
#[must_use]
pub fn ccom(stmts: usize) -> Workload {
    let srclen = stmts * 24 + 64;
    let maxtok = srclen;
    let source = format!(
        r#"
// ccom: lex + parse + emit over a generated source text.
// Character codes: 0 end, 1..26 letters, 27..36 digits ('0'..'9'),
// 40 '=' 41 '+' 42 '-' 43 '*' 44 '/' 45 '(' 46 ')' 47 ';' 48 ' '.
global arr src[{srclen}];
global var srclen;
global arr tkind[{maxtok}];   // 1 ident, 2 number, 3..9 punctuation
global arr tval[{maxtok}];
global var ntok;
global arr hashkey[128];      // symbol table (open addressing)
global arr hashval[128];
global var nsym;
global arr code[{codelen}];   // emitted stack-machine ops
global var ncode;
global var pos;               // parser cursor
global var seed = 99;

fn rnd(int limit) -> int {{
    seed = (seed * 1103515245 + 12345) & 2147483647;
    return seed % limit;
}}

fn putc(int c) {{
    src[srclen] = c;
    srclen = srclen + 1;
}}

// Random identifier: letter (+ optional digit).
fn gen_ident() {{
    putc(1 + rnd(26));
    if (rnd(2) == 0) {{ putc(27 + rnd(10)); }}
}}

fn gen_number() {{
    putc(27 + rnd(10));
    if (rnd(3) == 0) {{ putc(27 + rnd(10)); }}
}}

// expr := atom (op atom)*, parenthesized occasionally.
fn gen_atom(int depth) {{
    if (depth > 0) {{
        if (rnd(4) == 0) {{
            putc(45);
            gen_expr(depth - 1);
            putc(46);
            return;
        }}
    }}
    if (rnd(2) == 0) {{ gen_ident(); }} else {{ gen_number(); }}
}}

fn gen_expr(int depth) {{
    gen_atom(depth);
    var ops = rnd(3);
    for (i = 0; i < ops; i = i + 1) {{
        putc(41 + rnd(4));
        gen_atom(depth);
    }}
}}

fn gen_source(int n) {{
    srclen = 0;
    for (s = 0; s < n; s = s + 1) {{
        gen_ident();
        putc(40);
        gen_expr(2);
        putc(47);
        putc(48);
    }}
    putc(0);
}}

// --- symbol table: open-addressing hash ---
fn sym_lookup(int key) -> int {{
    var h = (key * 31) & 127;
    var probes = 0;
    while (probes < 128) {{
        if (hashkey[h] == key) {{ return hashval[h]; }}
        if (hashkey[h] == 0) {{
            hashkey[h] = key;
            nsym = nsym + 1;
            hashval[h] = nsym;
            return nsym;
        }}
        h = (h + 1) & 127;
        probes = probes + 1;
    }}
    return 0;
}}

// --- lexer ---
fn lex() {{
    ntok = 0;
    var i = 0;
    while (src[i] != 0) {{
        var c = src[i];
        if (c >= 1 && c <= 26) {{
            // Identifier: letter then digits, packed into a key.
            var key = c;
            i = i + 1;
            while (src[i] >= 27 && src[i] <= 36) {{
                key = key * 37 + src[i];
                i = i + 1;
            }}
            tkind[ntok] = 1;
            tval[ntok] = sym_lookup(key);
            ntok = ntok + 1;
        }} else {{
            if (c >= 27 && c <= 36) {{
                var value = 0;
                while (src[i] >= 27 && src[i] <= 36) {{
                    value = value * 10 + (src[i] - 27);
                    i = i + 1;
                }}
                tkind[ntok] = 2;
                tval[ntok] = value;
                ntok = ntok + 1;
            }} else {{
                if (c != 48) {{
                    tkind[ntok] = c - 37;   // '=' 3, '+' 4, '-' 5, '*' 6, '/' 7, '(' 8, ')' 9, ';' 10
                    tval[ntok] = 0;
                    ntok = ntok + 1;
                }}
                i = i + 1;
            }}
        }}
    }}
    tkind[ntok] = 0;
}}

// --- emitter ---
fn emit(int op, int value) {{
    code[ncode] = op * 65536 + value;
    ncode = ncode + 1;
}}

// --- recursive-descent parser: factor/term/expr ---
fn factor() {{
    if (tkind[pos] == 1) {{
        emit(1, tval[pos]);    // load var
        pos = pos + 1;
        return;
    }}
    if (tkind[pos] == 2) {{
        emit(2, tval[pos]);    // push const
        pos = pos + 1;
        return;
    }}
    if (tkind[pos] == 8) {{
        pos = pos + 1;         // '('
        expr();
        pos = pos + 1;         // ')'
        return;
    }}
    pos = pos + 1;             // error recovery
}}

fn term() {{
    factor();
    while (tkind[pos] == 6 || tkind[pos] == 7) {{
        var op = tkind[pos];
        pos = pos + 1;
        factor();
        emit(op, 0);
    }}
}}

fn expr() {{
    term();
    while (tkind[pos] == 4 || tkind[pos] == 5) {{
        var op = tkind[pos];
        pos = pos + 1;
        term();
        emit(op, 0);
    }}
}}

fn stmt() {{
    var target = tval[pos];
    pos = pos + 1;             // ident
    pos = pos + 1;             // '='
    expr();
    emit(3, target);           // store
    if (tkind[pos] == 10) {{ pos = pos + 1; }}
}}

fn parse() {{
    pos = 0;
    ncode = 0;
    while (tkind[pos] != 0) {{
        stmt();
    }}
}}

fn main() -> int {{
    for (i = 0; i < 128; i = i + 1) {{ hashkey[i] = 0; }}
    nsym = 0;
    gen_source({stmts});
    lex();
    parse();
    // Checksum over the emitted code.
    var check = nsym * 10000 + ncode;
    for (i = 0; i < ncode; i = i + 1) {{
        check = (check * 31 + code[i]) & 268435455;
    }}
    return check;
}}
"#,
        srclen = srclen,
        maxtok = maxtok,
        codelen = srclen,
        stmts = stmts,
    );
    Workload {
        name: "ccom",
        description: "compiler front half: lexer, hashed symbol table, recursive-descent parser, emitter (paper: their C compiler)",
        source,
        fp_sensitive: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_checks() {
        let w = ccom(4);
        let ast = supersym_lang::parse(&w.source).unwrap();
        supersym_lang::check(&ast).unwrap();
    }
}
