//! Golden checksums: the benchmark suite's results are part of its
//! contract. Any change to a workload source, the compiler, or the
//! executor that alters these values is a semantic change and must be
//! deliberate.

use supersym::machine::presets;
use supersym::sim::{ExecOptions, Executor};
use supersym::{compile, CompileOptions, OptLevel};
use supersym_workloads::{suite, Size};

fn checksum(source: &str) -> i64 {
    let machine = presets::base();
    let program = compile(source, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
    let mut exec = Executor::new(&program, ExecOptions::default()).unwrap();
    exec.run().unwrap();
    exec.int_reg(supersym_isa::IntReg::new(1).unwrap())
}

const SMALL_GOLDENS: [(&str, i64); 8] = [
    ("ccom", 13_514_383),
    ("grr", 4_004_600),
    ("linpack", 891),
    ("livermore", 1_369),
    ("met", 134_024),
    ("stan", 7_685),
    ("whet", -10_584),
    ("yacc", 160_828_656),
];

const STANDARD_GOLDENS: [(&str, i64); 8] = [
    ("ccom", 106_644_460),
    ("grr", 6_010_906),
    ("linpack", 1_044),
    ("livermore", 10_362),
    ("met", 1_175_210),
    ("stan", 15_947),
    ("whet", -5_196),
    ("yacc", 1_608_028_416),
];

#[test]
fn small_suite_checksums() {
    for (workload, (name, expected)) in suite(Size::Small).iter().zip(SMALL_GOLDENS) {
        assert_eq!(workload.name, name, "suite order changed");
        assert_eq!(
            checksum(&workload.source),
            expected,
            "{name} checksum drifted"
        );
    }
}

#[test]
fn standard_suite_checksums() {
    for (workload, (name, expected)) in suite(Size::Standard).iter().zip(STANDARD_GOLDENS) {
        assert_eq!(workload.name, name, "suite order changed");
        assert_eq!(
            checksum(&workload.source),
            expected,
            "{name} checksum drifted"
        );
    }
}
