//! End-to-end execution of the benchmark suite: every workload must run to
//! completion, produce a deterministic checksum, and produce the *same*
//! checksum at every optimization level and on every machine (optimizations
//! are semantics-preserving; machines differ only in timing).

use supersym::machine::presets;
use supersym::opt::UnrollOptions;
use supersym::{compile, CompileOptions, OptLevel};
use supersym_sim::{ExecOptions, Executor};
use supersym_workloads::{suite, Size};

fn checksum(program: &supersym_isa::Program) -> i64 {
    let mut exec = Executor::new(program, ExecOptions::default()).expect("program valid");
    exec.run().expect("runs to completion");
    exec.int_reg(supersym_isa::IntReg::new(1).unwrap())
}

#[test]
fn all_workloads_run_and_agree_across_opt_levels() {
    let machine = presets::multititan();
    for workload in suite(Size::Small) {
        let reference = checksum(
            &compile(
                &workload.source,
                &CompileOptions::new(OptLevel::O0, &machine),
            )
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name)),
        );
        for level in OptLevel::ALL {
            let program = compile(&workload.source, &CompileOptions::new(level, &machine)).unwrap();
            let result = checksum(&program);
            assert_eq!(
                result, reference,
                "{} at {level} diverged from O0",
                workload.name
            );
        }
    }
}

#[test]
fn machines_do_not_change_semantics() {
    let compile_machine = presets::multititan();
    for workload in suite(Size::Small) {
        let program = compile(
            &workload.source,
            &CompileOptions::new(OptLevel::O4, &compile_machine),
        )
        .unwrap();
        let reference = checksum(&program);
        // Scheduling FOR a different machine must not change results either.
        for machine in [
            presets::base(),
            presets::ideal_superscalar(8),
            presets::superpipelined(4),
            presets::cray1(),
        ] {
            let program = compile(
                &workload.source,
                &CompileOptions::new(OptLevel::O4, &machine),
            )
            .unwrap();
            assert_eq!(
                checksum(&program),
                reference,
                "{} scheduled for {} diverged",
                workload.name,
                machine.name()
            );
        }
    }
}

#[test]
fn naive_unrolling_preserves_semantics_exactly() {
    // Naive unrolling never reassociates: results must match exactly,
    // including for FP workloads.
    let machine = presets::multititan();
    for workload in suite(Size::Small) {
        let reference = checksum(
            &compile(
                &workload.source,
                &CompileOptions::new(OptLevel::O4, &machine),
            )
            .unwrap(),
        );
        for factor in [2, 4] {
            let options = CompileOptions::new(OptLevel::O4, &machine)
                .with_unroll(UnrollOptions::naive(factor));
            let result = checksum(&compile(&workload.source, &options).unwrap());
            assert_eq!(
                result, reference,
                "{} naively unrolled x{factor} diverged",
                workload.name
            );
        }
    }
}

#[test]
fn careful_unrolling_preserves_semantics_within_fp_tolerance() {
    let machine = presets::multititan();
    for workload in suite(Size::Small) {
        let reference = checksum(
            &compile(
                &workload.source,
                &CompileOptions::new(OptLevel::O4, &machine),
            )
            .unwrap(),
        );
        for factor in [2, 4, 10] {
            let options = CompileOptions::new(OptLevel::O4, &machine)
                .with_unroll(UnrollOptions::careful(factor));
            let result = checksum(&compile(&workload.source, &options).unwrap());
            if workload.fp_sensitive {
                // Checksums are scaled sums; reassociation may change the
                // last few digits.
                let tolerance = (reference.abs() / 1000).max(50);
                assert!(
                    (result - reference).abs() <= tolerance,
                    "{} carefully unrolled x{factor}: {result} vs {reference}",
                    workload.name
                );
            } else {
                assert_eq!(
                    result, reference,
                    "{} carefully unrolled x{factor} diverged",
                    workload.name
                );
            }
        }
    }
}

#[test]
fn workload_dynamic_sizes_reasonable() {
    let machine = presets::base();
    for workload in suite(Size::Small) {
        let program = compile(
            &workload.source,
            &CompileOptions::new(OptLevel::O4, &machine),
        )
        .unwrap();
        let mut exec = Executor::new(&program, ExecOptions::default()).unwrap();
        exec.run().unwrap();
        let steps = exec.steps();
        assert!(
            steps > 5_000,
            "{} too small to be meaningful: {steps} instructions",
            workload.name
        );
        assert!(
            steps < 20_000_000,
            "{} too large for the small size: {steps} instructions",
            workload.name
        );
        println!("{:10} {:>10} dynamic instructions", workload.name, steps);
    }
}
