//! The sweep grid: a cross-product lattice of machine configurations.
//!
//! The paper evaluates ~11 hand-picked presets; `titalc sweep` explores the
//! whole (issue width × superpipelining degree × latency model × functional
//! -unit sharing × register split) lattice. A [`GridSpec`] is parsed from a
//! compact textual spec — the same text is recorded verbatim in sweep
//! checkpoints, so a resume can recover the exact grid — and enumerated
//! into [`GridCell`]s, each of which builds a [`MachineConfig`] by the same
//! constructions as the paper presets in [`crate::presets`]. That makes the
//! Figure 4-3 presets literal cells of the larger map: for example
//! `issue=2 pipe=1 lat=unit fu=ideal` *is* `superscalar:2`, with an equal
//! [`MachineConfig::fingerprint`].
//!
//! ## Spec syntax
//!
//! Whitespace-separated `axis=value[,value...]` pairs; omitted axes default
//! to the base machine's value:
//!
//! ```text
//! issue=1,2,4,8 pipe=1,2,4 lat=unit,titan,cray fu=ideal,shared split=default,wide
//! ```
//!
//! Numeric axes also accept inclusive ranges: `issue=1..8` is
//! `issue=1,2,3,4,5,6,7,8`, and ranges mix with lists (`issue=1..4,8,16`).
//!
//! * `issue` — issue width *n* (1..=64)
//! * `pipe`  — superpipelining degree *m* (1..=16); latencies scale by *m*
//!   exactly as in [`crate::presets::superpipelined`]
//! * `lat`   — `unit` (all ones), `titan`
//!   ([`crate::presets::multititan_latencies`]) or `cray`
//!   ([`crate::presets::cray1_latencies`])
//! * `fu`    — `ideal` (per-class units, multiplicity = issue width: no
//!   class conflicts) or `shared` (the five shared units of
//!   [`crate::presets::superscalar_with_class_conflicts`])
//! * `split` — `default` (16+26 per file, §4.4) or `wide` (the 20-temp
//!   unrolling-study split)
//!
//! Cell count is capped at [`MAX_GRID_CELLS`]; an oversized grid is a typed
//! [`GridError`], never an allocation attempt — grid specs are fuzzed by
//! the torture harness's grid layer.

use crate::config::{FunctionalUnit, MachineConfig, RegisterSplit};
use crate::presets;
use std::error::Error;
use std::fmt;
use supersym_isa::{ClassTable, InstrClass};

/// Hard cap on cells a single grid may enumerate.
pub const MAX_GRID_CELLS: usize = 4096;

const MAX_ISSUE: u32 = 64;
const MAX_PIPE: u32 = 16;

/// A latency model axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatModel {
    /// All operation latencies one machine cycle (the ideal machines).
    Unit,
    /// MultiTitan latencies (Table 2-1).
    Titan,
    /// CRAY-1 latencies (Table 2-1).
    Cray,
}

impl LatModel {
    /// The axis value's spec/display token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LatModel::Unit => "unit",
            LatModel::Titan => "titan",
            LatModel::Cray => "cray",
        }
    }

    fn table(self) -> ClassTable<u32> {
        match self {
            LatModel::Unit => ClassTable::from_fn(|_| 1),
            LatModel::Titan => presets::multititan_latencies(),
            LatModel::Cray => presets::cray1_latencies(),
        }
    }
}

/// A functional-unit sharing axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FuModel {
    /// Per-class units, multiplicity = issue width: no class conflicts.
    Ideal,
    /// Five shared units (alu / imuldiv / mem / ctrl / fp), multiplicity 1.
    Shared,
}

impl FuModel {
    /// The axis value's spec/display token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FuModel::Ideal => "ideal",
            FuModel::Shared => "shared",
        }
    }
}

/// A register-split axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SplitModel {
    /// The paper's main 16-temp + 26-global split.
    Default,
    /// The 20-temp unrolling-study split.
    Wide,
}

impl SplitModel {
    /// The axis value's spec/display token.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SplitModel::Default => "default",
            SplitModel::Wide => "wide",
        }
    }

    /// The concrete register split this axis value selects.
    #[must_use]
    pub fn split(self) -> RegisterSplit {
        match self {
            SplitModel::Default => RegisterSplit::paper_default(),
            SplitModel::Wide => RegisterSplit::unrolling_study(),
        }
    }
}

/// A malformed or oversized grid spec.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GridError {
    /// A token without `=`, or an unknown axis name.
    UnknownAxis(String),
    /// An axis value that does not parse (bad number or unknown keyword).
    BadValue {
        /// The axis the value was given for.
        axis: &'static str,
        /// The offending value text.
        value: String,
    },
    /// A numeric axis value outside its allowed range.
    OutOfRange {
        /// The axis the value was given for.
        axis: &'static str,
        /// The offending value.
        value: u32,
        /// The inclusive maximum.
        max: u32,
    },
    /// The same axis appears twice.
    DuplicateAxis(&'static str),
    /// An axis with an empty value list.
    EmptyAxis(&'static str),
    /// The cross product exceeds [`MAX_GRID_CELLS`].
    TooManyCells {
        /// The requested cell count.
        cells: usize,
        /// The cap.
        max: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::UnknownAxis(token) => write!(f, "unknown grid axis `{token}`"),
            GridError::BadValue { axis, value } => {
                write!(f, "bad value `{value}` for grid axis `{axis}`")
            }
            GridError::OutOfRange { axis, value, max } => {
                write!(f, "grid axis `{axis}` value {value} exceeds maximum {max}")
            }
            GridError::DuplicateAxis(axis) => write!(f, "grid axis `{axis}` given twice"),
            GridError::EmptyAxis(axis) => write!(f, "grid axis `{axis}` has no values"),
            GridError::TooManyCells { cells, max } => {
                write!(
                    f,
                    "grid enumerates {cells} cells, more than the maximum {max}"
                )
            }
        }
    }
}

impl Error for GridError {}

/// A parsed, validated sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSpec {
    issue: Vec<u32>,
    pipe: Vec<u32>,
    lat: Vec<LatModel>,
    fu: Vec<FuModel>,
    split: Vec<SplitModel>,
}

impl GridSpec {
    /// Parses a grid spec (see the module docs for the syntax).
    ///
    /// Values are deduplicated and sorted, so two specs naming the same
    /// lattice in different orders canonicalize identically.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] for unknown axes, malformed or out-of-range
    /// values, duplicate axes, or a cross product over [`MAX_GRID_CELLS`].
    pub fn parse(text: &str) -> Result<GridSpec, GridError> {
        let mut issue: Option<Vec<u32>> = None;
        let mut pipe: Option<Vec<u32>> = None;
        let mut lat: Option<Vec<LatModel>> = None;
        let mut fu: Option<Vec<FuModel>> = None;
        let mut split: Option<Vec<SplitModel>> = None;
        for token in text.split_whitespace() {
            let Some((axis, values)) = token.split_once('=') else {
                return Err(GridError::UnknownAxis(token.to_string()));
            };
            match axis {
                "issue" => set_axis(
                    &mut issue,
                    "issue",
                    parse_numbers("issue", values, MAX_ISSUE)?,
                )?,
                "pipe" => set_axis(&mut pipe, "pipe", parse_numbers("pipe", values, MAX_PIPE)?)?,
                "lat" => set_axis(
                    &mut lat,
                    "lat",
                    parse_keywords(
                        "lat",
                        values,
                        &[
                            ("unit", LatModel::Unit),
                            ("titan", LatModel::Titan),
                            ("cray", LatModel::Cray),
                        ],
                    )?,
                )?,
                "fu" => set_axis(
                    &mut fu,
                    "fu",
                    parse_keywords(
                        "fu",
                        values,
                        &[("ideal", FuModel::Ideal), ("shared", FuModel::Shared)],
                    )?,
                )?,
                "split" => set_axis(
                    &mut split,
                    "split",
                    parse_keywords(
                        "split",
                        values,
                        &[("default", SplitModel::Default), ("wide", SplitModel::Wide)],
                    )?,
                )?,
                _ => return Err(GridError::UnknownAxis(token.to_string())),
            }
        }
        let spec = GridSpec {
            issue: issue.unwrap_or_else(|| vec![1]),
            pipe: pipe.unwrap_or_else(|| vec![1]),
            lat: lat.unwrap_or_else(|| vec![LatModel::Unit]),
            fu: fu.unwrap_or_else(|| vec![FuModel::Ideal]),
            split: split.unwrap_or_else(|| vec![SplitModel::Default]),
        };
        let cells =
            spec.issue.len() * spec.pipe.len() * spec.lat.len() * spec.fu.len() * spec.split.len();
        if cells > MAX_GRID_CELLS {
            return Err(GridError::TooManyCells {
                cells,
                max: MAX_GRID_CELLS,
            });
        }
        Ok(spec)
    }

    /// The canonical textual form: fixed axis order, sorted deduplicated
    /// values. `GridSpec::parse(spec.canonical())` reproduces `spec`, and
    /// the sweep checkpoint header hashes exactly this string.
    #[must_use]
    pub fn canonical(&self) -> String {
        let join_nums = |ns: &[u32]| ns.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        format!(
            "issue={} pipe={} lat={} fu={} split={}",
            join_nums(&self.issue),
            join_nums(&self.pipe),
            self.lat
                .iter()
                .map(|v| v.name())
                .collect::<Vec<_>>()
                .join(","),
            self.fu
                .iter()
                .map(|v| v.name())
                .collect::<Vec<_>>()
                .join(","),
            self.split
                .iter()
                .map(|v| v.name())
                .collect::<Vec<_>>()
                .join(","),
        )
    }

    /// The number of cells the grid enumerates (≤ [`MAX_GRID_CELLS`]).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.issue.len() * self.pipe.len() * self.lat.len() * self.fu.len() * self.split.len()
    }

    /// All cells in canonical (row-major over issue → pipe → lat → fu →
    /// split) order, indices assigned in that order. The order is part of
    /// the checkpoint contract: cell indices in a `supersym.sweep/v1` file
    /// refer to this enumeration of the header's grid text.
    #[must_use]
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.cell_count());
        let mut index = 0_usize;
        for &n in &self.issue {
            for &m in &self.pipe {
                for &lat in &self.lat {
                    for &fu in &self.fu {
                        for &split in &self.split {
                            out.push(GridCell {
                                index,
                                issue_width: n,
                                pipe_degree: m,
                                lat,
                                fu,
                                split,
                            });
                            index += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// The register-split axis values (one compile front end per value).
    #[must_use]
    pub fn splits(&self) -> &[SplitModel] {
        &self.split
    }
}

fn set_axis<T>(
    slot: &mut Option<Vec<T>>,
    axis: &'static str,
    values: Vec<T>,
) -> Result<(), GridError> {
    if slot.is_some() {
        return Err(GridError::DuplicateAxis(axis));
    }
    *slot = Some(values);
    Ok(())
}

fn parse_numbers(axis: &'static str, text: &str, max: u32) -> Result<Vec<u32>, GridError> {
    let bad = |value: &str| GridError::BadValue {
        axis,
        value: value.to_string(),
    };
    let mut out = Vec::new();
    for part in text.split(',') {
        // A part is either one number or an inclusive range `lo..hi`.
        let (lo, hi) = match part.split_once("..") {
            Some((lo, hi)) => (
                lo.parse().map_err(|_| bad(part))?,
                hi.parse().map_err(|_| bad(part))?,
            ),
            None => {
                let value: u32 = part.parse().map_err(|_| bad(part))?;
                (value, value)
            }
        };
        if lo > hi {
            return Err(bad(part));
        }
        for value in lo..=hi {
            if value == 0 || value > max {
                return Err(GridError::OutOfRange { axis, value, max });
            }
            out.push(value);
        }
    }
    if out.is_empty() {
        return Err(GridError::EmptyAxis(axis));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

fn parse_keywords<T: Copy + Ord>(
    axis: &'static str,
    text: &str,
    table: &[(&str, T)],
) -> Result<Vec<T>, GridError> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let Some(&(_, value)) = table.iter().find(|(name, _)| *name == part) else {
            return Err(GridError::BadValue {
                axis,
                value: part.to_string(),
            });
        };
        out.push(value);
    }
    if out.is_empty() {
        return Err(GridError::EmptyAxis(axis));
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// One point of the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Position in the grid's canonical enumeration order.
    pub index: usize,
    /// Issue width *n*.
    pub issue_width: u32,
    /// Superpipelining degree *m*.
    pub pipe_degree: u32,
    /// Latency model.
    pub lat: LatModel,
    /// Functional-unit sharing model.
    pub fu: FuModel,
    /// Register-split model.
    pub split: SplitModel,
}

impl GridCell {
    /// The cell's stable display name, e.g. `n2.m2.titan.shared.default`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "n{}.m{}.{}.{}.{}",
            self.issue_width,
            self.pipe_degree,
            self.lat.name(),
            self.fu.name(),
            self.split.name()
        )
    }

    /// Builds the cell's machine description, by the same constructions as
    /// the paper presets: the latency model's table scaled by the pipe
    /// degree (as in `superpipelined`), per-class or shared functional
    /// units, and the chosen register split.
    #[must_use]
    pub fn config(&self) -> MachineConfig {
        let mut builder = MachineConfig::builder(self.name());
        builder
            .issue_width(self.issue_width)
            .pipe_degree(self.pipe_degree)
            .latencies(self.lat.table())
            .scale_latencies(self.pipe_degree)
            .register_split(self.split.split());
        if self.fu == FuModel::Shared {
            for (name, classes) in shared_units() {
                builder.functional_unit(FunctionalUnit::new(name, classes, 1, 1));
            }
        }
        builder
            .build()
            .expect("grid cells are valid by construction")
    }

    /// A coarse hardware-cost proxy for the Pareto report: the issue /
    /// decode / bypass fabric scales with `n * m` (the paper's "parallelism
    /// required to fully utilize"), and sharing the functional units
    /// instead of duplicating them per class saves roughly the non-fabric
    /// 40% of the datapath. Unitless; only ratios between cells matter.
    #[must_use]
    pub fn hardware_cost(&self) -> f64 {
        let fabric = f64::from(self.issue_width) * f64::from(self.pipe_degree);
        match self.fu {
            FuModel::Ideal => fabric,
            FuModel::Shared => fabric * 0.6,
        }
    }
}

fn shared_units() -> [(&'static str, Vec<InstrClass>); 5] {
    [
        (
            "alu",
            vec![
                InstrClass::Logical,
                InstrClass::Shift,
                InstrClass::IntAdd,
                InstrClass::Compare,
            ],
        ),
        ("imuldiv", vec![InstrClass::IntMul, InstrClass::IntDiv]),
        ("mem", vec![InstrClass::Load, InstrClass::Store]),
        ("ctrl", vec![InstrClass::Branch, InstrClass::Jump]),
        (
            "fp",
            vec![
                InstrClass::FpAdd,
                InstrClass::FpMul,
                InstrClass::FpDiv,
                InstrClass::FpCvt,
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_base_machine() {
        let spec = GridSpec::parse("").unwrap();
        assert_eq!(spec.cell_count(), 1);
        let cell = spec.cells()[0];
        let config = cell.config();
        assert_eq!(config.issue_width(), 1);
        assert_eq!(config.pipe_degree(), 1);
        assert_eq!(
            config.fingerprint(),
            presets::base().fingerprint(),
            "the default grid cell must be the base machine"
        );
    }

    #[test]
    fn ranges_expand_and_mix_with_lists() {
        let spec = GridSpec::parse("issue=1..4,8 pipe=2..2").unwrap();
        assert_eq!(
            spec.canonical(),
            "issue=1,2,3,4,8 pipe=2 lat=unit fu=ideal split=default"
        );
        for bad in [
            "issue=4..1",
            "issue=1..",
            "issue=..4",
            "issue=0..4",
            "issue=1..65",
        ] {
            assert!(GridSpec::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn presets_are_cells_of_the_map() {
        let spec = GridSpec::parse("issue=1,2,4 pipe=1,2,4 lat=unit fu=ideal,shared").unwrap();
        let cells = spec.cells();
        let find = |n: u32, m: u32, fu: FuModel| {
            *cells
                .iter()
                .find(|c| c.issue_width == n && c.pipe_degree == m && c.fu == fu)
                .unwrap()
        };
        assert_eq!(
            find(2, 1, FuModel::Ideal).config().fingerprint(),
            presets::ideal_superscalar(2).fingerprint()
        );
        assert_eq!(
            find(1, 4, FuModel::Ideal).config().fingerprint(),
            presets::superpipelined(4).fingerprint()
        );
        assert_eq!(
            find(4, 1, FuModel::Shared).config().fingerprint(),
            presets::superscalar_with_class_conflicts(4).fingerprint()
        );
        assert_eq!(
            find(2, 2, FuModel::Ideal).config().fingerprint(),
            presets::superpipelined_superscalar(2, 2).fingerprint()
        );
    }

    #[test]
    fn titan_and_cray_cells_match_the_presets() {
        let spec = GridSpec::parse("lat=titan,cray").unwrap();
        let cells = spec.cells();
        let titan = cells.iter().find(|c| c.lat == LatModel::Titan).unwrap();
        let cray = cells.iter().find(|c| c.lat == LatModel::Cray).unwrap();
        assert_eq!(
            titan.config().fingerprint(),
            presets::multititan().fingerprint()
        );
        assert_eq!(cray.config().fingerprint(), presets::cray1().fingerprint());
    }

    #[test]
    fn canonical_form_round_trips_and_sorts() {
        let spec = GridSpec::parse("pipe=2,1 issue=4,2,2 lat=cray,unit").unwrap();
        let canonical = spec.canonical();
        assert_eq!(
            canonical,
            "issue=2,4 pipe=1,2 lat=unit,cray fu=ideal split=default"
        );
        assert_eq!(GridSpec::parse(&canonical).unwrap(), spec);
    }

    #[test]
    fn cell_indices_are_dense_and_ordered() {
        let spec = GridSpec::parse("issue=1,2 pipe=1,2 fu=ideal,shared").unwrap();
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        for (at, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, at);
        }
        // issue is the outermost axis.
        assert_eq!(cells[0].issue_width, 1);
        assert_eq!(cells[7].issue_width, 2);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert!(matches!(
            GridSpec::parse("bogus=1"),
            Err(GridError::UnknownAxis(_))
        ));
        assert!(matches!(
            GridSpec::parse("issue"),
            Err(GridError::UnknownAxis(_))
        ));
        assert!(matches!(
            GridSpec::parse("issue=x"),
            Err(GridError::BadValue { axis: "issue", .. })
        ));
        assert!(matches!(
            GridSpec::parse("issue=0"),
            Err(GridError::OutOfRange { axis: "issue", .. })
        ));
        assert!(matches!(
            GridSpec::parse("pipe=99"),
            Err(GridError::OutOfRange { axis: "pipe", .. })
        ));
        assert!(matches!(
            GridSpec::parse("lat=warp"),
            Err(GridError::BadValue { axis: "lat", .. })
        ));
        assert!(matches!(
            GridSpec::parse("issue=1 issue=2"),
            Err(GridError::DuplicateAxis("issue"))
        ));
    }

    #[test]
    fn oversized_grids_are_rejected_not_enumerated() {
        // 64 issue values cannot be expressed (range is 1..=64, so a full
        // list is possible); combine axes to exceed the cap instead.
        let values: Vec<String> = (1..=64).map(|n| n.to_string()).collect();
        let spec_text = format!(
            "issue={} pipe={} lat=unit,titan,cray fu=ideal,shared",
            values.join(","),
            (1..=16)
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        match GridSpec::parse(&spec_text) {
            Err(GridError::TooManyCells { cells, max }) => {
                assert_eq!(cells, 64 * 16 * 3 * 2);
                assert_eq!(max, MAX_GRID_CELLS);
            }
            other => panic!("expected TooManyCells, got {other:?}"),
        }
    }

    #[test]
    fn hardware_cost_orders_sensibly() {
        let cell = |n, m, fu| GridCell {
            index: 0,
            issue_width: n,
            pipe_degree: m,
            lat: LatModel::Unit,
            fu,
            split: SplitModel::Default,
        };
        assert!(
            cell(4, 1, FuModel::Ideal).hardware_cost() > cell(2, 1, FuModel::Ideal).hardware_cost()
        );
        assert!(
            cell(2, 2, FuModel::Ideal).hardware_cost() > cell(2, 1, FuModel::Ideal).hardware_cost()
        );
        assert!(
            cell(4, 1, FuModel::Shared).hardware_cost()
                < cell(4, 1, FuModel::Ideal).hardware_cost()
        );
        assert_eq!(cell(1, 1, FuModel::Ideal).hardware_cost(), 1.0);
    }

    #[test]
    fn cell_names_are_stable() {
        let spec = GridSpec::parse("issue=2 pipe=2 lat=titan fu=shared split=wide").unwrap();
        assert_eq!(spec.cells()[0].name(), "n2.m2.titan.shared.wide");
    }
}
