//! Textual machine descriptions and the description lint.
//!
//! A `.machine` file is a line-oriented description of a
//! [`MachineConfig`]:
//!
//! ```text
//! # CRAY-1-flavored scalar machine
//! name my-cray
//! issue_width 1
//! pipe_degree 3
//! latency load 11
//! latency fpadd 6
//! unit mem classes=load,store multiplicity=1 issue_latency=1
//! unit fp classes=fpadd,fpmul,fpdiv,fpcvt multiplicity=1 issue_latency=2
//! split int_temps=16 int_globals=26 fp_temps=16 fp_globals=26
//! branch_prediction perfect
//! taken_branch_breaks_issue false
//! ```
//!
//! Class names are the [`InstrClass::mnemonic`] strings. Unset keys keep
//! the base-machine defaults ([`MachineConfigBuilder::new`]). Parsing is
//! deliberately permissive about *semantic* nonsense — zero latencies, a
//! unit with multiplicity 0, uncovered classes — so that
//! [`MachineSpec::diagnose`] can report every problem at once; only
//! syntactic garbage is a [`SpecError`].

use crate::config::{
    FunctionalUnit, MachineConfig, MachineConfigBuilder, MachineError, RegisterSplit,
};
use std::error::Error;
use std::fmt;
use supersym_isa::{ClassTable, Diagnostic, InstrClass, NUM_CLASSES};

/// The shape of one functional unit as described, before validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    /// The unit's name.
    pub name: String,
    /// Classes the unit claims to serve.
    pub classes: Vec<InstrClass>,
    /// Declared number of copies.
    pub multiplicity: u32,
    /// Declared cycles between issues to one copy.
    pub issue_latency: u32,
}

/// A parsed (but not yet validated) machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Maximum instructions issued per machine cycle.
    pub issue_width: u32,
    /// Superpipelining degree.
    pub pipe_degree: u32,
    /// Per-class operation latencies.
    pub latencies: ClassTable<u32>,
    /// Functional units as described (possibly nonsensical).
    pub units: Vec<UnitSpec>,
    /// Register-file split.
    pub split: RegisterSplit,
    /// Whether branches are predicted perfectly.
    pub perfect_branch_prediction: bool,
    /// Whether a taken branch ends the cycle's issue group.
    pub taken_branch_breaks_issue: bool,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec {
            name: "unnamed".to_string(),
            issue_width: 1,
            pipe_degree: 1,
            latencies: ClassTable::from_fn(|_| 1),
            units: Vec::new(),
            split: RegisterSplit::default(),
            perfect_branch_prediction: true,
            taken_branch_breaks_issue: false,
        }
    }
}

impl MachineSpec {
    /// Lints the description, returning every finding.
    /// See [`MachineConfig::validate`] for the rule set.
    #[must_use]
    pub fn diagnose(&self) -> Vec<Diagnostic> {
        lint_description(
            &self.name,
            self.issue_width,
            self.pipe_degree,
            &self.latencies,
            &self.units,
        )
    }

    /// Builds the [`MachineConfig`], enforcing the hard invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`MachineError`], as [`MachineConfigBuilder::build`]
    /// does; use [`Self::diagnose`] first to see everything wrong.
    pub fn build(&self) -> Result<MachineConfig, MachineError> {
        let mut builder = MachineConfigBuilder::new(self.name.clone());
        builder
            .issue_width(self.issue_width)
            .pipe_degree(self.pipe_degree)
            .latencies(self.latencies)
            .register_split(self.split)
            .perfect_branch_prediction(self.perfect_branch_prediction)
            .taken_branch_breaks_issue(self.taken_branch_breaks_issue);
        for unit in &self.units {
            builder.functional_unit(FunctionalUnit::try_new(
                unit.name.clone(),
                unit.classes.clone(),
                unit.multiplicity,
                unit.issue_latency,
            )?);
        }
        builder.build()
    }
}

/// A syntax error in a `.machine` description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based source line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for SpecError {}

fn class_by_mnemonic(token: &str) -> Option<InstrClass> {
    InstrClass::ALL.into_iter().find(|c| c.mnemonic() == token)
}

/// Parses a `.machine` description.
///
/// # Errors
///
/// Returns a [`SpecError`] for unknown keys, malformed numbers or unknown
/// class names. Semantic problems parse fine and surface through
/// [`MachineSpec::diagnose`].
pub fn parse_machine_spec(text: &str) -> Result<MachineSpec, SpecError> {
    let mut spec = MachineSpec::default();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let err = |message: String| SpecError {
            line: line_no,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match key {
            "name" => {
                if rest.is_empty() {
                    return Err(err("`name` needs a value".to_string()));
                }
                spec.name = rest.to_string();
            }
            "issue_width" => spec.issue_width = parse_u32(rest).map_err(err)?,
            "pipe_degree" => spec.pipe_degree = parse_u32(rest).map_err(err)?,
            "latency" => {
                let (class_token, value) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("`latency` takes a class and a value".to_string()))?;
                let class = class_by_mnemonic(class_token.trim())
                    .ok_or_else(|| err(format!("unknown instruction class `{class_token}`")))?;
                spec.latencies[class] = parse_u32(value.trim()).map_err(err)?;
            }
            "unit" => spec.units.push(parse_unit(rest).map_err(err)?),
            "split" => spec.split = parse_split(rest).map_err(err)?,
            "branch_prediction" => match rest {
                "perfect" => spec.perfect_branch_prediction = true,
                "real" => spec.perfect_branch_prediction = false,
                other => {
                    return Err(err(format!(
                        "`branch_prediction` must be `perfect` or `real`, got `{other}`"
                    )))
                }
            },
            "taken_branch_breaks_issue" => {
                spec.taken_branch_breaks_issue = parse_bool(rest).map_err(err)?;
            }
            other => return Err(err(format!("unknown key `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_u32(token: &str) -> Result<u32, String> {
    token
        .parse()
        .map_err(|_| format!("expected a number, got `{token}`"))
}

fn parse_bool(token: &str) -> Result<bool, String> {
    match token {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected `true` or `false`, got `{other}`")),
    }
}

/// `<name> classes=a,b multiplicity=N issue_latency=N` (the `key=value`
/// parts in any order; unset counts default to 1).
fn parse_unit(rest: &str) -> Result<UnitSpec, String> {
    let mut tokens = rest.split_whitespace();
    let name = tokens
        .next()
        .ok_or_else(|| "`unit` needs a name".to_string())?
        .to_string();
    let mut unit = UnitSpec {
        name,
        classes: Vec::new(),
        multiplicity: 1,
        issue_latency: 1,
    };
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected `key=value`, got `{token}`"))?;
        match key {
            "classes" => {
                for class_token in value.split(',').filter(|t| !t.is_empty()) {
                    unit.classes.push(
                        class_by_mnemonic(class_token)
                            .ok_or_else(|| format!("unknown instruction class `{class_token}`"))?,
                    );
                }
            }
            "multiplicity" => unit.multiplicity = parse_u32(value)?,
            "issue_latency" => unit.issue_latency = parse_u32(value)?,
            other => return Err(format!("unknown unit key `{other}`")),
        }
    }
    Ok(unit)
}

/// `int_temps=N int_globals=N fp_temps=N fp_globals=N` in any order.
fn parse_split(rest: &str) -> Result<RegisterSplit, String> {
    let mut split = RegisterSplit::default();
    for token in rest.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected `key=value`, got `{token}`"))?;
        let value: u8 = value
            .parse()
            .map_err(|_| format!("expected a number, got `{value}`"))?;
        match key {
            "int_temps" => split.int_temps = value,
            "int_globals" => split.int_globals = value,
            "fp_temps" => split.fp_temps = value,
            "fp_globals" => split.fp_globals = value,
            other => return Err(format!("unknown split key `{other}`")),
        }
    }
    Ok(split)
}

/// The machine-description lint shared by [`MachineConfig::validate`],
/// [`MachineConfigBuilder::diagnose`] and [`MachineSpec::diagnose`].
///
/// Hard invariants come back as errors, plausibility problems as warnings.
/// When `units` is empty the unit checks are skipped: the builder
/// synthesizes a clean conflict-free set in that case.
pub(crate) fn lint_description(
    name: &str,
    issue_width: u32,
    pipe_degree: u32,
    latencies: &ClassTable<u32>,
    units: &[UnitSpec],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |d: Diagnostic| out.push(d.in_function(name));
    if issue_width == 0 {
        push(Diagnostic::error(
            "zero-issue-width",
            "issue width must be at least 1",
        ));
    }
    if pipe_degree == 0 {
        push(Diagnostic::error(
            "zero-pipe-degree",
            "superpipelining degree must be at least 1",
        ));
    }
    for (class, &latency) in latencies.iter() {
        if latency == 0 {
            push(Diagnostic::error(
                "zero-latency",
                format!("class `{class}` has zero operation latency"),
            ));
        }
    }
    if !units.is_empty() {
        let mut served_by = [None::<usize>; NUM_CLASSES];
        for (index, unit) in units.iter().enumerate() {
            if unit.classes.is_empty() {
                push(Diagnostic::error(
                    "empty-unit",
                    format!("functional unit `{}` serves no class", unit.name),
                ));
            }
            if unit.multiplicity == 0 {
                push(Diagnostic::error(
                    "zero-multiplicity",
                    format!("functional unit `{}` has multiplicity 0", unit.name),
                ));
            }
            if unit.issue_latency == 0 {
                push(Diagnostic::error(
                    "zero-issue-latency",
                    format!("functional unit `{}` has issue latency 0", unit.name),
                ));
            }
            if unit.multiplicity > issue_width && issue_width > 0 {
                push(Diagnostic::warning(
                    "excess-multiplicity",
                    format!(
                        "functional unit `{}` has {} copies but only {} can issue per cycle",
                        unit.name, unit.multiplicity, issue_width
                    ),
                ));
            }
            for &class in &unit.classes {
                match served_by[class.index()] {
                    None => served_by[class.index()] = Some(index),
                    Some(first) => push(Diagnostic::error(
                        "doubly-covered-class",
                        format!(
                            "class `{class}` is served by both `{}` and `{}`",
                            units[first].name, unit.name
                        ),
                    )),
                }
            }
        }
        for class in InstrClass::ALL {
            if served_by[class.index()].is_none() {
                push(Diagnostic::error(
                    "uncovered-class",
                    format!("class `{class}` has no functional unit"),
                ));
            }
        }
        // Best case, every unit copy accepts one instruction per cycle; if
        // even that sum cannot reach the issue width, the width is a fiction.
        let capacity: u64 = units.iter().map(|u| u64::from(u.multiplicity)).sum();
        if capacity < u64::from(issue_width) {
            push(Diagnostic::warning(
                "unreachable-issue-width",
                format!(
                    "issue width {issue_width} can never be sustained: functional units \
                     provide only {capacity} issue slots per cycle"
                ),
            ));
        }
    }
    // Paper §2.4: the superpipelining degree *is* the latency of simple
    // operations in machine cycles. A degree-m machine whose simple
    // operations all finish in under m cycles is mislabeled.
    if pipe_degree > 1 {
        let max_simple = InstrClass::ALL
            .into_iter()
            .filter(|c| c.is_simple())
            .map(|c| latencies[c])
            .max()
            .unwrap_or(0);
        if max_simple < pipe_degree {
            push(Diagnostic::warning(
                "inconsistent-pipe-degree",
                format!(
                    "superpipelining degree {pipe_degree} but no simple operation \
                     has latency >= {pipe_degree} (max is {max_simple})"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::Severity;

    const GOOD: &str = "\
# a plausible two-wide machine
name good
issue_width 2
latency load 2
latency fpmul 4
unit alu classes=logical,shift,add/sub,compare,intmul,intdiv multiplicity=2
unit mem classes=load,store multiplicity=1
unit ctrl classes=branch,jump multiplicity=1
unit fp classes=fpadd,fpmul,fpdiv,fpcvt multiplicity=1 issue_latency=2
";

    #[test]
    fn good_spec_parses_and_builds() {
        let spec = parse_machine_spec(GOOD).unwrap();
        assert_eq!(spec.name, "good");
        assert_eq!(spec.issue_width, 2);
        assert_eq!(spec.latencies[InstrClass::Load], 2);
        assert_eq!(spec.units.len(), 4);
        assert!(spec.diagnose().is_empty());
        let config = spec.build().unwrap();
        assert_eq!(config.issue_width(), 2);
        assert_eq!(config.latency(InstrClass::FpMul), 4);
    }

    #[test]
    fn broken_spec_yields_all_diagnostics() {
        let text = "\
name broken
issue_width 0
latency load 0
unit alu classes=add/sub multiplicity=0
unit alu2 classes=add/sub
";
        let spec = parse_machine_spec(text).unwrap();
        let diagnostics = spec.diagnose();
        let codes: Vec<&str> = diagnostics.iter().map(|d| d.code()).collect();
        assert!(codes.contains(&"zero-issue-width"));
        assert!(codes.contains(&"zero-latency"));
        assert!(codes.contains(&"zero-multiplicity"));
        assert!(codes.contains(&"doubly-covered-class"));
        assert!(codes.contains(&"uncovered-class"));
        assert!(spec.build().is_err());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_machine_spec("name x\nfrobnicate 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
        let err = parse_machine_spec("latency nosuch 3\n").unwrap_err();
        assert!(err.message.contains("unknown instruction class"));
        let err = parse_machine_spec("issue_width lots\n").unwrap_err();
        assert!(err.message.contains("expected a number"));
    }

    #[test]
    fn split_and_flags_parse() {
        let spec = parse_machine_spec(
            "split int_temps=20 fp_temps=20\nbranch_prediction real\ntaken_branch_breaks_issue true\n",
        )
        .unwrap();
        assert_eq!(spec.split.int_temps, 20);
        assert_eq!(spec.split.int_globals, 26);
        assert!(!spec.perfect_branch_prediction);
        assert!(spec.taken_branch_breaks_issue);
    }

    #[test]
    fn unreachable_issue_width_is_warning() {
        let text = "\
issue_width 8
unit all classes=logical,shift,add/sub,intmul,intdiv,compare,load,store,branch,jump,fpadd,fpmul,fpdiv,fpcvt multiplicity=2
";
        let spec = parse_machine_spec(text).unwrap();
        let diagnostics = spec.diagnose();
        assert!(diagnostics
            .iter()
            .any(|d| d.code() == "unreachable-issue-width" && d.severity() == Severity::Warning));
        // It still builds: warnings are not hard errors.
        assert!(spec.build().is_ok());
    }

    #[test]
    fn inconsistent_pipe_degree_is_warning() {
        let spec = parse_machine_spec("pipe_degree 4\n").unwrap();
        let diagnostics = spec.diagnose();
        assert!(diagnostics
            .iter()
            .any(|d| d.code() == "inconsistent-pipe-degree"));
    }

    #[test]
    fn try_new_rejects_bad_units() {
        assert!(matches!(
            FunctionalUnit::try_new("u", vec![InstrClass::Load], 0, 1),
            Err(MachineError::ZeroMultiplicity { .. })
        ));
        assert!(matches!(
            FunctionalUnit::try_new("u", vec![InstrClass::Load], 1, 0),
            Err(MachineError::ZeroIssueLatency { .. })
        ));
        assert!(matches!(
            FunctionalUnit::try_new("u", Vec::<InstrClass>::new(), 1, 1),
            Err(MachineError::EmptyUnit { .. })
        ));
        assert!(FunctionalUnit::try_new("u", vec![InstrClass::Load], 1, 1).is_ok());
    }

    #[test]
    fn builder_diagnose_collects_everything() {
        let mut builder = MachineConfig::builder("b");
        builder
            .issue_width(0)
            .latency(InstrClass::Load, 0)
            .latency(InstrClass::Store, 0);
        let diagnostics = builder.diagnose();
        assert_eq!(diagnostics.len(), 3);
        assert!(diagnostics.iter().all(|d| d.is_error()));
        // build() reports only the first.
        assert!(builder.build().is_err());
    }
}
