//! The machine description: latencies, functional units, issue limits.

use std::error::Error;
use std::fmt;
use supersym_isa::{ClassTable, InstrClass, NUM_CLASSES};

/// A functional unit: a set of instruction classes served by `multiplicity`
/// identical units, each unable to accept a new instruction for
/// `issue_latency` machine cycles after accepting one.
///
/// Paper §3: "suppose we want to issue an instruction associated with a
/// functional unit with issue latency 3 and multiplicity 2. This means that
/// there are two units we might use to issue the instruction. If both are
/// busy then the machine will stall until one is idle."
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionalUnit {
    name: String,
    classes: Vec<InstrClass>,
    multiplicity: u32,
    issue_latency: u32,
}

impl FunctionalUnit {
    /// Creates a functional unit, validating its shape.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::ZeroMultiplicity`] or
    /// [`MachineError::ZeroIssueLatency`] for zero counts, and
    /// [`MachineError::EmptyUnit`] when `classes` is empty — such a unit is
    /// meaningless.
    pub fn try_new(
        name: impl Into<String>,
        classes: impl Into<Vec<InstrClass>>,
        multiplicity: u32,
        issue_latency: u32,
    ) -> Result<Self, MachineError> {
        let name = name.into();
        let classes = classes.into();
        if multiplicity == 0 {
            return Err(MachineError::ZeroMultiplicity { unit: name });
        }
        if issue_latency == 0 {
            return Err(MachineError::ZeroIssueLatency { unit: name });
        }
        if classes.is_empty() {
            return Err(MachineError::EmptyUnit { unit: name });
        }
        Ok(FunctionalUnit {
            name,
            classes,
            multiplicity,
            issue_latency,
        })
    }

    /// Creates a functional unit.
    ///
    /// # Panics
    ///
    /// Panics if `multiplicity` or `issue_latency` is zero, or `classes` is
    /// empty; [`FunctionalUnit::try_new`] is the non-panicking form.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        classes: impl Into<Vec<InstrClass>>,
        multiplicity: u32,
        issue_latency: u32,
    ) -> Self {
        Self::try_new(name, classes, multiplicity, issue_latency).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The unit's name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction classes this unit serves.
    #[must_use]
    pub fn classes(&self) -> &[InstrClass] {
        &self.classes
    }

    /// Number of identical copies of the unit.
    #[must_use]
    pub fn multiplicity(&self) -> u32 {
        self.multiplicity
    }

    /// Cycles between successive issues to the same copy.
    #[must_use]
    pub fn issue_latency(&self) -> u32 {
        self.issue_latency
    }
}

/// How the register file is divided between expression temporaries and
/// globally-allocated variables.
///
/// Paper §3: "Our compiler divides the register set into two disjoint parts.
/// It uses one part as temporaries for short-term expressions ... the other
/// part as home locations for local and global variables." The paper's main
/// configuration is 16 temporaries + 26 globals (§4.4); Figure 4-6 notes the
/// forty-temporary variant used for the unrolling study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterSplit {
    /// Integer registers usable as expression temporaries.
    pub int_temps: u8,
    /// Integer registers usable as variable home locations.
    pub int_globals: u8,
    /// FP registers usable as expression temporaries.
    pub fp_temps: u8,
    /// FP registers usable as variable home locations.
    pub fp_globals: u8,
}

impl RegisterSplit {
    /// The paper's main configuration: "we used 16 registers for expression
    /// temporaries and 26 for global register allocation" (§4.4), per
    /// register file.
    #[must_use]
    pub fn paper_default() -> Self {
        RegisterSplit {
            int_temps: 16,
            int_globals: 26,
            fp_temps: 16,
            fp_globals: 26,
        }
    }

    /// The split used in the unrolling study, which was limited by "only
    /// forty temporary registers" (§4.4): twenty per file.
    #[must_use]
    pub fn unrolling_study() -> Self {
        RegisterSplit {
            int_temps: 20,
            int_globals: 26,
            fp_temps: 20,
            fp_globals: 26,
        }
    }
}

impl Default for RegisterSplit {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors in machine-description construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// An instruction class is not served by any functional unit.
    UncoveredClass(InstrClass),
    /// An instruction class is served by more than one functional unit.
    DoublyCoveredClass(InstrClass),
    /// A latency of zero was specified (results can never be ready before
    /// the next cycle).
    ZeroLatency(InstrClass),
    /// Issue width of zero.
    ZeroIssueWidth,
    /// Superpipelining degree of zero.
    ZeroPipeDegree,
    /// A functional unit with multiplicity zero.
    ZeroMultiplicity {
        /// Name of the offending unit.
        unit: String,
    },
    /// A functional unit with issue latency zero.
    ZeroIssueLatency {
        /// Name of the offending unit.
        unit: String,
    },
    /// A functional unit serving no instruction class.
    EmptyUnit {
        /// Name of the offending unit.
        unit: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UncoveredClass(c) => {
                write!(f, "instruction class `{c}` has no functional unit")
            }
            MachineError::DoublyCoveredClass(c) => {
                write!(
                    f,
                    "instruction class `{c}` is served by multiple functional units"
                )
            }
            MachineError::ZeroLatency(c) => {
                write!(f, "instruction class `{c}` has zero operation latency")
            }
            MachineError::ZeroIssueWidth => write!(f, "issue width must be at least 1"),
            MachineError::ZeroPipeDegree => write!(f, "pipelining degree must be at least 1"),
            MachineError::ZeroMultiplicity { unit } => {
                write!(f, "functional unit `{unit}` multiplicity must be > 0")
            }
            MachineError::ZeroIssueLatency { unit } => {
                write!(f, "functional unit `{unit}` issue latency must be > 0")
            }
            MachineError::EmptyUnit { unit } => {
                write!(f, "functional unit `{unit}` must serve some class")
            }
        }
    }
}

impl Error for MachineError {}

/// A complete machine description.
///
/// Create one through [`MachineConfig::builder`] or a preset in
/// [`crate::presets`]. All latencies are in *machine cycles*; a machine
/// cycle is `1 / pipe_degree` of a base-machine cycle, so results are
/// compared across machines in base cycles via [`MachineConfig::base_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    name: String,
    issue_width: u32,
    pipe_degree: u32,
    latencies: ClassTable<u32>,
    fus: Vec<FunctionalUnit>,
    /// Derived: class index -> functional unit index.
    fu_of_class: [usize; NUM_CLASSES],
    perfect_branch_prediction: bool,
    taken_branch_breaks_issue: bool,
    register_split: RegisterSplit,
}

impl MachineConfig {
    /// Starts building a machine description.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> MachineConfigBuilder {
        MachineConfigBuilder::new(name)
    }

    /// The machine's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum instructions issued per machine cycle (paper §3: "Superscalar
    /// machines may have an upper limit on the number of instructions that
    /// may be issued in the same cycle").
    #[must_use]
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// Superpipelining degree *m*: the machine cycle is `1/m` of the base
    /// machine cycle.
    #[must_use]
    pub fn pipe_degree(&self) -> u32 {
        self.pipe_degree
    }

    /// Operation latency of `class`, in machine cycles.
    #[must_use]
    pub fn latency(&self, class: InstrClass) -> u32 {
        self.latencies[class]
    }

    /// The full latency table.
    #[must_use]
    pub fn latencies(&self) -> &ClassTable<u32> {
        &self.latencies
    }

    /// The functional units.
    #[must_use]
    pub fn functional_units(&self) -> &[FunctionalUnit] {
        &self.fus
    }

    /// Index (into [`Self::functional_units`]) of the unit serving `class`.
    #[must_use]
    pub fn unit_of(&self, class: InstrClass) -> usize {
        self.fu_of_class[class.index()]
    }

    /// Whether branches are predicted perfectly (the paper's default
    /// assumption: control latency is ignored, §2.1).
    #[must_use]
    pub fn perfect_branch_prediction(&self) -> bool {
        self.perfect_branch_prediction
    }

    /// Whether a taken branch ends the issue group for the cycle (real
    /// superscalars cannot issue past a taken branch; the paper's ideal
    /// machines can). Off for ideal machines.
    #[must_use]
    pub fn taken_branch_breaks_issue(&self) -> bool {
        self.taken_branch_breaks_issue
    }

    /// The register-file split used by register allocation.
    #[must_use]
    pub fn register_split(&self) -> RegisterSplit {
        self.register_split
    }

    /// Converts machine cycles to base-machine cycles.
    #[must_use]
    pub fn base_cycles(&self, machine_cycles: u64) -> f64 {
        machine_cycles as f64 / self.pipe_degree as f64
    }

    /// The instruction-level parallelism required to fully utilize the
    /// machine: `n * m` (paper §2.5: "Instruction-level parallelism required
    /// to fully utilize = n*m").
    #[must_use]
    pub fn required_parallelism(&self) -> u32 {
        self.issue_width * self.pipe_degree
    }

    /// Returns a copy with every operation latency set to one machine cycle.
    ///
    /// This is the transformation behind the paper's Figure 4-4 comparison
    /// ("instruction issue methods have been compared for the CRAY-1 assuming
    /// all functional units have 1 cycle latency").
    #[must_use]
    pub fn with_unit_latencies(&self) -> MachineConfig {
        let mut config = self.clone();
        config.name = format!("{} (unit latencies)", self.name);
        config.latencies = ClassTable::from_fn(|_| 1);
        config
    }

    /// Returns a copy with a different issue width.
    #[must_use]
    pub fn with_issue_width(&self, width: u32) -> MachineConfig {
        assert!(width > 0, "issue width must be at least 1");
        let mut config = self.clone();
        config.issue_width = width;
        // Widen per-class units so the width limit, not class conflicts,
        // is what is being varied — matching the paper's ideal-issue sweeps.
        for fu in &mut config.fus {
            fu.multiplicity = fu.multiplicity.max(width);
        }
        config
    }

    /// Returns a copy with a different register split.
    #[must_use]
    pub fn with_register_split(&self, split: RegisterSplit) -> MachineConfig {
        let mut config = self.clone();
        config.register_split = split;
        config
    }

    /// A stable 64-bit fingerprint of the machine's *behavior*.
    ///
    /// Hashes every timing-relevant field — issue width, pipelining degree,
    /// the latency table, functional-unit shapes, branch handling, register
    /// split — over a canonical rendering with [`supersym_rng::fnv1a_64`],
    /// and deliberately excludes display names, so two configurations that
    /// simulate identically (say, the `superscalar:2` preset and the
    /// equivalent sweep-grid cell) share sweep-cache entries. Stable across
    /// platforms and releases; recorded in the `supersym.sweep/v1`
    /// checkpoint schema as the cache key's machine half.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        text.push_str(&format!("n={};m={};", self.issue_width, self.pipe_degree));
        for (class, latency) in self.latencies.iter() {
            text.push_str(&format!("lat.{}={};", class.mnemonic(), latency));
        }
        // Units in a class-major canonical order: what serves each class,
        // with how many copies and what issue latency.
        for class in InstrClass::ALL {
            let fu = &self.fus[self.fu_of_class[class.index()]];
            text.push_str(&format!(
                "fu.{}=x{}@{};",
                class.mnemonic(),
                fu.multiplicity(),
                fu.issue_latency()
            ));
        }
        text.push_str(&format!(
            "pbp={};tbbi={};",
            self.perfect_branch_prediction, self.taken_branch_breaks_issue
        ));
        let split = self.register_split;
        text.push_str(&format!(
            "split={}:{}:{}:{}",
            split.int_temps, split.int_globals, split.fp_temps, split.fp_globals
        ));
        supersym_rng::fnv1a_64(text.as_bytes())
    }

    /// Lints the machine description, returning every finding instead of
    /// stopping at the first problem.
    ///
    /// Structural invariants (class coverage, nonzero latencies and
    /// multiplicities, nonzero issue width and pipelining degree) are
    /// re-checked and reported as errors; plausibility problems that
    /// [`MachineConfigBuilder::build`] accepts — an issue width no
    /// combination of functional units can sustain, unit copies beyond the
    /// issue width, or a superpipelining degree inconsistent with the
    /// latency table — come back as warnings. An empty vector means the
    /// description is clean.
    #[must_use]
    pub fn validate(&self) -> Vec<supersym_isa::Diagnostic> {
        let units: Vec<crate::spec::UnitSpec> = self
            .fus
            .iter()
            .map(|fu| crate::spec::UnitSpec {
                name: fu.name().to_string(),
                classes: fu.classes().to_vec(),
                multiplicity: fu.multiplicity(),
                issue_latency: fu.issue_latency(),
            })
            .collect();
        crate::spec::lint_description(
            &self.name,
            self.issue_width,
            self.pipe_degree,
            &self.latencies,
            &units,
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: issue width {}, pipelining degree {}",
            self.name, self.issue_width, self.pipe_degree
        )?;
        writeln!(f, "  latencies:")?;
        for (class, latency) in self.latencies.iter() {
            writeln!(f, "    {class:10} {latency}")?;
        }
        writeln!(f, "  functional units:")?;
        for fu in &self.fus {
            writeln!(
                f,
                "    {} x{} (issue latency {}): {:?}",
                fu.name(),
                fu.multiplicity(),
                fu.issue_latency(),
                fu.classes()
                    .iter()
                    .map(|c| c.mnemonic())
                    .collect::<Vec<_>>()
            )?;
        }
        Ok(())
    }
}

/// Builder for [`MachineConfig`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    name: String,
    issue_width: u32,
    pipe_degree: u32,
    latencies: ClassTable<u32>,
    fus: Vec<FunctionalUnit>,
    perfect_branch_prediction: bool,
    taken_branch_breaks_issue: bool,
    register_split: RegisterSplit,
}

impl MachineConfigBuilder {
    /// Starts a builder with base-machine defaults: issue width 1, degree 1,
    /// all latencies 1, perfect branch prediction, no functional units yet.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        MachineConfigBuilder {
            name: name.into(),
            issue_width: 1,
            pipe_degree: 1,
            latencies: ClassTable::from_fn(|_| 1),
            fus: Vec::new(),
            perfect_branch_prediction: true,
            taken_branch_breaks_issue: false,
            register_split: RegisterSplit::default(),
        }
    }

    /// Sets the issue width.
    pub fn issue_width(&mut self, width: u32) -> &mut Self {
        self.issue_width = width;
        self
    }

    /// Sets the superpipelining degree.
    pub fn pipe_degree(&mut self, degree: u32) -> &mut Self {
        self.pipe_degree = degree;
        self
    }

    /// Sets the operation latency of one class (machine cycles).
    pub fn latency(&mut self, class: InstrClass, cycles: u32) -> &mut Self {
        self.latencies[class] = cycles;
        self
    }

    /// Sets all operation latencies at once.
    pub fn latencies(&mut self, table: ClassTable<u32>) -> &mut Self {
        self.latencies = table;
        self
    }

    /// Scales every latency by `factor` (used to express superpipelining:
    /// "given the same implementation technology it must take m cycles in
    /// the superpipelined machine", §2.4).
    pub fn scale_latencies(&mut self, factor: u32) -> &mut Self {
        self.latencies = ClassTable::from_fn(|c| self.latencies[c] * factor);
        self
    }

    /// Adds a functional unit.
    pub fn functional_unit(&mut self, fu: FunctionalUnit) -> &mut Self {
        self.fus.push(fu);
        self
    }

    /// Sets whether branch prediction is perfect.
    pub fn perfect_branch_prediction(&mut self, value: bool) -> &mut Self {
        self.perfect_branch_prediction = value;
        self
    }

    /// Sets whether a taken branch ends the cycle's issue group.
    pub fn taken_branch_breaks_issue(&mut self, value: bool) -> &mut Self {
        self.taken_branch_breaks_issue = value;
        self
    }

    /// Sets the register split.
    pub fn register_split(&mut self, split: RegisterSplit) -> &mut Self {
        self.register_split = split;
        self
    }

    /// Lints the description so far, returning *all* findings, where
    /// [`Self::build`] stops at the first hard error. When no functional
    /// unit has been declared, unit checks are skipped — `build` will
    /// synthesize a clean per-class set.
    #[must_use]
    pub fn diagnose(&self) -> Vec<supersym_isa::Diagnostic> {
        let units: Vec<crate::spec::UnitSpec> = self
            .fus
            .iter()
            .map(|fu| crate::spec::UnitSpec {
                name: fu.name().to_string(),
                classes: fu.classes().to_vec(),
                multiplicity: fu.multiplicity(),
                issue_latency: fu.issue_latency(),
            })
            .collect();
        crate::spec::lint_description(
            &self.name,
            self.issue_width,
            self.pipe_degree,
            &self.latencies,
            &units,
        )
    }

    /// Finishes the description.
    ///
    /// If no functional unit was declared, one fully-pipelined universal
    /// unit per class is synthesized with multiplicity equal to the issue
    /// width — i.e. no class conflicts, the paper's "ideal" machine.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if a class is uncovered or doubly covered,
    /// any latency is zero, or the issue width / pipelining degree is zero.
    pub fn build(&self) -> Result<MachineConfig, MachineError> {
        if self.issue_width == 0 {
            return Err(MachineError::ZeroIssueWidth);
        }
        if self.pipe_degree == 0 {
            return Err(MachineError::ZeroPipeDegree);
        }
        for class in InstrClass::ALL {
            if self.latencies[class] == 0 {
                return Err(MachineError::ZeroLatency(class));
            }
        }
        let mut fus = self.fus.clone();
        if fus.is_empty() {
            for class in InstrClass::ALL {
                fus.push(FunctionalUnit::new(
                    class.mnemonic(),
                    vec![class],
                    self.issue_width,
                    1,
                ));
            }
        }
        let mut fu_of_class = [usize::MAX; NUM_CLASSES];
        for (index, fu) in fus.iter().enumerate() {
            for &class in fu.classes() {
                if fu_of_class[class.index()] != usize::MAX {
                    return Err(MachineError::DoublyCoveredClass(class));
                }
                fu_of_class[class.index()] = index;
            }
        }
        for class in InstrClass::ALL {
            if fu_of_class[class.index()] == usize::MAX {
                return Err(MachineError::UncoveredClass(class));
            }
        }
        Ok(MachineConfig {
            name: self.name.clone(),
            issue_width: self.issue_width,
            pipe_degree: self.pipe_degree,
            latencies: self.latencies,
            fus,
            fu_of_class,
            perfect_branch_prediction: self.perfect_branch_prediction,
            taken_branch_breaks_issue: self.taken_branch_breaks_issue,
            register_split: self.register_split,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_synthesizes_units() {
        let config = MachineConfig::builder("test").build().unwrap();
        assert_eq!(config.functional_units().len(), NUM_CLASSES);
        for class in InstrClass::ALL {
            let fu = &config.functional_units()[config.unit_of(class)];
            assert!(fu.classes().contains(&class));
        }
    }

    #[test]
    fn zero_issue_width_rejected() {
        let err = MachineConfig::builder("test")
            .issue_width(0)
            .build()
            .unwrap_err();
        assert_eq!(err, MachineError::ZeroIssueWidth);
    }

    #[test]
    fn zero_latency_rejected() {
        let err = MachineConfig::builder("test")
            .latency(InstrClass::Load, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, MachineError::ZeroLatency(InstrClass::Load));
    }

    #[test]
    fn doubly_covered_class_rejected() {
        let err = MachineConfig::builder("test")
            .functional_unit(FunctionalUnit::new("a", vec![InstrClass::Load], 1, 1))
            .functional_unit(FunctionalUnit::new("b", vec![InstrClass::Load], 1, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, MachineError::DoublyCoveredClass(InstrClass::Load));
    }

    #[test]
    fn uncovered_class_rejected() {
        let err = MachineConfig::builder("test")
            .functional_unit(FunctionalUnit::new("a", vec![InstrClass::Load], 1, 1))
            .build()
            .unwrap_err();
        assert!(matches!(err, MachineError::UncoveredClass(_)));
    }

    #[test]
    fn base_cycles_conversion() {
        let config = MachineConfig::builder("sp4")
            .pipe_degree(4)
            .build()
            .unwrap();
        assert_eq!(config.base_cycles(8), 2.0);
    }

    #[test]
    fn required_parallelism_is_product() {
        let config = MachineConfig::builder("ssp")
            .issue_width(2)
            .pipe_degree(3)
            .build()
            .unwrap();
        assert_eq!(config.required_parallelism(), 6);
    }

    #[test]
    fn unit_latencies_transform() {
        let config = MachineConfig::builder("m")
            .latency(InstrClass::Load, 11)
            .build()
            .unwrap();
        let unit = config.with_unit_latencies();
        assert_eq!(unit.latency(InstrClass::Load), 1);
        assert!(unit.name().contains("unit latencies"));
    }

    #[test]
    fn with_issue_width_widens_units() {
        let config = MachineConfig::builder("m").build().unwrap();
        let wide = config.with_issue_width(4);
        assert_eq!(wide.issue_width(), 4);
        for fu in wide.functional_units() {
            assert!(fu.multiplicity() >= 4);
        }
    }

    #[test]
    fn scale_latencies() {
        let config = MachineConfig::builder("m")
            .latency(InstrClass::Load, 2)
            .scale_latencies(3)
            .build()
            .unwrap();
        assert_eq!(config.latency(InstrClass::Load), 6);
        assert_eq!(config.latency(InstrClass::IntAdd), 3);
    }

    #[test]
    #[should_panic(expected = "multiplicity must be > 0")]
    fn zero_multiplicity_panics() {
        let _ = FunctionalUnit::new("bad", vec![InstrClass::Load], 0, 1);
    }

    #[test]
    fn display_contains_units() {
        let config = MachineConfig::builder("m").build().unwrap();
        let text = config.to_string();
        assert!(text.contains("issue width 1"));
        assert!(text.contains("load"));
    }

    #[test]
    fn fingerprint_ignores_names_but_not_behavior() {
        let a = MachineConfig::builder("alpha")
            .issue_width(2)
            .build()
            .unwrap();
        let b = MachineConfig::builder("beta")
            .issue_width(2)
            .build()
            .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = MachineConfig::builder("alpha")
            .issue_width(4)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = MachineConfig::builder("alpha")
            .issue_width(2)
            .latency(InstrClass::Load, 9)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
        let e = a.with_register_split(RegisterSplit::unrolling_study());
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        // Pin one reference value: the checkpoint/cache format depends on
        // fingerprints meaning the same thing forever.
        let base = MachineConfig::builder("base").build().unwrap();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        let expected = base.fingerprint();
        for _ in 0..3 {
            assert_eq!(
                MachineConfig::builder("anything")
                    .build()
                    .unwrap()
                    .fingerprint(),
                expected
            );
        }
    }
}
