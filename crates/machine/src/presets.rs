//! Machine presets from the paper's taxonomy (§2) and evaluation (§4).

use crate::config::{FunctionalUnit, MachineConfig};
use supersym_isa::{ClassTable, InstrClass};

/// The base machine (§2.1): one instruction per cycle, every operation
/// latency one cycle, parallelism required to fully utilize = 1.
#[must_use]
pub fn base() -> MachineConfig {
    MachineConfig::builder("base")
        .build()
        .expect("base preset is valid")
}

/// An ideal superscalar machine of degree `n` (§2.3): `n` instructions per
/// cycle, unit latencies, no class conflicts.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn ideal_superscalar(n: u32) -> MachineConfig {
    MachineConfig::builder(format!("superscalar({n})"))
        .issue_width(n)
        .build()
        .expect("superscalar preset is valid")
}

/// A VLIW machine of degree `n` (§2.3.1). "In terms of run time exploitation
/// of instruction-level parallelism, the superscalar and VLIW will have
/// similar characteristics" — the timing description is the superscalar one.
#[must_use]
pub fn vliw(n: u32) -> MachineConfig {
    let mut builder = MachineConfig::builder(format!("vliw({n})"));
    builder.issue_width(n);
    builder.build().expect("vliw preset is valid")
}

/// A superpipelined machine of degree `m` (§2.4): one instruction per
/// (machine) cycle, the machine cycle is `1/m` base cycles, and simple
/// operations take `m` machine cycles.
///
/// # Panics
///
/// Panics if `m` is zero.
#[must_use]
pub fn superpipelined(m: u32) -> MachineConfig {
    MachineConfig::builder(format!("superpipelined({m})"))
        .pipe_degree(m)
        .scale_latencies(m)
        .build()
        .expect("superpipelined preset is valid")
}

/// A superpipelined superscalar machine of degree `(n, m)` (§2.5).
#[must_use]
pub fn superpipelined_superscalar(n: u32, m: u32) -> MachineConfig {
    MachineConfig::builder(format!("superpipelined-superscalar({n},{m})"))
        .issue_width(n)
        .pipe_degree(m)
        .scale_latencies(m)
        .build()
        .expect("superpipelined-superscalar preset is valid")
}

/// An underpipelined machine whose cycle time is twice the base machine's
/// (Figure 2-2): the whole machine runs at half rate. Modeled as a base
/// machine whose every cycle costs two base cycles (pipe degree handled by
/// reporting: latencies doubled, issue every other slot via issue latency 2).
#[must_use]
pub fn underpipelined_slow_cycle() -> MachineConfig {
    let mut builder = MachineConfig::builder("underpipelined (cycle = 2x)");
    builder.pipe_degree(1).scale_latencies(2);
    for class in InstrClass::ALL {
        builder.functional_unit(FunctionalUnit::new(class.mnemonic(), vec![class], 1, 2));
    }
    builder.build().expect("underpipelined preset is valid")
}

/// An underpipelined machine that issues an instruction only every other
/// cycle (Figure 2-3), like loads on the Berkeley RISC II. Modeled as a
/// single universal functional unit with issue latency 2, so *every*
/// instruction occupies the issue stage for two cycles.
#[must_use]
pub fn underpipelined_half_issue() -> MachineConfig {
    let mut builder = MachineConfig::builder("underpipelined (issue < 1 per cycle)");
    builder.functional_unit(FunctionalUnit::new(
        "universal",
        InstrClass::ALL.to_vec(),
        1,
        2,
    ));
    builder.build().expect("underpipelined preset is valid")
}

/// Operation latencies of the DECWRL MultiTitan, per Table 2-1: ALU 1,
/// loads/stores/branches 2, floating point 3 ("The MultiTitan is therefore a
/// slightly superpipelined machine", §2.7).
#[must_use]
pub fn multititan_latencies() -> ClassTable<u32> {
    ClassTable::from_fn(|class| match class {
        InstrClass::Logical | InstrClass::Shift | InstrClass::IntAdd | InstrClass::Compare => 1,
        InstrClass::IntMul => 3,
        InstrClass::IntDiv => 12,
        InstrClass::Load | InstrClass::Store | InstrClass::Branch | InstrClass::Jump => 2,
        InstrClass::FpAdd | InstrClass::FpMul | InstrClass::FpCvt => 3,
        InstrClass::FpDiv => 12,
    })
}

/// The MultiTitan: single issue, the latencies of [`multititan_latencies`].
#[must_use]
pub fn multititan() -> MachineConfig {
    MachineConfig::builder("MultiTitan")
        .latencies(multititan_latencies())
        .build()
        .expect("MultiTitan preset is valid")
}

/// Operation latencies of the CRAY-1, per Table 2-1: logical 1, shift 2,
/// add/sub 3, load 11, store 1, branch 3, FP 7.
///
/// Classes the table does not list (integer multiply/divide, FP divide,
/// converts, jumps) are given CRAY-1-plausible values; they are rare and do
/// not affect the Table 2-1 metric, which uses the paper's seven-row
/// frequency breakdown.
#[must_use]
pub fn cray1_latencies() -> ClassTable<u32> {
    ClassTable::from_fn(|class| match class {
        InstrClass::Logical => 1,
        InstrClass::Shift => 2,
        InstrClass::IntAdd | InstrClass::Compare => 3,
        InstrClass::IntMul => 7,
        InstrClass::IntDiv => 20,
        InstrClass::Load => 11,
        InstrClass::Store => 1,
        InstrClass::Branch | InstrClass::Jump => 3,
        InstrClass::FpAdd | InstrClass::FpMul => 7,
        InstrClass::FpDiv => 25,
        InstrClass::FpCvt => 2,
    })
}

/// The CRAY-1 latency model: single issue, latencies of [`cray1_latencies`].
///
/// Used for Figure 4-4: "We simulated the performance of the CRAY-1 assuming
/// single cycle functional unit latency and actual functional unit
/// latencies."
#[must_use]
pub fn cray1() -> MachineConfig {
    MachineConfig::builder("CRAY-1")
        .latencies(cray1_latencies())
        .build()
        .expect("CRAY-1 preset is valid")
}

/// A degree-`n` superscalar with **class conflicts** (§2.3.2): only the
/// register ports, busses and decode are duplicated; the functional units
/// are not. Loads/stores share one memory port, all FP shares one unit, and
/// one each of the integer units exists.
#[must_use]
pub fn superscalar_with_class_conflicts(n: u32) -> MachineConfig {
    let mut builder = MachineConfig::builder(format!("superscalar({n}) with class conflicts"));
    builder
        .issue_width(n)
        .functional_unit(FunctionalUnit::new(
            "alu",
            vec![
                InstrClass::Logical,
                InstrClass::Shift,
                InstrClass::IntAdd,
                InstrClass::Compare,
            ],
            1,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "imuldiv",
            vec![InstrClass::IntMul, InstrClass::IntDiv],
            1,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "mem",
            vec![InstrClass::Load, InstrClass::Store],
            1,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "ctrl",
            vec![InstrClass::Branch, InstrClass::Jump],
            1,
            1,
        ))
        .functional_unit(FunctionalUnit::new(
            "fp",
            vec![
                InstrClass::FpAdd,
                InstrClass::FpMul,
                InstrClass::FpDiv,
                InstrClass::FpCvt,
            ],
            1,
            1,
        ));
    builder.build().expect("class-conflict preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_machine_definition() {
        let config = base();
        assert_eq!(config.issue_width(), 1);
        assert_eq!(config.pipe_degree(), 1);
        assert_eq!(config.required_parallelism(), 1);
        for class in InstrClass::ALL {
            assert_eq!(config.latency(class), 1);
        }
    }

    #[test]
    fn superscalar_needs_n() {
        assert_eq!(ideal_superscalar(3).required_parallelism(), 3);
        assert_eq!(ideal_superscalar(8).issue_width(), 8);
    }

    #[test]
    fn superpipelined_needs_m() {
        let sp3 = superpipelined(3);
        assert_eq!(sp3.required_parallelism(), 3);
        assert_eq!(sp3.latency(InstrClass::IntAdd), 3);
        assert_eq!(sp3.base_cycles(9), 3.0);
    }

    #[test]
    fn ssp_needs_nm() {
        let ssp = superpipelined_superscalar(2, 2);
        assert_eq!(ssp.required_parallelism(), 4);
    }

    #[test]
    fn vliw_matches_superscalar_timing() {
        let v = vliw(4);
        let s = ideal_superscalar(4);
        assert_eq!(v.issue_width(), s.issue_width());
        assert_eq!(v.pipe_degree(), s.pipe_degree());
    }

    #[test]
    fn multititan_table_2_1_latencies() {
        let lat = multititan_latencies();
        assert_eq!(lat[InstrClass::Logical], 1);
        assert_eq!(lat[InstrClass::Shift], 1);
        assert_eq!(lat[InstrClass::IntAdd], 1);
        assert_eq!(lat[InstrClass::Load], 2);
        assert_eq!(lat[InstrClass::Store], 2);
        assert_eq!(lat[InstrClass::Branch], 2);
        assert_eq!(lat[InstrClass::FpAdd], 3);
    }

    #[test]
    fn cray1_table_2_1_latencies() {
        let lat = cray1_latencies();
        assert_eq!(lat[InstrClass::Logical], 1);
        assert_eq!(lat[InstrClass::Shift], 2);
        assert_eq!(lat[InstrClass::IntAdd], 3);
        assert_eq!(lat[InstrClass::Load], 11);
        assert_eq!(lat[InstrClass::Store], 1);
        assert_eq!(lat[InstrClass::Branch], 3);
        assert_eq!(lat[InstrClass::FpAdd], 7);
    }

    #[test]
    fn class_conflict_machine_shares_units() {
        let config = superscalar_with_class_conflicts(4);
        assert_eq!(config.issue_width(), 4);
        assert_eq!(
            config.unit_of(InstrClass::Load),
            config.unit_of(InstrClass::Store)
        );
        assert_eq!(
            config.unit_of(InstrClass::FpAdd),
            config.unit_of(InstrClass::FpMul)
        );
        assert_ne!(
            config.unit_of(InstrClass::Load),
            config.unit_of(InstrClass::FpAdd)
        );
    }

    #[test]
    fn underpipelined_machines() {
        let slow = underpipelined_slow_cycle();
        assert_eq!(slow.latency(InstrClass::IntAdd), 2);
        let half = underpipelined_half_issue();
        assert_eq!(half.functional_units().len(), 1);
        assert_eq!(half.functional_units()[0].issue_latency(), 2);
    }

    #[test]
    fn supersymmetry_required_parallelism() {
        // §2.7: superscalar and superpipelined machines of equal degree need
        // the same available parallelism.
        for degree in 1..=8 {
            assert_eq!(
                ideal_superscalar(degree).required_parallelism(),
                superpipelined(degree).required_parallelism()
            );
        }
    }
}
