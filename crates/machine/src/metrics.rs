//! The *average degree of superpipelining* metric (Table 2-1) and the
//! utilization-requirement grid (Figure 4-3).

use crate::config::MachineConfig;
use supersym_isa::{ClassCensus, ClassFreq, ClassTable, InstrClass};

/// The paper's Table 2-1 instruction-class frequency breakdown:
/// logical 10%, shift 10%, add/sub 20%, load 20%, store 15%, branch 15%,
/// FP 10% (assigned to the FP-add class; the table has a single FP row).
#[must_use]
pub fn paper_frequencies() -> ClassTable<ClassFreq> {
    ClassTable::from_fn(|class| {
        let fraction = match class {
            InstrClass::Logical | InstrClass::Shift => 0.10,
            InstrClass::IntAdd | InstrClass::Load => 0.20,
            InstrClass::Store | InstrClass::Branch => 0.15,
            InstrClass::FpAdd => 0.10,
            _ => 0.0,
        };
        ClassFreq::new(fraction)
    })
}

/// Computes the **average degree of superpipelining** (§2.7): the
/// frequency-weighted mean operation latency,
/// `sum over classes of frequency * latency`.
///
/// "If we multiply the latency of each instruction class by the frequency we
/// observe for that instruction class when we perform our benchmark set, we
/// get the average degree of superpipelining."
///
/// ```
/// use supersym_machine::{average_degree_of_superpipelining, paper_frequencies, presets};
///
/// let multititan = average_degree_of_superpipelining(
///     presets::multititan().latencies(),
///     &paper_frequencies(),
/// );
/// assert!((multititan - 1.7).abs() < 1e-9); // Table 2-1
///
/// let cray1 = average_degree_of_superpipelining(
///     presets::cray1().latencies(),
///     &paper_frequencies(),
/// );
/// assert!((cray1 - 4.4).abs() < 1e-9); // Table 2-1
/// ```
#[must_use]
pub fn average_degree_of_superpipelining(
    latencies: &ClassTable<u32>,
    frequencies: &ClassTable<ClassFreq>,
) -> f64 {
    InstrClass::ALL
        .iter()
        .map(|&class| frequencies[class].fraction() * f64::from(latencies[class]))
        .sum()
}

/// Convenience: the metric computed from a measured dynamic [`ClassCensus`]
/// instead of a fixed frequency table.
#[must_use]
pub fn average_degree_from_census(latencies: &ClassTable<u32>, census: &ClassCensus) -> f64 {
    average_degree_of_superpipelining(latencies, &census.frequencies())
}

/// One cell of the Figure 4-3 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UtilizationCell {
    /// Instructions issued per cycle (superscalar degree, X axis).
    pub issue_width: u32,
    /// Cycles per operation (superpipelining degree, Y axis).
    pub pipe_degree: u32,
    /// Instruction-level parallelism required for full utilization (`n*m`).
    pub required_parallelism: u32,
}

/// The Figure 4-3 grid: "the X dimension is the degree of superscalar
/// machine, and the Y dimension is the degree of superpipelining"; each cell
/// holds the parallelism required for full utilization.
///
/// Cells are returned row-major, `pipe_degree` = 1..=`max_m` (outer),
/// `issue_width` = 1..=`max_n` (inner).
#[must_use]
pub fn utilization_grid(max_n: u32, max_m: u32) -> Vec<UtilizationCell> {
    let mut cells = Vec::with_capacity((max_n * max_m) as usize);
    for m in 1..=max_m {
        for n in 1..=max_n {
            cells.push(UtilizationCell {
                issue_width: n,
                pipe_degree: m,
                required_parallelism: n * m,
            });
        }
    }
    cells
}

/// Places a machine on the Figure 4-3 superpipelining axis: its average
/// degree of superpipelining under the given frequency mix, measured in the
/// machine's own cycles (the paper marks the CRAY-1 at 4.4 this way).
#[must_use]
pub fn superpipelining_axis_position(
    config: &MachineConfig,
    frequencies: &ClassTable<ClassFreq>,
) -> f64 {
    average_degree_of_superpipelining(config.latencies(), frequencies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn paper_frequencies_sum_to_one() {
        let freqs = paper_frequencies();
        let sum: f64 = InstrClass::ALL.iter().map(|&c| freqs[c].fraction()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_2_1_multititan() {
        let metric = average_degree_of_superpipelining(
            presets::multititan().latencies(),
            &paper_frequencies(),
        );
        assert!((metric - 1.7).abs() < 1e-9, "got {metric}");
    }

    #[test]
    fn table_2_1_cray1() {
        let metric =
            average_degree_of_superpipelining(presets::cray1().latencies(), &paper_frequencies());
        assert!((metric - 4.4).abs() < 1e-9, "got {metric}");
    }

    #[test]
    fn base_machine_degree_is_one() {
        let metric =
            average_degree_of_superpipelining(presets::base().latencies(), &paper_frequencies());
        assert!((metric - 1.0).abs() < 1e-12);
    }

    #[test]
    fn census_variant_matches_table_variant() {
        // A census with the paper's exact proportions (out of 100).
        let mut census = ClassCensus::new();
        let counts = [
            (InstrClass::Logical, 10),
            (InstrClass::Shift, 10),
            (InstrClass::IntAdd, 20),
            (InstrClass::Load, 20),
            (InstrClass::Store, 15),
            (InstrClass::Branch, 15),
            (InstrClass::FpAdd, 10),
        ];
        for (class, n) in counts {
            for _ in 0..n {
                census.record(class);
            }
        }
        let metric = average_degree_from_census(presets::multititan().latencies(), &census);
        assert!((metric - 1.7).abs() < 1e-9);
    }

    #[test]
    fn grid_shape_and_values() {
        let grid = utilization_grid(5, 5);
        assert_eq!(grid.len(), 25);
        assert_eq!(grid[0].required_parallelism, 1);
        let cell_2_2 = grid
            .iter()
            .find(|c| c.issue_width == 2 && c.pipe_degree == 2)
            .unwrap();
        // §4.2: "a superpipelined superscalar machine of only degree (2,2)
        // would require an instruction-level parallelism of 4".
        assert_eq!(cell_2_2.required_parallelism, 4);
        let corner = grid.last().unwrap();
        assert_eq!(corner.required_parallelism, 25);
    }

    #[test]
    fn axis_position_of_superpipelined_machine_is_its_degree() {
        let sp2 = presets::superpipelined(2);
        let pos = superpipelining_axis_position(&sp2, &paper_frequencies());
        assert!((pos - 2.0).abs() < 1e-12);
        let cray = superpipelining_axis_position(&presets::cray1(), &paper_frequencies());
        assert!((cray - 4.4).abs() < 1e-9);
    }
}
