//! # supersym-machine
//!
//! Parameterizable machine descriptions for the supersym system.
//!
//! The paper (§3): "we gave the system an interface that allowed us to alter
//! the characteristics of the target machine. This interface allows us to
//! specify details about the pipeline, functional units, cache, and register
//! set." A [`MachineConfig`] is exactly that interface: per-class operation
//! latencies, functional units with issue latency and multiplicity, an
//! issue-width limit, the superpipelining degree, and the register-file
//! split. The pipeline scheduler (`supersym-codegen`) and the timing
//! simulator (`supersym-sim`) both read the same description.
//!
//! The [`presets`] module provides the machines discussed in the paper: the
//! base machine (§2.1), underpipelined machines (§2.2), ideal superscalar
//! machines of degree *n* (§2.3), superpipelined machines of degree *m*
//! (§2.4), superpipelined superscalars (§2.5), and latency models for the
//! MultiTitan and the CRAY-1 (Table 2-1).
//!
//! ## Example
//!
//! ```
//! use supersym_machine::presets;
//!
//! let base = presets::base();
//! assert_eq!(base.issue_width(), 1);
//! assert_eq!(base.pipe_degree(), 1);
//!
//! let ss3 = presets::ideal_superscalar(3);
//! assert_eq!(ss3.issue_width(), 3);
//!
//! let sp3 = presets::superpipelined(3);
//! assert_eq!(sp3.pipe_degree(), 3);
//! // Both require the same instruction-level parallelism to fully utilize:
//! assert_eq!(ss3.required_parallelism(), sp3.required_parallelism());
//! ```

mod config;
pub mod grid;
mod metrics;
pub mod presets;
mod spec;

pub use config::{
    FunctionalUnit, MachineConfig, MachineConfigBuilder, MachineError, RegisterSplit,
};
pub use grid::{FuModel, GridCell, GridError, GridSpec, LatModel, SplitModel, MAX_GRID_CELLS};
pub use metrics::{
    average_degree_from_census, average_degree_of_superpipelining, paper_frequencies,
    superpipelining_axis_position, utilization_grid, UtilizationCell,
};
pub use spec::{parse_machine_spec, MachineSpec, SpecError, UnitSpec};
