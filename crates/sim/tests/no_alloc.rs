//! The hot simulation loop must not allocate per dynamic instruction.
//!
//! Strategy: install a counting global allocator, then simulate two
//! programs that are *statically identical* — they differ only in a loop
//! trip-count immediate — so every allocation on the per-run path
//! (executor state, timing tables, report assembly) is the same for both.
//! If the per-instruction path allocated anything, the run that executes
//! ~100× more dynamic instructions would allocate more. The counts must be
//! exactly equal.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use supersym_isa::{AsmBuilder, IntReg, Program};
use supersym_machine::presets;
use supersym_sim::{simulate, simulate_with_sink, MetricsSink, SimOptions};
use supersym_trace::{NullSink, TimelineSink};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted_loop(iters: i64) -> Program {
    let mut asm = AsmBuilder::new("main");
    let r = |i: u8| IntReg::new(i).unwrap();
    let top = asm.new_label();
    asm.movi(r(1), iters);
    asm.movi(r(3), 0);
    asm.bind(top);
    asm.add(r(3), r(3), 2.into());
    asm.sub(r(1), r(1), 1.into());
    asm.cmp_gt(r(2), r(1), 0.into());
    asm.br_true(r(2), top);
    asm.halt();
    asm.finish_program()
}

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

#[test]
fn simulate_allocates_nothing_per_instruction() {
    let short = counted_loop(10);
    let long = counted_loop(1000);
    let config = presets::ideal_superscalar(4);

    // Warm up once so lazy one-time initialization doesn't skew the counts.
    simulate(&short, &config, SimOptions::default()).unwrap();

    let (report_short, allocs_short) =
        allocations_during(|| simulate(&short, &config, SimOptions::default()).unwrap());
    let (report_long, allocs_long) =
        allocations_during(|| simulate(&long, &config, SimOptions::default()).unwrap());

    // Sanity: the long run really does ~100× the dynamic work.
    assert!(report_long.instructions() > 50 * report_short.instructions());
    // Both reports see a conserved cycle account.
    assert!(report_short.cycle_account().conserved());
    assert!(report_long.cycle_account().conserved());

    assert_eq!(
        allocs_short,
        allocs_long,
        "simulate allocated per dynamic instruction: \
         {allocs_short} allocations for {} instructions vs \
         {allocs_long} for {}",
        report_short.instructions(),
        report_long.instructions(),
    );
}

#[test]
fn block_cache_replay_allocates_nothing_once_warmed() {
    // The block timing cache allocates while recording variants (cold
    // traces only); once every hot trace is recorded, bulk replay must be
    // allocation-free. The two programs record identical variants, so the
    // 100× replay traffic of the long run must not change the count.
    let short = counted_loop(1_000);
    let long = counted_loop(100_000);
    let config = presets::ideal_superscalar(4);
    let cached = SimOptions::default();
    assert!(cached.block_cache, "block cache is on by default");

    simulate(&short, &config, cached).unwrap();

    let (report_short, allocs_short) =
        allocations_during(|| simulate(&short, &config, cached).unwrap());
    let (report_long, allocs_long) =
        allocations_during(|| simulate(&long, &config, cached).unwrap());

    // Sanity: the replay path really served the long run's extra work.
    let stats = report_long.block_cache_stats();
    assert!(stats.hits > report_short.block_cache_stats().hits);
    assert!(
        stats.replayed_instructions > report_long.instructions() / 2,
        "replay served too little of the run: {stats:?}"
    );

    assert_eq!(
        allocs_short,
        allocs_long,
        "warmed block-cache replay allocated per dynamic instruction: \
         {allocs_short} allocations for {} instructions vs \
         {allocs_long} for {}",
        report_short.instructions(),
        report_long.instructions(),
    );
}

#[test]
fn sink_off_paths_allocate_nothing_per_instruction() {
    // Observability off must cost one branch, not an allocation: both the
    // timeline-off path (NullSink) and the metrics path (MetricsSink is a
    // pair of fixed-size histograms) must allocate identically regardless
    // of dynamic instruction count.
    let short = counted_loop(10);
    let long = counted_loop(1000);
    let config = presets::ideal_superscalar(4);

    simulate_with_sink(&short, &config, SimOptions::default(), &mut NullSink).unwrap();

    let (_, null_short) = allocations_during(|| {
        simulate_with_sink(&short, &config, SimOptions::default(), &mut NullSink).unwrap()
    });
    let (_, null_long) = allocations_during(|| {
        simulate_with_sink(&long, &config, SimOptions::default(), &mut NullSink).unwrap()
    });
    assert_eq!(
        null_short, null_long,
        "NullSink path allocated per dynamic instruction"
    );

    let (_, metrics_short) = allocations_during(|| {
        let mut sink = MetricsSink::new();
        simulate_with_sink(&short, &config, SimOptions::default(), &mut sink).unwrap();
        sink.finish();
    });
    let (_, metrics_long) = allocations_during(|| {
        let mut sink = MetricsSink::new();
        simulate_with_sink(&long, &config, SimOptions::default(), &mut sink).unwrap();
        sink.finish();
    });
    assert_eq!(
        metrics_short, metrics_long,
        "MetricsSink recorded with per-instruction allocations"
    );
}

#[test]
fn timeline_on_and_off_produce_identical_cycle_accounts() {
    // The timeline sink observes the issue stream; it must not perturb
    // timing. Differential check on the full per-cause account.
    let program = counted_loop(200);
    for config in [
        presets::ideal_superscalar(4),
        presets::base(),
        presets::cray1(),
    ] {
        let plain = simulate(&program, &config, SimOptions::default()).unwrap();
        let mut sink = TimelineSink::new(Vec::new());
        let timed =
            simulate_with_sink(&program, &config, SimOptions::default(), &mut sink).unwrap();
        sink.finish().unwrap();
        assert_eq!(plain.cycle_account(), timed.cycle_account());
        assert_eq!(plain.machine_cycles(), timed.machine_cycles());
        assert_eq!(plain.instructions(), timed.instructions());
    }
}
