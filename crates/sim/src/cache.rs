//! Cache simulation and the §5.1 cache-miss cost model.
//!
//! "Cache performance is becoming increasingly important, and it can have a
//! dramatic effect on speedups obtained from parallel instruction execution"
//! (§5.1). The paper's Table 5-1 is an analytic model ([`MissCostRow`]); the
//! [`Cache`]/[`CacheSystem`] simulator supplies measured miss ratios so the
//! same analysis can be run against our benchmarks.

use std::fmt;

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total number of lines.
    pub lines: usize,
    /// Words per line (the machine is word-addressed).
    pub words_per_line: usize,
    /// Set associativity (1 = direct mapped).
    pub associativity: usize,
}

impl CacheConfig {
    /// A small direct-mapped cache: 256 lines of 4 words (8 KiB with 8-byte
    /// words) — mid-1980s workstation scale, per the paper's era.
    #[must_use]
    pub fn small_direct() -> Self {
        CacheConfig {
            lines: 256,
            words_per_line: 4,
            associativity: 1,
        }
    }

    /// A larger two-way cache (64 KiB).
    #[must_use]
    pub fn large_two_way() -> Self {
        CacheConfig {
            lines: 2048,
            words_per_line: 4,
            associativity: 2,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (zero for an unused cache).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

/// A set-associative cache with LRU replacement.
///
/// ```
/// use supersym_sim::{Cache, CacheConfig};
/// let mut cache = Cache::new(CacheConfig { lines: 2, words_per_line: 1, associativity: 1 });
/// assert!(!cache.access(0)); // cold miss
/// assert!(cache.access(0));  // hit
/// assert!(!cache.access(2)); // conflict-maps to set 0, evicts
/// assert!(!cache.access(0)); // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero lines/words/ways or
    /// associativity not dividing the line count).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.lines > 0 && config.words_per_line > 0 && config.associativity > 0);
        assert!(
            config.lines.is_multiple_of(config.associativity),
            "associativity must divide line count"
        );
        let n_sets = config.lines / config.associativity;
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.associativity); n_sets],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses a word address; returns `true` on hit. Misses fill the line.
    pub fn access(&mut self, word_addr: u64) -> bool {
        let line = word_addr / self.config.words_per_line as u64;
        let n_sets = self.sets.len() as u64;
        let set_index = (line % n_sets) as usize;
        let tag = line / n_sets;
        let set = &mut self.sets[set_index];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            if set.len() == self.config.associativity {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A split instruction/data cache pair.
#[derive(Debug, Clone)]
pub struct CacheSystem {
    icache: Cache,
    dcache: Cache,
}

impl CacheSystem {
    /// Creates a split I/D cache system.
    #[must_use]
    pub fn new(icache: CacheConfig, dcache: CacheConfig) -> Self {
        CacheSystem {
            icache: Cache::new(icache),
            dcache: Cache::new(dcache),
        }
    }

    /// Records an instruction fetch; returns `true` on hit.
    pub fn fetch(&mut self, instr_addr: u64) -> bool {
        self.icache.access(instr_addr)
    }

    /// Records a data access; returns `true` on hit.
    pub fn data(&mut self, word_addr: u64) -> bool {
        self.dcache.access(word_addr)
    }

    /// Instruction-cache counters.
    #[must_use]
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// Data-cache counters.
    #[must_use]
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Total misses per executed instruction, given the executed count.
    #[must_use]
    pub fn misses_per_instruction(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        (self.icache.stats().misses + self.dcache.stats().misses) as f64 / instructions as f64
    }
}

/// One row of the paper's Table 5-1: the cost of a cache miss on a machine
/// described by its CPI, cycle time and memory access time.
///
/// ```
/// use supersym_sim::MissCostRow;
/// // Table 5-1, WRL Titan row: 1.4 cpi, 45ns cycle, 540ns memory.
/// let titan = MissCostRow::new("WRL Titan", 1.4, 45.0, 540.0);
/// assert_eq!(titan.miss_cost_cycles(), 12.0);
/// assert!((titan.miss_cost_instructions() - 8.57).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MissCostRow {
    machine: String,
    cycles_per_instr: f64,
    cycle_ns: f64,
    mem_ns: f64,
}

impl MissCostRow {
    /// Creates a row from machine parameters.
    #[must_use]
    pub fn new(
        machine: impl Into<String>,
        cycles_per_instr: f64,
        cycle_ns: f64,
        mem_ns: f64,
    ) -> Self {
        MissCostRow {
            machine: machine.into(),
            cycles_per_instr,
            cycle_ns,
            mem_ns,
        }
    }

    /// The machine's name.
    #[must_use]
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cycles_per_instr(&self) -> f64 {
        self.cycles_per_instr
    }

    /// Cycle time in nanoseconds.
    #[must_use]
    pub fn cycle_ns(&self) -> f64 {
        self.cycle_ns
    }

    /// Main-memory access time in nanoseconds.
    #[must_use]
    pub fn mem_ns(&self) -> f64 {
        self.mem_ns
    }

    /// Miss cost in cycles: memory time over cycle time.
    #[must_use]
    pub fn miss_cost_cycles(&self) -> f64 {
        self.mem_ns / self.cycle_ns
    }

    /// Miss cost in *instruction times*: the metric the paper uses to show
    /// the trend ("a cache miss on a VAX 11/780 only costs 60% of the
    /// average instruction execution ... the WRL Titan ... almost ten
    /// instruction times").
    #[must_use]
    pub fn miss_cost_instructions(&self) -> f64 {
        self.miss_cost_cycles() / self.cycles_per_instr
    }

    /// The paper's three Table 5-1 rows.
    #[must_use]
    pub fn table_5_1() -> Vec<MissCostRow> {
        vec![
            MissCostRow::new("VAX 11/780", 10.0, 200.0, 1200.0),
            MissCostRow::new("WRL Titan", 1.4, 45.0, 540.0),
            MissCostRow::new("hypothetical superscalar", 0.5, 5.0, 350.0),
        ]
    }
}

/// The §5.1 dilution argument: speedup from multi-issue when cache-miss CPI
/// is present. Returns `(speedup_without_misses, speedup_with_misses)`.
///
/// "Consider a 2.0cpi machine, where 1.0cpi is from issuing one instruction
/// per cycle, and 1.0cpi is cache miss burden. Now assume the machine is
/// given the capability to issue three instructions per cycle, to get a net
/// decrease down to 0.5cpi for issuing instructions ... the overall
/// performance improvement will be from 1/2.0cpi to 1/1.5cpi, or 33%."
#[must_use]
pub fn issue_speedup_with_miss_burden(
    issue_cpi_before: f64,
    issue_cpi_after: f64,
    miss_cpi: f64,
) -> (f64, f64) {
    let without = issue_cpi_before / issue_cpi_after;
    let with = (issue_cpi_before + miss_cpi) / (issue_cpi_after + miss_cpi);
    (without, with)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut cache = Cache::new(CacheConfig {
            lines: 4,
            words_per_line: 1,
            associativity: 1,
        });
        assert!(!cache.access(0));
        assert!(!cache.access(4)); // same set, evicts 0
        assert!(!cache.access(0)); // thrash
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut cache = Cache::new(CacheConfig {
            lines: 4,
            words_per_line: 1,
            associativity: 2,
        });
        assert!(!cache.access(0));
        assert!(!cache.access(2)); // same set (2 sets), second way
        assert!(cache.access(0)); // still resident
        assert!(cache.access(2));
    }

    #[test]
    fn lru_replacement() {
        let mut cache = Cache::new(CacheConfig {
            lines: 2,
            words_per_line: 1,
            associativity: 2,
        });
        cache.access(0);
        cache.access(2);
        cache.access(0); // 0 is MRU
        cache.access(4); // evicts LRU = 2
        assert!(cache.access(0));
        assert!(!cache.access(2));
    }

    #[test]
    fn line_granularity() {
        let mut cache = Cache::new(CacheConfig {
            lines: 4,
            words_per_line: 4,
            associativity: 1,
        });
        assert!(!cache.access(0));
        assert!(cache.access(1)); // same line
        assert!(cache.access(3));
        assert!(!cache.access(4)); // next line
    }

    #[test]
    fn sequential_scan_miss_rate() {
        let mut cache = Cache::new(CacheConfig::small_direct());
        for addr in 0..4096_u64 {
            cache.access(addr);
        }
        let rate = cache.stats().miss_rate();
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}"); // one miss per 4-word line
    }

    #[test]
    fn table_5_1_values() {
        let rows = MissCostRow::table_5_1();
        // VAX 11/780: miss costs 6 cycles = 0.6 instruction times.
        assert_eq!(rows[0].miss_cost_cycles(), 6.0);
        assert!((rows[0].miss_cost_instructions() - 0.6).abs() < 1e-12);
        // Titan: 12 cycles, ~8.6 instructions.
        assert_eq!(rows[1].miss_cost_cycles(), 12.0);
        assert!((rows[1].miss_cost_instructions() - 8.571).abs() < 0.01);
        // Future superscalar: 70 cycles, 140 instructions.
        assert_eq!(rows[2].miss_cost_cycles(), 70.0);
        assert_eq!(rows[2].miss_cost_instructions(), 140.0);
    }

    #[test]
    fn section_5_1_dilution() {
        let (without, with) = issue_speedup_with_miss_burden(1.0, 0.5, 1.0);
        assert!((without - 2.0).abs() < 1e-12); // 100% improvement
        assert!((with - 4.0 / 3.0).abs() < 1e-12); // 33% improvement
    }

    #[test]
    fn cache_system_split_counters() {
        let mut system = CacheSystem::new(CacheConfig::small_direct(), CacheConfig::small_direct());
        system.fetch(0);
        system.fetch(0);
        system.data(100);
        assert_eq!(system.icache_stats().accesses, 2);
        assert_eq!(system.icache_stats().misses, 1);
        assert_eq!(system.dcache_stats().misses, 1);
        assert!((system.misses_per_instruction(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "associativity must divide")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            lines: 3,
            words_per_line: 1,
            associativity: 2,
        });
    }
}
