//! Oracle ILP-limit analysis, after the studies the paper builds on.
//!
//! §4.2 opens: "Studies dating from the late 1960's and early 1970's
//! [14, 15] and continuing today have observed average instruction-level
//! parallelism of around 2 for code without loop unrolling." Those studies
//! (Tjaden & Flynn 1970; Riseman & Foster 1972) measured *limits*: how fast
//! could a trace execute with unlimited functional units and single-cycle
//! operations, constrained only by true dependences — and, in Riseman &
//! Foster's famous result, how conditional jumps inhibit that parallelism
//! (≈2 with branches as barriers, over 50 with unlimited speculation).
//!
//! [`DataflowLimit`] replays a dynamic instruction stream under that oracle
//! model: every instruction takes one cycle, registers are renamed (WAW and
//! WAR vanish), issue width is unbounded. Options control whether
//! conditional branches act as barriers and whether store→load dependences
//! through memory are honored.

use crate::exec::{ControlEvent, StepInfo};
use supersym_isa::{InstrClass, Reg};

/// Which constraints the oracle honors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitOptions {
    /// Conditional branches are barriers: no later instruction may execute
    /// before the branch resolves (Riseman & Foster's "conditional jumps"
    /// regime). With `false`, control is perfectly speculated.
    pub branch_barriers: bool,
    /// Loads wait for the store that produced their value (true dependences
    /// through memory). With `false`, memory is perfectly disambiguated
    /// *and renamed*.
    pub memory_dependences: bool,
}

impl LimitOptions {
    /// The Riseman/Foster-style limit: real control, real memory flow.
    #[must_use]
    pub fn with_branch_barriers() -> Self {
        LimitOptions {
            branch_barriers: true,
            memory_dependences: true,
        }
    }

    /// Perfect branch speculation, true memory dependences only — the
    /// upper bound the paper's contemporaries chased.
    #[must_use]
    pub fn speculative() -> Self {
        LimitOptions {
            branch_barriers: false,
            memory_dependences: true,
        }
    }

    /// Pure register dataflow.
    #[must_use]
    pub fn dataflow_only() -> Self {
        LimitOptions {
            branch_barriers: false,
            memory_dependences: false,
        }
    }
}

/// The oracle analyzer. Feed it the same [`StepInfo`] stream an
/// [`Executor`](crate::Executor) produces.
///
/// ```
/// use supersym_sim::{DataflowLimit, LimitOptions};
/// let limit = DataflowLimit::new(LimitOptions::speculative(), 64);
/// assert_eq!(limit.instructions(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DataflowLimit {
    options: LimitOptions,
    /// Cycle at which each register's current value was produced.
    reg_time: [u64; Reg::DENSE_SPACE],
    /// Cycle at which each memory word's current value was stored.
    mem_time: Vec<u64>,
    /// Cycle of the latest controlling branch.
    control_time: u64,
    /// Critical-path height of the trace so far.
    height: u64,
    instructions: u64,
}

impl DataflowLimit {
    /// Creates an analyzer able to track `memory_words` of memory.
    #[must_use]
    pub fn new(options: LimitOptions, memory_words: usize) -> Self {
        DataflowLimit {
            options,
            reg_time: [0; Reg::DENSE_SPACE],
            mem_time: vec![0; memory_words],
            control_time: 0,
            height: 0,
            instructions: 0,
        }
    }

    /// Observes one executed instruction; returns the cycle the oracle
    /// executes it in.
    pub fn observe(&mut self, info: &StepInfo) -> u64 {
        // One cycle after every producer.
        let mut t = 0_u64;
        for reg in info.uses.iter() {
            t = t.max(self.reg_time[reg.dense_index()]);
        }
        if self.options.branch_barriers {
            t = t.max(self.control_time);
        }
        let span = info.vlen.max(1) as usize;
        if self.options.memory_dependences {
            if let Some((addr, _)) = info.mem {
                for a in addr..(addr + span).min(self.mem_time.len()) {
                    t = t.max(self.mem_time[a]);
                }
            }
        }
        let exec_at = t + 1;
        if let Some(def) = info.def {
            self.reg_time[def.dense_index()] = exec_at;
        }
        if let Some((addr, true)) = info.mem {
            if self.options.memory_dependences {
                for a in addr..(addr + span).min(self.mem_time.len()) {
                    self.mem_time[a] = exec_at;
                }
            }
        }
        if self.options.branch_barriers {
            let is_conditional = info.class == InstrClass::Branch;
            let transfers = matches!(
                info.control,
                ControlEvent::Jump | ControlEvent::Call | ControlEvent::Return
            );
            if is_conditional || transfers {
                self.control_time = self.control_time.max(exec_at);
            }
        }
        self.height = self.height.max(exec_at);
        self.instructions += 1;
        exec_at
    }

    /// Instructions observed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Critical-path height of the observed trace, in cycles.
    #[must_use]
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The limit parallelism: instructions over critical-path height.
    #[must_use]
    pub fn parallelism(&self) -> f64 {
        if self.height == 0 {
            0.0
        } else {
            self.instructions as f64 / self.height as f64
        }
    }
}

/// Convenience: runs a program functionally and measures its oracle limit.
///
/// # Errors
///
/// Propagates execution errors.
pub fn measure_limit(
    program: &supersym_isa::Program,
    options: LimitOptions,
    exec_options: crate::ExecOptions,
) -> Result<DataflowLimit, crate::SimError> {
    let mut exec = crate::Executor::new(program, exec_options)?;
    let mut limit = DataflowLimit::new(options, exec_options.memory_words);
    while let Some(info) = exec.step()? {
        limit.observe(&info);
    }
    Ok(limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecOptions;
    use supersym_isa::{AsmBuilder, IntReg};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn options_small() -> ExecOptions {
        ExecOptions {
            memory_words: 1024,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn serial_chain_has_limit_one() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 0);
        for _ in 0..20 {
            asm.add(r(1), r(1), 1.into());
        }
        asm.halt();
        let program = asm.finish_program();
        let limit =
            measure_limit(&program, LimitOptions::dataflow_only(), options_small()).unwrap();
        // 22 instructions, 21 on the critical path (movi + 20 adds).
        assert!(limit.parallelism() < 1.2, "{}", limit.parallelism());
    }

    #[test]
    fn renaming_removes_waw() {
        // Repeatedly writing r1 from r0 is fully parallel under renaming.
        let mut asm = AsmBuilder::new("main");
        for i in 0..20 {
            asm.add(r(1), IntReg::ZERO, (i as i64).into());
        }
        asm.halt();
        let program = asm.finish_program();
        let limit =
            measure_limit(&program, LimitOptions::dataflow_only(), options_small()).unwrap();
        assert!(limit.parallelism() > 15.0, "{}", limit.parallelism());
    }

    #[test]
    fn branch_barriers_inhibit() {
        // A loop of independent work: barriers serialize iterations.
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 30);
        asm.bind(top);
        asm.add(r(2), IntReg::ZERO, 5.into());
        asm.add(r(3), IntReg::ZERO, 6.into());
        asm.add(r(4), IntReg::ZERO, 7.into());
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(5), r(1), 0.into());
        asm.br_true(r(5), top);
        asm.halt();
        let program = asm.finish_program();
        let barriers = measure_limit(
            &program,
            LimitOptions::with_branch_barriers(),
            options_small(),
        )
        .unwrap();
        let speculative =
            measure_limit(&program, LimitOptions::speculative(), options_small()).unwrap();
        assert!(
            speculative.parallelism() > 1.5 * barriers.parallelism(),
            "speculative {} vs barriers {}",
            speculative.parallelism(),
            barriers.parallelism()
        );
    }

    #[test]
    fn memory_flow_respected() {
        // store then load of the same word: true dependence.
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 9);
        asm.store(r(1), IntReg::GP, 0);
        asm.load(r(2), IntReg::GP, 0);
        asm.add(r(3), r(2), 1.into());
        asm.halt();
        let program = asm.finish_program();
        let with_mem =
            measure_limit(&program, LimitOptions::speculative(), options_small()).unwrap();
        let without_mem =
            measure_limit(&program, LimitOptions::dataflow_only(), options_small()).unwrap();
        // Chain: movi -> store -> load -> add = height 4 with memory flow;
        // without it the load floats to cycle 1 (height 3: movi->store and
        // load->add in parallel... load at 1, add at 2, store at 2).
        assert!(with_mem.height() > without_mem.height());
    }

    #[test]
    fn oracle_never_slower_than_real_machine() {
        use supersym_machine::presets;
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 40);
        asm.bind(top);
        asm.load(r(2), IntReg::GP, 0);
        asm.add(r(3), r(2), 3.into());
        asm.store(r(3), IntReg::GP, 0);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(4), r(1), 0.into());
        asm.br_true(r(4), top);
        asm.halt();
        let program = asm.finish_program();
        let oracle = measure_limit(&program, LimitOptions::speculative(), options_small()).unwrap();
        let report = crate::simulate(
            &program,
            &presets::ideal_superscalar(8),
            crate::SimOptions {
                exec: options_small(),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(oracle.parallelism() >= report.available_parallelism() - 1e-9);
    }
}
