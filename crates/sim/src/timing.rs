//! The parameterizable pipeline timing model.
//!
//! Models an in-order machine described by a
//! [`MachineConfig`](supersym_machine::MachineConfig):
//!
//! * **In-order issue**, at most `issue_width` instructions per machine
//!   cycle. The paper considers only in-order machines ("We will not
//!   consider superscalar machines or any other machines that issue
//!   instructions out of order", §2.3.2).
//! * **RAW interlocks**: an instruction cannot issue until the operation
//!   latency of each producer has elapsed (§3: "If an instruction requires
//!   the result of a previous instruction, the machine will stall unless the
//!   operation latency of the previous instruction has elapsed").
//! * **Conservative WAW interlocks**: a writer waits for the previous write
//!   of the same register to complete. There is no renaming, so register
//!   reuse is a real dependence — this is what makes the compiler's
//!   temporary-register supply matter (§3: "using the same temporary
//!   register for two different values ... introduces an artificial
//!   dependency"). WAR is free because operands are read at issue.
//! * **Functional-unit reservation**: each instruction class belongs to one
//!   functional unit with a `multiplicity` and an `issue_latency` (§3).
//! * **Store-to-load interlocks** on actual word addresses.
//! * **Control**: with perfect branch prediction (the paper's default),
//!   taken branches cost nothing; otherwise the next instruction waits for
//!   the transfer to complete. Machines may also declare that a taken
//!   branch ends the cycle's issue group.
//!
//! Because issue is serialized at one instruction per machine cycle on a
//! superpipelined machine, the larger startup transient of superpipelined
//! machines (Figure 4-2) *emerges* from this model rather than being
//! hard-coded.

use crate::exec::{ControlEvent, StepInfo};
use supersym_isa::{InstrClass, Reg, NUM_CLASSES};
use supersym_machine::MachineConfig;

const NUM_REGS: usize = Reg::DENSE_SPACE;

/// Issue/completion times for one dynamic instruction, in machine cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Machine cycle the instruction issued in.
    pub issue: u64,
    /// Machine cycle its (first) result became available — the chaining
    /// point for vector instructions.
    pub complete: u64,
    /// Machine cycle the instruction fully drained (equals `complete` for
    /// scalar instructions; `complete + vlen - 1` for vector ones).
    pub drain: u64,
}

/// The pipeline timing model. Feed it the [`StepInfo`] stream produced by an
/// [`Executor`](crate::Executor).
#[derive(Debug, Clone)]
pub struct TimingModel {
    width: u32,
    pipe_degree: u32,
    perfect_branch_prediction: bool,
    taken_branch_breaks_issue: bool,
    latency: [u64; NUM_CLASSES],
    fu_of: [usize; NUM_CLASSES],
    fu_issue_latency: Vec<u64>,
    fu_slots: Vec<Vec<u64>>,
    reg_ready: [u64; NUM_REGS],
    mem_ready: Vec<u64>,
    cur_cycle: u64,
    issued_in_cycle: u32,
    control_stall_until: u64,
    last_completion: u64,
    instructions: u64,
}

impl TimingModel {
    /// Creates a timing model for `config`, able to track store-to-load
    /// interlocks across `memory_words` of memory.
    #[must_use]
    pub fn new(config: &MachineConfig, memory_words: usize) -> Self {
        let latency = std::array::from_fn(|i| {
            u64::from(config.latency(InstrClass::from_index(i).expect("dense class index")))
        });
        let fu_of = std::array::from_fn(|i| {
            config.unit_of(InstrClass::from_index(i).expect("dense class index"))
        });
        let fu_issue_latency = config
            .functional_units()
            .iter()
            .map(|fu| u64::from(fu.issue_latency()))
            .collect();
        let fu_slots = config
            .functional_units()
            .iter()
            .map(|fu| vec![0_u64; fu.multiplicity() as usize])
            .collect();
        TimingModel {
            width: config.issue_width(),
            pipe_degree: config.pipe_degree(),
            perfect_branch_prediction: config.perfect_branch_prediction(),
            taken_branch_breaks_issue: config.taken_branch_breaks_issue(),
            latency,
            fu_of,
            fu_issue_latency,
            fu_slots,
            reg_ready: [0; NUM_REGS],
            mem_ready: vec![0; memory_words],
            cur_cycle: 0,
            issued_in_cycle: 0,
            control_stall_until: 0,
            last_completion: 0,
            instructions: 0,
        }
    }

    /// Issues one dynamic instruction, returning its issue and completion
    /// cycles (in machine cycles).
    pub fn issue(&mut self, info: &StepInfo) -> IssueRecord {
        let class_index = info.class.index();

        // In-order issue: never before the previous instruction's cycle, nor
        // before an outstanding control transfer allows fetch to resume.
        let mut t = self.cur_cycle.max(self.control_stall_until);

        // RAW: all operands ready.
        for reg in info.uses.iter() {
            t = t.max(self.reg_ready[reg.dense_index()]);
        }
        // Conservative WAW: previous write to the destination completed.
        if let Some(def) = info.def {
            t = t.max(self.reg_ready[def.dense_index()]);
        }
        // Store-to-load (and store-to-store) interlocks on the actual words.
        if let Some((addr, _)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            for a in addr..(addr + span).min(self.mem_ready.len()) {
                t = t.max(self.mem_ready[a]);
            }
        }

        // Vector instructions occupy their functional unit for one cycle
        // per element (the paper's Figure 2-8 strings of E's) and chain:
        // dependent vector operations may start as soon as the first
        // element emerges, i.e. after the class's operation latency.
        let vector_occupancy = u64::from(info.vlen).saturating_sub(1);

        // Functional unit: the earliest-free copy.
        let fu = self.fu_of[class_index];
        let (slot_index, slot_free) = self.fu_slots[fu]
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, free)| free)
            .expect("functional units have multiplicity >= 1");
        t = t.max(slot_free);

        // Issue-width limit for the chosen cycle.
        if t == self.cur_cycle && self.issued_in_cycle >= self.width {
            t += 1;
        }

        // Commit the issue.
        if t > self.cur_cycle {
            self.cur_cycle = t;
            self.issued_in_cycle = 1;
        } else {
            self.issued_in_cycle += 1;
        }
        self.fu_slots[fu][slot_index] = t + self.fu_issue_latency[fu].max(1 + vector_occupancy);

        // Chain point: when the first result element is available. For
        // scalar instructions this is also the completion time.
        let complete = t + self.latency[class_index];
        let drain = complete + vector_occupancy;
        if let Some(def) = info.def {
            // Vector results chain (consumers are vector instructions that
            // also proceed element-by-element); scalar results are ready at
            // completion.
            let ready = if matches!(def, Reg::Vec(_)) {
                complete
            } else {
                drain
            };
            self.reg_ready[def.dense_index()] = ready;
        }
        if let Some((addr, is_store)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            if is_store {
                for a in addr..(addr + span).min(self.mem_ready.len()) {
                    self.mem_ready[a] = drain;
                }
            }
        }
        self.last_completion = self.last_completion.max(drain);

        // Control transfers.
        let transfers = match info.control {
            ControlEvent::Branch { taken } => taken,
            ControlEvent::Jump | ControlEvent::Call | ControlEvent::Return => true,
            ControlEvent::None | ControlEvent::Halt => false,
        };
        if transfers {
            if !self.perfect_branch_prediction {
                self.control_stall_until = self.control_stall_until.max(complete);
            }
            if self.taken_branch_breaks_issue {
                self.control_stall_until = self.control_stall_until.max(t + 1);
            }
        }

        self.instructions += 1;
        IssueRecord {
            issue: t,
            complete,
            drain,
        }
    }

    /// Dynamic instructions issued so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total elapsed machine cycles (time of the last completion).
    #[must_use]
    pub fn machine_cycles(&self) -> u64 {
        self.last_completion
    }

    /// Total elapsed time in base-machine cycles (machine cycles divided by
    /// the superpipelining degree).
    #[must_use]
    pub fn base_cycles(&self) -> f64 {
        self.last_completion as f64 / f64::from(self.pipe_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, Executor};
    use supersym_isa::{AsmBuilder, IntReg};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn run(program: &supersym_isa::Program, config: &MachineConfig) -> (u64, f64) {
        let options = ExecOptions {
            memory_words: 1024,
            ..Default::default()
        };
        let mut exec = Executor::new(program, options).unwrap();
        let mut timing = TimingModel::new(config, options.memory_words);
        while let Some(info) = exec.step().unwrap() {
            timing.issue(&info);
        }
        (timing.instructions(), timing.base_cycles())
    }

    fn independent_adds(n: usize) -> supersym_isa::Program {
        let mut asm = AsmBuilder::new("main");
        for i in 0..n {
            // Distinct destination and source registers: fully parallel.
            asm.add(r((i % 8) as u8 + 1), IntReg::ZERO, (i as i64).into());
        }
        asm.halt();
        asm.finish_program()
    }

    fn dependent_chain(n: usize) -> supersym_isa::Program {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 0);
        for _ in 0..n {
            asm.add(r(1), r(1), 1.into());
        }
        asm.halt();
        asm.finish_program()
    }

    #[test]
    fn base_machine_one_per_cycle() {
        let program = independent_adds(10);
        let (instrs, cycles) = run(&program, &presets::base());
        // 11 instructions, one per cycle, each completing a cycle later.
        assert_eq!(instrs, 11);
        assert!((cycles - 11.0).abs() < 1e-9);
    }

    #[test]
    fn superscalar_overlaps_independent_work() {
        let program = independent_adds(24);
        let (_, base_cycles) = run(&program, &presets::base());
        let (_, ss3_cycles) = run(&program, &presets::ideal_superscalar(3));
        let speedup = base_cycles / ss3_cycles;
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn dependent_chain_gains_nothing() {
        let program = dependent_chain(30);
        let (_, base_cycles) = run(&program, &presets::base());
        let (_, ss8_cycles) = run(&program, &presets::ideal_superscalar(8));
        // The serial chain cannot speed up (small constant slack allowed).
        assert!((base_cycles - ss8_cycles).abs() < 2.0);
    }

    #[test]
    fn superpipelined_equals_superscalar_steady_state() {
        // §2.7: machines of equal degree have basically the same performance.
        let program = independent_adds(200);
        let (_, ss) = run(&program, &presets::ideal_superscalar(4));
        let (_, sp) = run(&program, &presets::superpipelined(4));
        let ratio = sp / ss;
        assert!(ratio > 0.99 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn superpipelined_startup_transient() {
        // Figure 4-2: a basic block of six independent instructions. The
        // degree-3 superscalar issues the last at t1; the superpipelined
        // machine takes 1/3 base cycle per issue and falls behind.
        fn burst(config: &MachineConfig, n: usize) -> f64 {
            let mut timing = TimingModel::new(config, 16);
            for i in 0..n {
                let info = StepInfo {
                    func: supersym_isa::FuncId::new(0),
                    pc: i,
                    class: InstrClass::IntAdd,
                    uses: Default::default(),
                    def: Some(supersym_isa::Reg::Int(r(i as u8 + 1))),
                    mem: None,
                    vlen: 0,
                    control: ControlEvent::None,
                };
                timing.issue(&info);
            }
            timing.base_cycles()
        }
        use crate::exec::{ControlEvent, StepInfo};
        let ss = burst(&presets::ideal_superscalar(3), 6);
        let sp = burst(&presets::superpipelined(3), 6);
        assert!(sp > ss, "superpipelined {sp} should trail superscalar {ss}");
        // And the gap shrinks as the degree rises (supersymmetry, Fig 4-1).
        let ss8 = burst(&presets::ideal_superscalar(8), 6);
        let sp8 = burst(&presets::superpipelined(8), 6);
        assert!((sp8 - ss8) < (sp - ss) + 1e-9);
    }

    #[test]
    fn class_conflicts_stall() {
        // All loads: the conflict machine has one memory port.
        let mut asm = AsmBuilder::new("main");
        for i in 0..12 {
            asm.load(r((i % 4) as u8 + 1), IntReg::GP, i);
        }
        asm.halt();
        let program = asm.finish_program();
        let (_, ideal) = run(&program, &presets::ideal_superscalar(4));
        let (_, conflict) = run(&program, &presets::superscalar_with_class_conflicts(4));
        assert!(
            conflict > ideal * 2.0,
            "conflict {conflict} vs ideal {ideal}"
        );
    }

    #[test]
    fn waw_reuse_serializes() {
        // Writing the same register repeatedly is an artificial dependence.
        let mut asm = AsmBuilder::new("main");
        for i in 0..16 {
            asm.add(r(1), IntReg::ZERO, (i as i64).into());
        }
        asm.halt();
        let program = asm.finish_program();
        let (_, reuse) = run(&program, &presets::ideal_superscalar(4));
        let spread = independent_adds(16);
        let (_, parallel) = run(&spread, &presets::ideal_superscalar(4));
        assert!(reuse > parallel, "reuse {reuse} vs parallel {parallel}");
    }

    #[test]
    fn store_load_interlock() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 7);
        asm.store(r(1), IntReg::GP, 0);
        asm.load(r(2), IntReg::GP, 0);
        asm.halt();
        let program = asm.finish_program();
        // Make stores slow; the dependent load must wait.
        let slow_store = MachineConfig::builder("slow-store")
            .latency(InstrClass::Store, 5)
            .build()
            .unwrap();
        let (_, slow) = run(&program, &slow_store);
        let (_, fast) = run(&program, &presets::base());
        assert!(slow > fast + 3.0, "slow {slow} fast {fast}");
    }

    #[test]
    fn imperfect_prediction_costs_taken_branches() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 20);
        asm.bind(top);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(2), r(1), 0.into());
        asm.br_true(r(2), top);
        asm.halt();
        let program = asm.finish_program();
        let perfect = presets::base();
        let imperfect = MachineConfig::builder("no-prediction")
            .perfect_branch_prediction(false)
            .latency(InstrClass::Branch, 3)
            .build()
            .unwrap();
        let (_, a) = run(&program, &perfect);
        let (_, b) = run(&program, &imperfect);
        assert!(b > a + 19.0, "imperfect {b} vs perfect {a}");
    }

    #[test]
    fn underpipelined_half_issue_rate() {
        let program = independent_adds(20);
        let (_, base) = run(&program, &presets::base());
        let (_, half) = run(&program, &presets::underpipelined_half_issue());
        assert!(half > base * 1.7, "half {half} base {base}");
    }

    #[test]
    fn vector_occupancy_and_chaining() {
        use crate::exec::{ControlEvent, StepInfo};
        use supersym_isa::{FpOp, Instr, VecReg};
        let config = presets::base();
        let mut timing = TimingModel::new(&config, 256);
        let vinstr = |dst: u8, lhs: u8| Instr::VOp {
            op: FpOp::FAdd,
            dst: VecReg::new_unchecked(dst),
            lhs: VecReg::new_unchecked(lhs),
            rhs: VecReg::new_unchecked(lhs),
        };
        let info = |instr: &Instr, pc: usize| StepInfo {
            func: supersym_isa::FuncId::new(0),
            pc,
            class: instr.class(),
            uses: instr.uses(),
            def: instr.def(),
            mem: None,
            vlen: 16,
            control: ControlEvent::None,
        };
        // The paper's §2.3 example: a vector load chained into a vector
        // add. The units differ, so the add starts at the load's chain
        // point rather than after its full drain.
        let vld = Instr::VLoad {
            dst: VecReg::new_unchecked(1),
            base: supersym_isa::IntReg::GP,
            offset: 0,
            alias: supersym_isa::MemAlias::unknown(),
        };
        let mut ld_info = info(&vld, 0);
        ld_info.mem = Some((0, false));
        let first = timing.issue(&ld_info);
        // Drains one element per cycle after the chain point.
        assert_eq!(first.drain, first.complete + 15);
        let b = vinstr(2, 1);
        let second = timing.issue(&info(&b, 1));
        assert!(second.issue <= first.complete, "no chaining: {second:?}");
        // Two vector ops on the SAME functional unit serialize on its
        // element-per-cycle occupancy.
        let c = vinstr(5, 4);
        let third = timing.issue(&info(&c, 2));
        assert!(
            third.issue >= second.issue + 16,
            "functional unit not reserved: {third:?}"
        );
    }

    #[test]
    fn issue_width_limits_per_cycle() {
        let program = independent_adds(64);
        let (_, w2) = run(&program, &presets::ideal_superscalar(2));
        let (_, w4) = run(&program, &presets::ideal_superscalar(4));
        assert!(w2 > w4 * 1.5, "w2 {w2} w4 {w4}");
    }
}
