//! The parameterizable pipeline timing model.
//!
//! Models an in-order machine described by a
//! [`MachineConfig`](supersym_machine::MachineConfig):
//!
//! * **In-order issue**, at most `issue_width` instructions per machine
//!   cycle. The paper considers only in-order machines ("We will not
//!   consider superscalar machines or any other machines that issue
//!   instructions out of order", §2.3.2).
//! * **RAW interlocks**: an instruction cannot issue until the operation
//!   latency of each producer has elapsed (§3: "If an instruction requires
//!   the result of a previous instruction, the machine will stall unless the
//!   operation latency of the previous instruction has elapsed").
//! * **Conservative WAW interlocks**: a writer waits for the previous write
//!   of the same register to complete. There is no renaming, so register
//!   reuse is a real dependence — this is what makes the compiler's
//!   temporary-register supply matter (§3: "using the same temporary
//!   register for two different values ... introduces an artificial
//!   dependency"). WAR is free because operands are read at issue.
//! * **Functional-unit reservation**: each instruction class belongs to one
//!   functional unit with a `multiplicity` and an `issue_latency` (§3).
//! * **Store-to-load interlocks** on actual word addresses.
//! * **Control**: with perfect branch prediction (the paper's default),
//!   taken branches cost nothing; otherwise the next instruction waits for
//!   the transfer to complete. Machines may also declare that a taken
//!   branch ends the cycle's issue group.
//!
//! Because issue is serialized at one instruction per machine cycle on a
//! superpipelined machine, the larger startup transient of superpipelined
//! machines (Figure 4-2) *emerges* from this model rather than being
//! hard-coded.

use crate::exec::{ControlEvent, StepInfo};
use crate::paged::PagedArray;
use supersym_isa::{InstrClass, Program, Reg, NUM_CLASSES};
use supersym_machine::MachineConfig;

pub(crate) const NUM_REGS: usize = Reg::DENSE_SPACE;

/// Sentinel in the writer table: this register has never been written.
pub(crate) const NO_WRITER: u64 = u64::MAX;

/// Why a dynamic instruction could not issue sooner.
///
/// Every machine cycle an instruction waits past the in-order frontier is
/// charged to exactly one cause — the *binding* constraint, the one whose
/// required cycle equals the final issue cycle. When several constraints
/// tie, the earliest pipeline stage wins: control transfer, then RAW, WAW,
/// store-to-load, functional unit, and issue width last (a width-deferred
/// instruction always issues the very next cycle, so `IssueWidth` can bind
/// a *wait* but never leaves a cycle empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting for an operand: `reg`'s producer had not completed.
    RawInterlock {
        /// The operand register that was not ready.
        reg: Reg,
    },
    /// Waiting to reuse a destination: the previous write of `reg` had not
    /// completed (no renaming — §3's "artificial dependency").
    WawInterlock {
        /// The destination register being reused.
        reg: Reg,
    },
    /// Waiting for a free copy of a functional unit (multiplicity and
    /// issue-latency reservation, §3).
    FuBusy {
        /// Functional-unit index in the machine's unit list.
        unit: usize,
    },
    /// Waiting for an in-flight store to the same word to drain.
    StoreLoadConflict,
    /// Waiting for a control transfer to resolve (imperfect prediction, or
    /// a machine where taken branches end the issue group).
    ControlTransfer,
    /// The cycle's issue slots were full; deferred to the next cycle.
    IssueWidth,
}

/// Number of [`StallCause`] kinds (payloads aside).
pub const NUM_STALL_KINDS: usize = 6;

impl StallCause {
    /// Stable machine-readable labels, indexed by [`StallCause::index`].
    /// These are the field names of the JSON profile schema — do not
    /// reorder or rename without bumping `supersym.profile` schema version.
    pub const LABELS: [&'static str; NUM_STALL_KINDS] = [
        "raw_interlock",
        "waw_interlock",
        "fu_busy",
        "store_load",
        "control",
        "issue_width",
    ];

    /// Human-readable names, indexed by [`StallCause::index`].
    pub const NAMES: [&'static str; NUM_STALL_KINDS] = [
        "RAW interlock",
        "WAW interlock",
        "functional unit busy",
        "store-load conflict",
        "control transfer",
        "issue width",
    ];

    /// Dense index of the cause kind (payloads ignored).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallCause::RawInterlock { .. } => 0,
            StallCause::WawInterlock { .. } => 1,
            StallCause::FuBusy { .. } => 2,
            StallCause::StoreLoadConflict => 3,
            StallCause::ControlTransfer => 4,
            StallCause::IssueWidth => 5,
        }
    }

    /// The stable machine-readable label of this cause kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        Self::LABELS[self.index()]
    }

    /// The human-readable name of this cause kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        Self::NAMES[self.index()]
    }
}

/// Issue/completion times for one dynamic instruction, in machine cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Machine cycle the instruction issued in.
    pub issue: u64,
    /// Machine cycle its (first) result became available — the chaining
    /// point for vector instructions.
    pub complete: u64,
    /// Machine cycle the instruction fully drained (equals `complete` for
    /// scalar instructions; `complete + vlen - 1` for vector ones).
    pub drain: u64,
    /// Machine cycles the instruction waited past the in-order frontier
    /// (the cycle the previous instruction issued in) before issuing.
    pub wait: u64,
    /// The binding constraint behind `wait`; `None` when `wait == 0`.
    pub cause: Option<StallCause>,
}

/// Where the machine cycles of a run went.
///
/// Two complementary views are kept (see DESIGN.md §7):
///
/// * the **cycle view** partitions the timeline exactly:
///   `issue_cycles + Σ stall_cycles + drain_cycles == machine_cycles`.
///   A cycle in which nothing issued is charged to the binding constraint
///   of the *next* instruction to issue; the tail after the last issue is
///   `drain_cycles`. `IssueWidth` is provably always zero here — a
///   width-deferred instruction issues the very next cycle.
/// * the **wait view** sums, over dynamic instructions, how many cycles
///   each waited past the in-order frontier (instruction-cycles, so
///   overlapping waits count once per waiter). This is where `IssueWidth`
///   pressure, the per-class rollup, and the per-unit rollup live.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleAccount {
    machine_cycles: u64,
    issue_cycles: u64,
    stall_cycles: [u64; NUM_STALL_KINDS],
    drain_cycles: u64,
    wait_cycles: [u64; NUM_STALL_KINDS],
    class_waits: [u64; NUM_CLASSES],
    fu_names: Vec<String>,
    fu_waits: Vec<u64>,
}

impl CycleAccount {
    /// Total machine cycles the account covers.
    #[must_use]
    pub fn machine_cycles(&self) -> u64 {
        self.machine_cycles
    }

    /// Machine cycles in which at least one instruction issued.
    #[must_use]
    pub fn issue_cycles(&self) -> u64 {
        self.issue_cycles
    }

    /// Empty machine cycles charged to `cause_index` (cycle view; index as
    /// in [`StallCause::index`]).
    #[must_use]
    pub fn stall_cycles(&self, cause_index: usize) -> u64 {
        self.stall_cycles[cause_index]
    }

    /// Sum of all attributed empty cycles (cycle view, drain excluded).
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Machine cycles after the last issue while results drained.
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        self.drain_cycles
    }

    /// Instruction-cycles waited on `cause_index` (wait view).
    #[must_use]
    pub fn wait_cycles(&self, cause_index: usize) -> u64 {
        self.wait_cycles[cause_index]
    }

    /// Sum of all instruction-cycles waited (wait view).
    #[must_use]
    pub fn total_wait_cycles(&self) -> u64 {
        self.wait_cycles.iter().sum()
    }

    /// Instruction-cycles instructions of `class` spent waiting.
    #[must_use]
    pub fn class_wait_cycles(&self, class: InstrClass) -> u64 {
        self.class_waits[class.index()]
    }

    /// Per-functional-unit `(name, instruction-cycles waited on FuBusy)`.
    pub fn fu_wait_cycles(&self) -> impl Iterator<Item = (&str, u64)> {
        self.fu_names
            .iter()
            .map(String::as_str)
            .zip(self.fu_waits.iter().copied())
    }

    /// The conservation invariant: the cycle view partitions the timeline.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.issue_cycles + self.total_stall_cycles() + self.drain_cycles == self.machine_cycles
    }

    /// Folds another account into this one (summing both views). Meant for
    /// aggregating runs on the *same machine*: the functional-unit tables
    /// must line up.
    ///
    /// # Panics
    ///
    /// Panics if the two accounts describe machines with different
    /// functional-unit lists.
    pub fn merge(&mut self, other: &CycleAccount) {
        assert_eq!(self.fu_names, other.fu_names, "merging across machines");
        self.machine_cycles += other.machine_cycles;
        self.issue_cycles += other.issue_cycles;
        self.drain_cycles += other.drain_cycles;
        for i in 0..NUM_STALL_KINDS {
            self.stall_cycles[i] += other.stall_cycles[i];
            self.wait_cycles[i] += other.wait_cycles[i];
        }
        for i in 0..NUM_CLASSES {
            self.class_waits[i] += other.class_waits[i];
        }
        for i in 0..self.fu_waits.len() {
            self.fu_waits[i] += other.fu_waits[i];
        }
    }
}

/// Everything [`TimingModel::issue_with_detail`] knows about an issue
/// beyond the public [`IssueRecord`] — the internal choices the block
/// cache (see [`crate::block`]) must capture to replay the issue exactly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IssueDetail {
    /// Functional unit the instruction reserved.
    pub(crate) fu: usize,
    /// Absolute cycle the reserved slot frees again.
    pub(crate) slot_free: u64,
    /// Empty machine cycles charged to the binding cause (cycle view).
    pub(crate) empty: u64,
    /// Whether this issue advanced `cur_cycle`.
    pub(crate) advance: bool,
    /// Whether this issue opened a new issue cycle (`issue_cycles += 1`).
    pub(crate) count_issue: bool,
    /// The store-to-load constraint value (max `mem_ready` over the span).
    pub(crate) mem_constraint: u64,
}

/// The pipeline timing model. Feed it the [`StepInfo`] stream produced by an
/// [`Executor`](crate::Executor).
///
/// Fields are `pub(crate)` so the block timing cache (`crate::block`) can
/// snapshot entry state and apply replay deltas without indirection; the
/// public API surface is unchanged.
#[derive(Debug, Clone)]
pub struct TimingModel {
    pub(crate) width: u32,
    pub(crate) pipe_degree: u32,
    pub(crate) perfect_branch_prediction: bool,
    pub(crate) taken_branch_breaks_issue: bool,
    pub(crate) latency: [u64; NUM_CLASSES],
    pub(crate) fu_of: [usize; NUM_CLASSES],
    pub(crate) fu_issue_latency: Vec<u64>,
    pub(crate) fu_slots: Vec<Vec<u64>>,
    pub(crate) reg_ready: [u64; NUM_REGS],
    pub(crate) mem_ready: PagedArray<u64>,
    pub(crate) cur_cycle: u64,
    pub(crate) issued_in_cycle: u32,
    pub(crate) control_stall_until: u64,
    pub(crate) last_completion: u64,
    pub(crate) instructions: u64,
    // --- cycle accounting (all fixed-size or sized once at construction;
    // --- the issue hot path never allocates) ---
    pub(crate) issue_cycles: u64,
    pub(crate) stall_cycles: [u64; NUM_STALL_KINDS],
    pub(crate) wait_cycles: [u64; NUM_STALL_KINDS],
    pub(crate) class_waits: [u64; NUM_CLASSES],
    pub(crate) fu_names: Vec<String>,
    pub(crate) fu_waits: Vec<u64>,
    /// Last writer of each register, packed `(func << 32) | pc`, or
    /// [`NO_WRITER`]. Feeds the critical-producer table.
    pub(crate) reg_writer: [u64; NUM_REGS],
    /// Static-instruction base offset per function; empty when producer
    /// tracking is off.
    pub(crate) producer_bases: Vec<u64>,
    /// Wait cycles charged to each static instruction (flat, indexed by
    /// `producer_bases[func] + pc`); empty when producer tracking is off.
    pub(crate) producer_waits: Vec<u64>,
}

impl TimingModel {
    /// Creates a timing model for `config`, able to track store-to-load
    /// interlocks across `memory_words` of memory.
    #[must_use]
    pub fn new(config: &MachineConfig, memory_words: usize) -> Self {
        let latency = std::array::from_fn(|i| {
            u64::from(config.latency(InstrClass::from_index(i).expect("dense class index")))
        });
        let fu_of = std::array::from_fn(|i| {
            config.unit_of(InstrClass::from_index(i).expect("dense class index"))
        });
        let fu_issue_latency = config
            .functional_units()
            .iter()
            .map(|fu| u64::from(fu.issue_latency()))
            .collect();
        let fu_slots: Vec<Vec<u64>> = config
            .functional_units()
            .iter()
            .map(|fu| vec![0_u64; fu.multiplicity() as usize])
            .collect();
        let fu_names: Vec<String> = config
            .functional_units()
            .iter()
            .map(|fu| fu.name().to_string())
            .collect();
        let fu_waits = vec![0_u64; fu_names.len()];
        TimingModel {
            width: config.issue_width(),
            pipe_degree: config.pipe_degree(),
            perfect_branch_prediction: config.perfect_branch_prediction(),
            taken_branch_breaks_issue: config.taken_branch_breaks_issue(),
            latency,
            fu_of,
            fu_issue_latency,
            fu_slots,
            reg_ready: [0; NUM_REGS],
            mem_ready: PagedArray::new(memory_words),
            cur_cycle: 0,
            issued_in_cycle: 0,
            control_stall_until: 0,
            last_completion: 0,
            instructions: 0,
            issue_cycles: 0,
            stall_cycles: [0; NUM_STALL_KINDS],
            wait_cycles: [0; NUM_STALL_KINDS],
            class_waits: [0; NUM_CLASSES],
            fu_names,
            fu_waits,
            reg_writer: [NO_WRITER; NUM_REGS],
            producer_bases: Vec::new(),
            producer_waits: Vec::new(),
        }
    }

    /// Enables the critical-producer table for `program`: RAW/WAW wait
    /// cycles are charged to the static instruction whose latency was
    /// waited on. Allocates once (one slot per static instruction); the
    /// per-issue cost is a couple of array writes.
    pub fn track_producers(&mut self, program: &Program) {
        let mut bases = Vec::with_capacity(program.functions().len());
        let mut next = 0_u64;
        for function in program.functions() {
            bases.push(next);
            next += function.instrs().len() as u64;
        }
        self.producer_bases = bases;
        self.producer_waits = vec![0; next as usize];
    }

    /// Issues one dynamic instruction, returning its issue and completion
    /// cycles (in machine cycles).
    pub fn issue(&mut self, info: &StepInfo) -> IssueRecord {
        self.issue_with_detail(info).0
    }

    /// [`issue`](Self::issue), also returning the internal choices the
    /// block timing cache records (slot picked, empty cycles charged,
    /// whether the cycle frontier advanced). Computing the detail is free —
    /// every field is a value `issue` already had in hand.
    pub(crate) fn issue_with_detail(&mut self, info: &StepInfo) -> (IssueRecord, IssueDetail) {
        let class_index = info.class.index();

        // Each constraint's required cycle is computed separately so the
        // binding one — the constraint whose requirement equals the final
        // issue cycle — can be identified for stall attribution.

        // RAW: all operands ready. Remember the latest-ready operand.
        let mut raw_ready = 0_u64;
        let mut raw_reg: Option<Reg> = None;
        for reg in info.uses.iter() {
            let ready = self.reg_ready[reg.dense_index()];
            if ready > raw_ready {
                raw_ready = ready;
                raw_reg = Some(reg);
            }
        }
        // Conservative WAW: previous write to the destination completed.
        let waw_ready = info.def.map_or(0, |def| self.reg_ready[def.dense_index()]);
        // Store-to-load (and store-to-store) interlocks on the actual words.
        let mut mem_ready_at = 0_u64;
        if let Some((addr, _)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            for a in addr..(addr + span).min(self.mem_ready.len()) {
                mem_ready_at = mem_ready_at.max(self.mem_ready.get(a));
            }
        }

        // Vector instructions occupy their functional unit for one cycle
        // per element (the paper's Figure 2-8 strings of E's) and chain:
        // dependent vector operations may start as soon as the first
        // element emerges, i.e. after the class's operation latency.
        let vector_occupancy = u64::from(info.vlen).saturating_sub(1);

        // Functional unit: the earliest-free copy. `fu_slots[fu]` is kept
        // sorted ascending, so the earliest-free copy is always the front.
        // Timing depends only on the *multiset* of free times, so the
        // canonical order changes nothing observable — but it makes the
        // scoreboard state a pure function of issue history, which the
        // trace cache's entry-state keys rely on.
        let fu = self.fu_of[class_index];
        let slot_free = self.fu_slots[fu][0];

        // In-order issue: never before the previous instruction's cycle,
        // nor before an outstanding control transfer allows fetch to
        // resume, nor before every constraint above is satisfied.
        let mut t = self
            .cur_cycle
            .max(self.control_stall_until)
            .max(raw_ready)
            .max(waw_ready)
            .max(mem_ready_at)
            .max(slot_free);

        // The binding constraint: whichever required exactly the final
        // cycle. Ties break toward the earlier pipeline stage (control
        // first, functional unit last) so attribution is deterministic.
        let mut cause = if t > self.cur_cycle {
            Some(if self.control_stall_until == t {
                StallCause::ControlTransfer
            } else if raw_ready == t {
                StallCause::RawInterlock {
                    reg: raw_reg.expect("a binding RAW interlock names its operand"),
                }
            } else if waw_ready == t {
                StallCause::WawInterlock {
                    reg: info.def.expect("a binding WAW interlock names its def"),
                }
            } else if mem_ready_at == t {
                StallCause::StoreLoadConflict
            } else {
                StallCause::FuBusy { unit: fu }
            })
        } else {
            None
        };

        // Issue-width limit for the chosen cycle. A width deferral moves
        // the instruction exactly one cycle, into a cycle where it *does*
        // issue — so `IssueWidth` never produces an empty cycle.
        if t == self.cur_cycle && self.issued_in_cycle >= self.width {
            t += 1;
            cause = Some(StallCause::IssueWidth);
        }

        // Cycle view: machine cycles that passed with no issue at all are
        // charged to this instruction's binding constraint.
        let empty_cycles = if self.instructions == 0 {
            t
        } else {
            t.saturating_sub(self.cur_cycle + 1)
        };
        // Wait view: cycles *this instruction* waited past the frontier.
        let wait = t - self.cur_cycle;
        if let Some(cause) = cause {
            self.stall_cycles[cause.index()] += empty_cycles;
            self.wait_cycles[cause.index()] += wait;
            self.class_waits[class_index] += wait;
            match cause {
                StallCause::FuBusy { unit } => self.fu_waits[unit] += wait,
                StallCause::RawInterlock { reg } | StallCause::WawInterlock { reg } => {
                    self.charge_producer(reg, wait);
                }
                _ => {}
            }
        } else {
            debug_assert_eq!(empty_cycles, 0);
            debug_assert_eq!(wait, 0);
        }

        // Commit the issue.
        let advance = t > self.cur_cycle;
        let count_issue = advance || self.instructions == 0;
        if count_issue {
            self.issue_cycles += 1;
        }
        if advance {
            self.cur_cycle = t;
            self.issued_in_cycle = 1;
        } else {
            self.issued_in_cycle += 1;
        }
        let slot_free_at = t + self.fu_issue_latency[fu].max(1 + vector_occupancy);
        self.reserve_slot(fu, slot_free_at);

        // Chain point: when the first result element is available. For
        // scalar instructions this is also the completion time.
        let complete = t + self.latency[class_index];
        let drain = complete + vector_occupancy;
        if let Some(def) = info.def {
            // Vector results chain (consumers are vector instructions that
            // also proceed element-by-element); scalar results are ready at
            // completion.
            let ready = if matches!(def, Reg::Vec(_)) {
                complete
            } else {
                drain
            };
            self.reg_ready[def.dense_index()] = ready;
            self.reg_writer[def.dense_index()] =
                (u64::from(info.func.index() as u32) << 32) | info.pc as u64;
        }
        if let Some((addr, is_store)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            if is_store {
                for a in addr..(addr + span).min(self.mem_ready.len()) {
                    self.mem_ready.set(a, drain);
                }
            }
        }
        self.last_completion = self.last_completion.max(drain);

        // Control transfers.
        let transfers = match info.control {
            ControlEvent::Branch { taken } => taken,
            ControlEvent::Jump | ControlEvent::Call | ControlEvent::Return => true,
            ControlEvent::None | ControlEvent::Halt => false,
        };
        if transfers {
            if !self.perfect_branch_prediction {
                self.control_stall_until = self.control_stall_until.max(complete);
            }
            if self.taken_branch_breaks_issue {
                self.control_stall_until = self.control_stall_until.max(t + 1);
            }
        }

        self.instructions += 1;
        (
            IssueRecord {
                issue: t,
                complete,
                drain,
                wait,
                cause,
            },
            IssueDetail {
                fu,
                slot_free: slot_free_at,
                empty: empty_cycles,
                advance,
                count_issue,
                mem_constraint: mem_ready_at,
            },
        )
    }

    /// Consumes the earliest-free slot of `fu` (the front of its sorted
    /// free-time list) and re-inserts it freeing at `free_at`, preserving
    /// the ascending order `issue_with_detail` relies on.
    pub(crate) fn reserve_slot(&mut self, fu: usize, free_at: u64) {
        let slots = &mut self.fu_slots[fu];
        let mut i = 0;
        while i + 1 < slots.len() && slots[i + 1] < free_at {
            slots[i] = slots[i + 1];
            i += 1;
        }
        slots[i] = free_at;
    }

    /// Charges `wait` cycles to the static instruction that last wrote
    /// `reg` (no-op when producer tracking is off or the register was
    /// live-in).
    pub(crate) fn charge_producer(&mut self, reg: Reg, wait: u64) {
        self.charge_producer_dense(reg.dense_index(), wait);
    }

    /// [`charge_producer`](Self::charge_producer) by dense register index
    /// (the trace cache records registers densely).
    pub(crate) fn charge_producer_dense(&mut self, dense: usize, wait: u64) {
        if self.producer_bases.is_empty() {
            return;
        }
        let packed = self.reg_writer[dense];
        if packed == NO_WRITER {
            return;
        }
        let func = (packed >> 32) as usize;
        let pc = packed & 0xFFFF_FFFF;
        if let Some(base) = self.producer_bases.get(func) {
            if let Some(slot) = self.producer_waits.get_mut((base + pc) as usize) {
                *slot += wait;
            }
        }
    }

    /// Dynamic instructions issued so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total elapsed machine cycles (time of the last completion).
    #[must_use]
    pub fn machine_cycles(&self) -> u64 {
        self.last_completion
    }

    /// Total elapsed time in base-machine cycles (machine cycles divided by
    /// the superpipelining degree).
    #[must_use]
    pub fn base_cycles(&self) -> f64 {
        self.last_completion as f64 / f64::from(self.pipe_degree)
    }

    /// The cycle account so far. The drain tail is computed here (cycles
    /// after the last issue until the last completion), which is what makes
    /// the account conserve: `issue + Σ stalls + drain == machine_cycles`.
    #[must_use]
    pub fn account(&self) -> CycleAccount {
        let drain_cycles = if self.instructions == 0 {
            0
        } else {
            self.last_completion.saturating_sub(self.cur_cycle + 1)
        };
        CycleAccount {
            machine_cycles: self.last_completion,
            issue_cycles: self.issue_cycles,
            stall_cycles: self.stall_cycles,
            drain_cycles,
            wait_cycles: self.wait_cycles,
            class_waits: self.class_waits,
            fu_names: self.fu_names.clone(),
            fu_waits: self.fu_waits.clone(),
        }
    }

    /// Wait cycles charged to each static instruction, flat across
    /// functions in program order (empty unless
    /// [`track_producers`](Self::track_producers) was called).
    #[must_use]
    pub fn producer_waits(&self) -> &[u64] {
        &self.producer_waits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecOptions, Executor};
    use supersym_isa::{AsmBuilder, IntReg};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn run(program: &supersym_isa::Program, config: &MachineConfig) -> (u64, f64) {
        let options = ExecOptions {
            memory_words: 1024,
            ..Default::default()
        };
        let mut exec = Executor::new(program, options).unwrap();
        let mut timing = TimingModel::new(config, options.memory_words);
        while let Some(info) = exec.step().unwrap() {
            timing.issue(&info);
        }
        (timing.instructions(), timing.base_cycles())
    }

    fn independent_adds(n: usize) -> supersym_isa::Program {
        let mut asm = AsmBuilder::new("main");
        for i in 0..n {
            // Distinct destination and source registers: fully parallel.
            asm.add(r((i % 8) as u8 + 1), IntReg::ZERO, (i as i64).into());
        }
        asm.halt();
        asm.finish_program()
    }

    fn dependent_chain(n: usize) -> supersym_isa::Program {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 0);
        for _ in 0..n {
            asm.add(r(1), r(1), 1.into());
        }
        asm.halt();
        asm.finish_program()
    }

    #[test]
    fn base_machine_one_per_cycle() {
        let program = independent_adds(10);
        let (instrs, cycles) = run(&program, &presets::base());
        // 11 instructions, one per cycle, each completing a cycle later.
        assert_eq!(instrs, 11);
        assert!((cycles - 11.0).abs() < 1e-9);
    }

    #[test]
    fn superscalar_overlaps_independent_work() {
        let program = independent_adds(24);
        let (_, base_cycles) = run(&program, &presets::base());
        let (_, ss3_cycles) = run(&program, &presets::ideal_superscalar(3));
        let speedup = base_cycles / ss3_cycles;
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn dependent_chain_gains_nothing() {
        let program = dependent_chain(30);
        let (_, base_cycles) = run(&program, &presets::base());
        let (_, ss8_cycles) = run(&program, &presets::ideal_superscalar(8));
        // The serial chain cannot speed up (small constant slack allowed).
        assert!((base_cycles - ss8_cycles).abs() < 2.0);
    }

    #[test]
    fn superpipelined_equals_superscalar_steady_state() {
        // §2.7: machines of equal degree have basically the same performance.
        let program = independent_adds(200);
        let (_, ss) = run(&program, &presets::ideal_superscalar(4));
        let (_, sp) = run(&program, &presets::superpipelined(4));
        let ratio = sp / ss;
        assert!(ratio > 0.99 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn superpipelined_startup_transient() {
        // Figure 4-2: a basic block of six independent instructions. The
        // degree-3 superscalar issues the last at t1; the superpipelined
        // machine takes 1/3 base cycle per issue and falls behind.
        fn burst(config: &MachineConfig, n: usize) -> f64 {
            let mut timing = TimingModel::new(config, 16);
            for i in 0..n {
                let info = StepInfo {
                    func: supersym_isa::FuncId::new(0),
                    pc: i,
                    class: InstrClass::IntAdd,
                    uses: Default::default(),
                    def: Some(supersym_isa::Reg::Int(r(i as u8 + 1))),
                    mem: None,
                    vlen: 0,
                    control: ControlEvent::None,
                };
                timing.issue(&info);
            }
            timing.base_cycles()
        }
        use crate::exec::{ControlEvent, StepInfo};
        let ss = burst(&presets::ideal_superscalar(3), 6);
        let sp = burst(&presets::superpipelined(3), 6);
        assert!(sp > ss, "superpipelined {sp} should trail superscalar {ss}");
        // And the gap shrinks as the degree rises (supersymmetry, Fig 4-1).
        let ss8 = burst(&presets::ideal_superscalar(8), 6);
        let sp8 = burst(&presets::superpipelined(8), 6);
        assert!((sp8 - ss8) < (sp - ss) + 1e-9);
    }

    #[test]
    fn class_conflicts_stall() {
        // All loads: the conflict machine has one memory port.
        let mut asm = AsmBuilder::new("main");
        for i in 0..12 {
            asm.load(r((i % 4) as u8 + 1), IntReg::GP, i);
        }
        asm.halt();
        let program = asm.finish_program();
        let (_, ideal) = run(&program, &presets::ideal_superscalar(4));
        let (_, conflict) = run(&program, &presets::superscalar_with_class_conflicts(4));
        assert!(
            conflict > ideal * 2.0,
            "conflict {conflict} vs ideal {ideal}"
        );
    }

    #[test]
    fn waw_reuse_serializes() {
        // Writing the same register repeatedly is an artificial dependence.
        let mut asm = AsmBuilder::new("main");
        for i in 0..16 {
            asm.add(r(1), IntReg::ZERO, (i as i64).into());
        }
        asm.halt();
        let program = asm.finish_program();
        let (_, reuse) = run(&program, &presets::ideal_superscalar(4));
        let spread = independent_adds(16);
        let (_, parallel) = run(&spread, &presets::ideal_superscalar(4));
        assert!(reuse > parallel, "reuse {reuse} vs parallel {parallel}");
    }

    #[test]
    fn store_load_interlock() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 7);
        asm.store(r(1), IntReg::GP, 0);
        asm.load(r(2), IntReg::GP, 0);
        asm.halt();
        let program = asm.finish_program();
        // Make stores slow; the dependent load must wait.
        let slow_store = MachineConfig::builder("slow-store")
            .latency(InstrClass::Store, 5)
            .build()
            .unwrap();
        let (_, slow) = run(&program, &slow_store);
        let (_, fast) = run(&program, &presets::base());
        assert!(slow > fast + 3.0, "slow {slow} fast {fast}");
    }

    #[test]
    fn imperfect_prediction_costs_taken_branches() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 20);
        asm.bind(top);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(2), r(1), 0.into());
        asm.br_true(r(2), top);
        asm.halt();
        let program = asm.finish_program();
        let perfect = presets::base();
        let imperfect = MachineConfig::builder("no-prediction")
            .perfect_branch_prediction(false)
            .latency(InstrClass::Branch, 3)
            .build()
            .unwrap();
        let (_, a) = run(&program, &perfect);
        let (_, b) = run(&program, &imperfect);
        assert!(b > a + 19.0, "imperfect {b} vs perfect {a}");
    }

    #[test]
    fn underpipelined_half_issue_rate() {
        let program = independent_adds(20);
        let (_, base) = run(&program, &presets::base());
        let (_, half) = run(&program, &presets::underpipelined_half_issue());
        assert!(half > base * 1.7, "half {half} base {base}");
    }

    #[test]
    fn vector_occupancy_and_chaining() {
        use crate::exec::{ControlEvent, StepInfo};
        use supersym_isa::{FpOp, Instr, VecReg};
        let config = presets::base();
        let mut timing = TimingModel::new(&config, 256);
        let vinstr = |dst: u8, lhs: u8| Instr::VOp {
            op: FpOp::FAdd,
            dst: VecReg::new_unchecked(dst),
            lhs: VecReg::new_unchecked(lhs),
            rhs: VecReg::new_unchecked(lhs),
        };
        let info = |instr: &Instr, pc: usize| StepInfo {
            func: supersym_isa::FuncId::new(0),
            pc,
            class: instr.class(),
            uses: instr.uses(),
            def: instr.def(),
            mem: None,
            vlen: 16,
            control: ControlEvent::None,
        };
        // The paper's §2.3 example: a vector load chained into a vector
        // add. The units differ, so the add starts at the load's chain
        // point rather than after its full drain.
        let vld = Instr::VLoad {
            dst: VecReg::new_unchecked(1),
            base: supersym_isa::IntReg::GP,
            offset: 0,
            alias: supersym_isa::MemAlias::unknown(),
        };
        let mut ld_info = info(&vld, 0);
        ld_info.mem = Some((0, false));
        let first = timing.issue(&ld_info);
        // Drains one element per cycle after the chain point.
        assert_eq!(first.drain, first.complete + 15);
        let b = vinstr(2, 1);
        let second = timing.issue(&info(&b, 1));
        assert!(second.issue <= first.complete, "no chaining: {second:?}");
        // Two vector ops on the SAME functional unit serialize on its
        // element-per-cycle occupancy.
        let c = vinstr(5, 4);
        let third = timing.issue(&info(&c, 2));
        assert!(
            third.issue >= second.issue + 16,
            "functional unit not reserved: {third:?}"
        );
    }

    #[test]
    fn issue_width_limits_per_cycle() {
        let program = independent_adds(64);
        let (_, w2) = run(&program, &presets::ideal_superscalar(2));
        let (_, w4) = run(&program, &presets::ideal_superscalar(4));
        assert!(w2 > w4 * 1.5, "w2 {w2} w4 {w4}");
    }

    // -----------------------------------------------------------------------
    // Cycle accounting
    // -----------------------------------------------------------------------

    fn account_for(
        program: &supersym_isa::Program,
        config: &MachineConfig,
    ) -> (CycleAccount, Vec<IssueRecord>) {
        let options = ExecOptions {
            memory_words: 1024,
            ..Default::default()
        };
        let mut exec = Executor::new(program, options).unwrap();
        let mut timing = TimingModel::new(config, options.memory_words);
        timing.track_producers(program);
        let mut records = Vec::new();
        while let Some(info) = exec.step().unwrap() {
            records.push(timing.issue(&info));
        }
        (timing.account(), records)
    }

    #[test]
    fn base_machine_account_is_all_issue() {
        // 11 instructions, one per cycle, unit latencies: 11 issue cycles,
        // no stalls, no drain tail.
        let program = independent_adds(10);
        let (account, _) = account_for(&program, &presets::base());
        assert_eq!(account.machine_cycles(), 11);
        assert_eq!(account.issue_cycles(), 11);
        assert_eq!(account.total_stall_cycles(), 0);
        assert_eq!(account.drain_cycles(), 0);
        assert!(account.conserved());
        // Wait view: every instruction after the first defers exactly one
        // cycle (FU reservation on the adds' shared unit, issue width on
        // the halt) even though no cycle is empty.
        assert_eq!(account.total_wait_cycles(), 10);
        assert_eq!(
            account.total_wait_cycles(),
            account.wait_cycles(StallCause::FuBusy { unit: 0 }.index())
                + account.wait_cycles(StallCause::IssueWidth.index())
        );
    }

    #[test]
    fn dependent_chain_charges_raw_interlocks() {
        let program = dependent_chain(10);
        let config = presets::ideal_superscalar(8);
        let (account, records) = account_for(&program, &config);
        assert!(account.conserved());
        // Every add waits on its predecessor... but with unit latencies the
        // result is ready next cycle, so waits are width-free RAW slack of
        // zero — use a latency machine instead for nonzero waits.
        let slow = MachineConfig::builder("slow-alu")
            .issue_width(8)
            .latency(InstrClass::IntAdd, 4)
            .build()
            .unwrap();
        let (slow_account, slow_records) = account_for(&program, &slow);
        assert!(slow_account.conserved());
        assert!(
            slow_account.stall_cycles(
                StallCause::RawInterlock {
                    reg: Reg::Int(r(1))
                }
                .index()
            ) > slow_account.total_stall_cycles() / 2,
            "a serial chain on a latency machine is RAW-bound: {slow_account:?}"
        );
        // The chain's waits name the chained register as the cause.
        let raw_waits = slow_records
            .iter()
            .filter(|record| {
                matches!(record.cause, Some(StallCause::RawInterlock { reg }) if reg == Reg::Int(r(1)))
            })
            .count();
        assert!(raw_waits >= 9, "raw_waits {raw_waits}");
        let _ = records;
    }

    #[test]
    fn fu_reservation_charges_fu_busy() {
        let program = independent_adds(20);
        let (account, _) = account_for(&program, &presets::underpipelined_half_issue());
        assert!(account.conserved());
        let fu_busy = account.stall_cycles(StallCause::FuBusy { unit: 0 }.index());
        assert!(
            fu_busy >= 19,
            "every other cycle is an FU-reservation stall: {account:?}"
        );
        // The per-unit rollup sees the same pressure on the single unit.
        let (name, waited) = account.fu_wait_cycles().next().unwrap();
        assert_eq!(name, "universal");
        assert!(waited >= 19);
    }

    #[test]
    fn drain_tail_is_accounted() {
        // A single latency-5 instruction: one issue cycle, four drain.
        let config = MachineConfig::builder("slow")
            .latency(InstrClass::IntAdd, 5)
            .build()
            .unwrap();
        let mut timing = TimingModel::new(&config, 16);
        let info = StepInfo {
            func: supersym_isa::FuncId::new(0),
            pc: 0,
            class: InstrClass::IntAdd,
            uses: Default::default(),
            def: Some(Reg::Int(r(1))),
            mem: None,
            vlen: 0,
            control: ControlEvent::None,
        };
        timing.issue(&info);
        let account = timing.account();
        assert_eq!(account.machine_cycles(), 5);
        assert_eq!(account.issue_cycles(), 1);
        assert_eq!(account.drain_cycles(), 4);
        assert!(account.conserved());
    }

    #[test]
    fn store_load_conflicts_are_attributed() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 7);
        asm.store(r(1), IntReg::GP, 0);
        asm.load(r(2), IntReg::GP, 0);
        asm.halt();
        let program = asm.finish_program();
        let slow_store = MachineConfig::builder("slow-store")
            .issue_width(4)
            .latency(InstrClass::Store, 6)
            .build()
            .unwrap();
        let (account, _) = account_for(&program, &slow_store);
        assert!(account.conserved());
        assert!(
            account.stall_cycles(StallCause::StoreLoadConflict.index()) >= 4,
            "the load waits out the store: {account:?}"
        );
    }

    #[test]
    fn control_transfers_are_attributed() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 10);
        asm.bind(top);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(2), r(1), 0.into());
        asm.br_true(r(2), top);
        asm.halt();
        let program = asm.finish_program();
        let imperfect = MachineConfig::builder("no-prediction")
            .issue_width(4)
            .perfect_branch_prediction(false)
            .latency(InstrClass::Branch, 3)
            .build()
            .unwrap();
        let (account, _) = account_for(&program, &imperfect);
        assert!(account.conserved());
        assert!(
            account.stall_cycles(StallCause::ControlTransfer.index()) >= 18,
            "taken branches stall fetch: {account:?}"
        );
    }

    #[test]
    fn issue_width_never_empties_a_cycle() {
        // Cycle view: width stalls are provably zero; the pressure shows in
        // the wait view instead.
        let program = independent_adds(64);
        for width in [1, 2, 4] {
            let (account, _) = account_for(&program, &presets::ideal_superscalar(width));
            assert_eq!(account.stall_cycles(StallCause::IssueWidth.index()), 0);
            assert!(account.conserved());
        }
    }

    #[test]
    fn critical_producers_identify_the_latency_source() {
        // movi writes r1 with a big latency; the consumer waits on it.
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 3);
        asm.add(r(2), r(1), 1.into());
        asm.halt();
        let program = asm.finish_program();
        let slow = MachineConfig::builder("slow-alu")
            .issue_width(4)
            .latency(InstrClass::IntAdd, 7)
            .build()
            .unwrap();
        let options = ExecOptions {
            memory_words: 64,
            ..Default::default()
        };
        let mut exec = Executor::new(&program, options).unwrap();
        let mut timing = TimingModel::new(&slow, options.memory_words);
        timing.track_producers(&program);
        while let Some(info) = exec.step().unwrap() {
            timing.issue(&info);
        }
        let waits = timing.producer_waits();
        assert_eq!(waits.len(), 3);
        assert!(
            waits[0] >= 6,
            "the movi is the critical producer: {waits:?}"
        );
        assert_eq!(waits[1], 0);
        assert_eq!(waits[2], 0);
    }

    #[test]
    fn class_waits_follow_the_waiting_class() {
        let program = dependent_chain(8);
        let slow = MachineConfig::builder("slow-alu")
            .issue_width(8)
            .latency(InstrClass::IntAdd, 4)
            .build()
            .unwrap();
        let (account, _) = account_for(&program, &slow);
        assert!(account.class_wait_cycles(InstrClass::IntAdd) > 0);
        assert_eq!(account.class_wait_cycles(InstrClass::FpMul), 0);
    }

    #[test]
    fn vector_streams_conserve() {
        use supersym_isa::{FpOp, Instr, VecReg};
        let config = presets::cray1();
        let mut timing = TimingModel::new(&config, 256);
        for i in 0..6_u8 {
            let instr = Instr::VOp {
                op: FpOp::FAdd,
                dst: VecReg::new_unchecked(i % 4 + 1),
                lhs: VecReg::new_unchecked(i % 4),
                rhs: VecReg::new_unchecked(i % 4),
            };
            let info = StepInfo {
                func: supersym_isa::FuncId::new(0),
                pc: i as usize,
                class: InstrClass::FpAdd,
                uses: instr.uses(),
                def: instr.def(),
                mem: None,
                vlen: 16,
                control: ControlEvent::None,
            };
            timing.issue(&info);
        }
        let account = timing.account();
        assert!(account.conserved(), "{account:?}");
        assert!(
            account.total_stall_cycles() > 0,
            "vector FU occupancy stalls"
        );
    }

    #[test]
    fn account_merge_sums_both_views() {
        let program = dependent_chain(10);
        let slow = MachineConfig::builder("slow-alu")
            .issue_width(8)
            .latency(InstrClass::IntAdd, 4)
            .build()
            .unwrap();
        let (one, _) = account_for(&program, &slow);
        let mut merged = one.clone();
        merged.merge(&one);
        assert_eq!(merged.machine_cycles(), 2 * one.machine_cycles());
        assert_eq!(merged.issue_cycles(), 2 * one.issue_cycles());
        assert_eq!(merged.total_wait_cycles(), 2 * one.total_wait_cycles());
        assert!(merged.conserved());
    }
}
