//! Trace-level timing memoization.
//!
//! Loop-heavy programs spend nearly all of their dynamic instructions
//! re-simulating the same instruction traces from the same pipeline
//! states. This module caches the timing model's work per *trace* — a
//! dynamic run of instructions extending across forward branches, ended by
//! a backward transfer, call, return, halt, or length cap. The first time
//! a trace runs from a given entry state, every
//! [`TimingModel::issue_with_detail`] outcome is recorded; later visits
//! that match the same entry state verify each step cheaply (static
//! location, control outcome, vector length, store-to-load constraint) and
//! apply one aggregated state delta per trace instead of re-deriving
//! constraints per instruction.
//!
//! ## Exactness
//!
//! The cache is not an approximation. A replay leaves the timing model in
//! a state the exact model is bit-indistinguishable from, guaranteed by
//! three layers (see DESIGN.md §12 for the full argument):
//!
//! 1. **Entry-state spec (the variant key).** During recording, the first
//!    reference to each register or functional unit captures its entry
//!    state *relative to the entry cycle* `base`: register readiness
//!    (in-flight producers), every slot horizon of each unit used, the
//!    pending control stall, and the issue-width fill of the entry cycle.
//!    Values at or below `base` saturate to 0 — an already-met constraint
//!    can neither bind nor tie at a stalled cycle, so all such states are
//!    timing-equivalent. A later visit replays a variant only if its spec
//!    matches the live state exactly.
//! 2. **Per-instruction verification.** What the spec cannot cover is
//!    checked per replayed instruction: the static location (so control
//!    flow, including return targets, must retrace the recording), the
//!    control outcome, the vector length, and the store-to-load
//!    constraint (memory addresses vary across iterations). A mismatch
//!    *materializes* the already-verified prefix from the recording —
//!    applying exactly the state updates the exact model would have made —
//!    and falls back to the exact model from the diverging step.
//! 3. **Live memory and producer updates.** Store addresses come from the
//!    live [`StepInfo`], so the memory scoreboard reflects actual
//!    execution; stall charges against producers outside the trace are
//!    resolved against the live writer table.
//!
//! Any recording whose spec exceeds [`MAX_REL`] (a pathologically deep
//! pipeline horizon) is discarded — the cache only ever trades work,
//! never answers.

use crate::error::SimError;
use crate::exec::{ControlEvent, Executor, StepInfo};
use crate::timing::{IssueDetail, IssueRecord, StallCause, TimingModel, NUM_STALL_KINDS};
use supersym_isa::{Program, Reg, NUM_CLASSES};
use supersym_trace::MetricsRegistry;

/// Longest trace the cache will record, in instructions.
pub(crate) const MAX_TRACE_LEN: usize = 64;
/// Largest entry-relative horizon a spec may contain; a deeper recording
/// is discarded (counted in [`BlockCacheStats::overflows`]).
const MAX_REL: u64 = 1 << 20;
/// Entry-state variants retained per trace; a full trace evicts
/// round-robin.
const MAX_VARIANTS: usize = 8;

/// Sentinel in [`ReplayStep::def_dense`]: the instruction writes nothing.
const NO_DEF: u16 = u16::MAX;
/// Sentinel in the trace index: this entry pc has not been seen.
const UNREGISTERED: u32 = u32::MAX;

/// Packs a static location as `(func << 32) | pc` — the same encoding the
/// timing model uses for writer identities.
#[inline]
pub(crate) fn packed_loc(info: &StepInfo) -> u64 {
    (u64::from(info.func.index() as u32) << 32) | info.pc as u64
}

/// Whether the trace being executed ends after this step: a halt, a
/// call/return (the successor depends on the call stack), or a backward
/// taken transfer (a loop back-edge — ending here aligns trace entries
/// with loop heads), or any transfer landing exactly on the trace entry.
#[inline]
pub(crate) fn trace_break(control: ControlEvent, pc: usize, cursor: u64, entry: u64) -> bool {
    match control {
        ControlEvent::Halt | ControlEvent::Call | ControlEvent::Return => true,
        ControlEvent::Branch { taken: true } | ControlEvent::Jump => {
            cursor == entry || ((cursor & 0xFFFF_FFFF) as usize) < pc
        }
        _ => false,
    }
}

/// Counters describing what the trace cache did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Trace visits answered by replaying a recorded variant.
    pub hits: u64,
    /// Trace visits that ran exact and recorded a new variant.
    pub misses: u64,
    /// Recorded variants overwritten because a trace was at capacity.
    pub evictions: u64,
    /// Replays abandoned mid-trace by per-instruction verification
    /// (control divergence, vector length, or store-to-load drift).
    pub fallbacks: u64,
    /// Recordings discarded because the entry-state spec exceeded the
    /// relative-horizon cap.
    pub overflows: u64,
    /// Dynamic instructions issued via replay.
    pub replayed_instructions: u64,
}

impl BlockCacheStats {
    /// Fraction of trace visits served by replay.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds the counters into `registry` under `sim.block_cache.*`.
    pub fn register(&self, registry: &mut MetricsRegistry) {
        registry.counter("sim.block_cache.hits", self.hits);
        registry.counter("sim.block_cache.misses", self.misses);
        registry.counter("sim.block_cache.evictions", self.evictions);
        registry.counter("sim.block_cache.fallbacks", self.fallbacks);
        registry.counter("sim.block_cache.overflows", self.overflows);
        registry.counter(
            "sim.block_cache.replayed_instructions",
            self.replayed_instructions,
        );
    }
}

/// A variant's entry-state spec: every piece of timing state the recording
/// read before writing it, with its entry-relative value. A visit matches
/// the variant iff every component evaluates equal. Stored
/// struct-of-arrays so the match — the hottest comparison in the cache —
/// runs as tight branch-free loops over packed values.
#[derive(Debug, Clone, Default)]
struct Spec {
    /// `(instructions == 0) | issued_in_cycle << 1` at entry.
    flags: u64,
    /// `control_stall_until` at entry, entry-relative, saturated.
    csu_rel: u64,
    /// Dense indices of registers read before written, paired with
    /// `reg_rels`.
    reg_idx: Vec<u16>,
    /// Entry-relative readiness per register in `reg_idx`.
    reg_rels: Vec<u64>,
    /// Units whose slot horizons the trace depends on.
    fu_units: Vec<u16>,
    /// Entry-relative free times: the full slot list of each unit in
    /// `fu_units`, concatenated in order (slot counts are fixed by the
    /// machine config, so the split points are implicit).
    fu_rels: Vec<u64>,
}

/// The per-step fields bulk replay verifies (and the store drain it
/// applies), split out of [`ReplayStep`] so the hot loop streams 32-byte
/// records instead of pulling whole cold steps through the cache.
#[derive(Debug, Clone, Copy)]
struct HotStep {
    /// Packed static location; a live mismatch aborts the replay.
    loc: u64,
    /// Recorded store-to-load constraint, entry-relative, saturated.
    mem_rel: u64,
    /// Completion-drain cycle, entry-relative — written to the memory
    /// scoreboard for stores.
    drain_rel: u64,
    /// Vector length the recording saw; a live mismatch aborts.
    expected_vlen: u32,
    /// Control outcome the recording saw; a live mismatch aborts.
    control: ControlEvent,
}

/// One recorded issue, relative to the trace's entry cycle `base`.
///
/// `Copy` and flat on purpose: replay and materialization never allocate.
#[derive(Debug, Clone, Copy)]
struct ReplayStep {
    /// Packed static location; a live mismatch (divergent control flow)
    /// aborts the replay.
    loc: u64,
    /// Control outcome the recording saw; a live mismatch aborts.
    control: ControlEvent,
    /// Vector length the recording saw; a live mismatch aborts.
    expected_vlen: u32,
    /// Instruction class index (for per-class wait attribution during
    /// materialization).
    class: u16,
    /// Recorded store-to-load constraint (`max mem_ready` over the span),
    /// entry-relative and saturated at 0; a live mismatch aborts.
    mem_rel: u64,
    issue_rel: u64,
    complete_rel: u64,
    drain_rel: u64,
    wait: u64,
    empty: u64,
    cause: Option<StallCause>,
    advance: bool,
    count_issue: bool,
    /// Reserved unit; replay re-inserts `slot_free_rel` into its sorted
    /// free-time list exactly as the exact model did.
    fu: u16,
    slot_free_rel: u64,
    /// Dense index of the written register, or [`NO_DEF`].
    def_dense: u16,
    def_ready_rel: u64,
    /// Packed writer identity for the producer table.
    def_writer: u64,
}

/// The aggregated effect of a whole trace on the timing model — what a
/// fully verified replay applies in O(footprint) instead of O(length).
#[derive(Debug, Clone, Default)]
struct Summary {
    len: u32,
    /// Whether a completed replay's exit state provably re-satisfies this
    /// variant's own spec at the new entry cycle (checked once at
    /// recording time by [`BlockCache::finish_recording`]). When the trace
    /// then transfers straight back to its own entry — a steady-state loop
    /// — the replay loops in place without re-running the variant scan.
    self_replayable: bool,
    /// `issued_in_cycle` at trace exit (deterministic given the spec).
    end_issued: u32,
    issue_cycles_delta: u64,
    /// `cur_cycle - base` at trace exit.
    end_cur_rel: u64,
    /// `control_stall_until` at trace exit, entry-relative, saturated.
    /// Applied as a `max` — exact when positive, and the saturated-zero
    /// case is timing-equivalent (a horizon at or below `base` never
    /// binds; see the module docs).
    end_csu_rel: u64,
    /// `control_stall_until` *before* the final step's control update,
    /// entry-relative, saturated. A control-only divergence at the final
    /// step (a loop-exit branch) applies the summary with this horizon and
    /// takes the control update from the live outcome instead.
    csu_excl_last_rel: u64,
    /// Largest drain over the trace; `last_completion` is a running max.
    max_drain_rel: u64,
    stall_delta: [u64; NUM_STALL_KINDS],
    wait_delta: [u64; NUM_STALL_KINDS],
    /// Nonzero per-class wait rollups, `(class index, wait)`.
    class_waits: Vec<(u16, u64)>,
    /// Nonzero per-unit wait rollups, `(unit, wait)`.
    fu_waits: Vec<(u16, u64)>,
    /// Producer charges resolved to static slots at record time (the
    /// producer was inside the trace).
    static_charges: Vec<(u32, u64)>,
    /// Producer charges against registers live into the trace, `(dense
    /// reg, wait)` — resolved against the live writer table at apply time,
    /// before `reg_finals` overwrites it.
    live_charges: Vec<(u16, u64)>,
    /// Final `(dense reg, ready_rel, writer)` per register the trace
    /// wrote.
    reg_finals: Vec<(u16, u64, u64)>,
    /// Final `(unit, slot, free_rel)` for every slot of every unit the
    /// trace reserved (a reservation shifts the unit's whole sorted list,
    /// so finals cover touched units in full).
    fu_slot_finals: Vec<(u16, u16, u64)>,
}

/// A recorded entry-state variant of one trace.
#[derive(Debug, Clone)]
struct Variant {
    spec: Spec,
    /// Verification stream for bulk replay, parallel to `steps`.
    hot: Vec<HotStep>,
    steps: Vec<ReplayStep>,
    summary: Summary,
}

/// Recorded variants of one trace entry point.
#[derive(Debug, Clone, Default)]
struct TraceEntry {
    variants: Vec<Variant>,
    /// Round-robin eviction cursor.
    next_evict: usize,
}

/// What [`BlockCache::begin_block`] decided for a trace visit.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BlockStart {
    /// Run the exact model, capturing a recording for `block`.
    Record {
        /// Trace slot to finalize into.
        block: u32,
    },
    /// Replay `variant` of `block`.
    Replay {
        /// Trace slot being replayed.
        block: u32,
        /// Variant index within the trace.
        variant: u32,
        /// Entry cycle the deltas are applied against.
        base: u64,
    },
}

/// Outcome of a bulk trace replay ([`BlockCache::replay_trace`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TraceRun {
    /// Every step verified; the summary has been applied.
    Completed,
    /// Verification failed at this step: the verified prefix has been
    /// materialized; the caller issues the carried step (and the rest of
    /// the trace) exactly.
    Diverged(StepInfo),
    /// The executor stream ended mid-replay. Unreachable in practice
    /// (`Halt` always ends a trace), but handled so replay state can never
    /// dangle.
    Ended,
}

/// The per-run trace timing cache. Created once per simulation by
/// [`crate::simulate`] (unless disabled via
/// [`SimOptions`](crate::SimOptions)); traces and variants accumulate as
/// the program runs and are dropped with it.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// `index[func][pc]` → trace slot, or [`UNREGISTERED`].
    index: Vec<Vec<u32>>,
    traces: Vec<TraceEntry>,
    /// Re-entry hint: when the last trace visit completed a self-replayable
    /// variant exactly (see [`Summary::self_replayable`]), the variant's
    /// entry location — a back-edge landing there is certified to match the
    /// same variant's spec, so [`Self::begin_block`] skips the index lookup
    /// and variant scan. [`u64::MAX`] (an impossible packed location) when
    /// no certificate is live; refreshed or cleared on every trace visit.
    reentry_loc: u64,
    reentry_block: u32,
    reentry_variant: u32,
    // --- recording state (reused across recordings; allocation stops
    // --- once every hot trace is recorded) ---
    rec_base: u64,
    rec_overflow: bool,
    /// `control_stall_until` before the most recent step's issue — at
    /// finish time, the horizon excluding the final step's control update.
    rec_csu_prev: u64,
    rec_flags: u64,
    rec_csu_rel: u64,
    rec_reg_idx: Vec<u16>,
    rec_reg_rels: Vec<u64>,
    rec_fu_rels: Vec<u64>,
    rec_steps: Vec<ReplayStep>,
    /// Registers referenced so far (first reference captures entry state).
    observed: Vec<bool>,
    /// Registers written so far (their entry state is dead downstream).
    written: Vec<bool>,
    written_list: Vec<u16>,
    /// Packed location of the last in-trace writer per register.
    writer_in_trace: Vec<u64>,
    fu_seen: Vec<bool>,
    fu_touched: Vec<u16>,
    rec_stall: [u64; NUM_STALL_KINDS],
    rec_wait: [u64; NUM_STALL_KINDS],
    rec_class_waits: [u64; NUM_CLASSES],
    rec_fu_waits: Vec<u64>,
    rec_issue_cycles: u64,
    rec_max_drain: u64,
    /// `(packed writer loc, wait)`; resolved to flat slots at finish.
    rec_static_charges: Vec<(u64, u64)>,
    rec_live_charges: Vec<(u16, u64)>,
    pub(crate) stats: BlockCacheStats,
}

impl BlockCache {
    /// An empty cache indexed for `program`'s static shape and `timing`'s
    /// functional-unit count.
    pub(crate) fn new(program: &Program, timing: &TimingModel) -> Self {
        let index = program
            .functions()
            .iter()
            .map(|function| vec![UNREGISTERED; function.instrs().len()])
            .collect();
        let num_fus = timing.fu_waits.len();
        BlockCache {
            index,
            traces: Vec::new(),
            reentry_loc: u64::MAX,
            reentry_block: 0,
            reentry_variant: 0,
            rec_base: 0,
            rec_overflow: false,
            rec_csu_prev: 0,
            rec_flags: 0,
            rec_csu_rel: 0,
            rec_reg_idx: Vec::new(),
            rec_reg_rels: Vec::new(),
            rec_fu_rels: Vec::new(),
            rec_steps: Vec::new(),
            observed: vec![false; crate::timing::NUM_REGS],
            written: vec![false; crate::timing::NUM_REGS],
            written_list: Vec::new(),
            writer_in_trace: vec![0; crate::timing::NUM_REGS],
            fu_seen: vec![false; num_fus],
            fu_touched: Vec::new(),
            rec_stall: [0; NUM_STALL_KINDS],
            rec_wait: [0; NUM_STALL_KINDS],
            rec_class_waits: [0; NUM_CLASSES],
            rec_fu_waits: vec![0; num_fus],
            rec_issue_cycles: 0,
            rec_max_drain: 0,
            rec_static_charges: Vec::new(),
            rec_live_charges: Vec::new(),
            stats: BlockCacheStats::default(),
        }
    }

    /// Decides how to run the trace entered by `info`: replay a matching
    /// variant or run exact while recording a new one.
    pub(crate) fn begin_block(&mut self, info: &StepInfo, timing: &TimingModel) -> BlockStart {
        // Steady-state loop fast path: the previous visit completed a
        // self-replayable variant, whose exit state is certified (at
        // recording time) to re-satisfy its own spec — landing on its
        // entry needs no index lookup and no variant scan.
        if packed_loc(info) == self.reentry_loc {
            self.stats.hits += 1;
            return BlockStart::Replay {
                block: self.reentry_block,
                variant: self.reentry_variant,
                base: timing.cur_cycle,
            };
        }
        self.reentry_loc = u64::MAX;
        let func = info.func.index();
        let pc = info.pc;
        let mut block = self.index[func][pc];
        if block == UNREGISTERED {
            block = self.traces.len() as u32;
            self.traces.push(TraceEntry::default());
            self.index[func][pc] = block;
        }
        let base = timing.cur_cycle;
        let flags = u64::from(timing.instructions == 0) | (u64::from(timing.issued_in_cycle) << 1);
        let entry = &mut self.traces[block as usize];
        for index in 0..entry.variants.len() {
            if spec_matches(&entry.variants[index].spec, timing, base, flags) {
                self.stats.hits += 1;
                // Move-to-front: steady-state loops re-match the same
                // variant, so the scan almost always stops at index 0.
                if index > 0 {
                    entry.variants.swap(index - 1, index);
                    return BlockStart::Replay {
                        block,
                        variant: (index - 1) as u32,
                        base,
                    };
                }
                return BlockStart::Replay {
                    block,
                    variant: index as u32,
                    base,
                };
            }
        }
        self.stats.misses += 1;
        self.start_recording(base, flags, timing);
        BlockStart::Record { block }
    }

    fn start_recording(&mut self, base: u64, flags: u64, timing: &TimingModel) {
        self.rec_base = base;
        self.rec_overflow = false;
        self.rec_flags = flags;
        self.rec_reg_idx.clear();
        self.rec_reg_rels.clear();
        self.rec_fu_rels.clear();
        self.rec_steps.clear();
        self.observed.fill(false);
        self.written.fill(false);
        self.written_list.clear();
        self.fu_seen.fill(false);
        self.fu_touched.clear();
        self.rec_stall = [0; NUM_STALL_KINDS];
        self.rec_wait = [0; NUM_STALL_KINDS];
        self.rec_class_waits = [0; NUM_CLASSES];
        self.rec_fu_waits.fill(0);
        self.rec_issue_cycles = 0;
        self.rec_max_drain = 0;
        self.rec_static_charges.clear();
        self.rec_live_charges.clear();
        let csu_rel = timing.control_stall_until.saturating_sub(base);
        self.rec_overflow |= csu_rel > MAX_REL;
        self.rec_csu_rel = csu_rel;
    }

    /// Captures the entry state the next instruction is about to read:
    /// must run *before* [`TimingModel::issue_with_detail`] for the step.
    pub(crate) fn observe_step(&mut self, info: &StepInfo, timing: &TimingModel) {
        let base = self.rec_base;
        self.rec_csu_prev = timing.control_stall_until;
        for reg in info.uses.iter() {
            self.observe_reg(reg, timing, base);
        }
        if let Some(def) = info.def {
            self.observe_reg(def, timing, base);
        }
        let fu = timing.fu_of[info.class.index()];
        if !self.fu_seen[fu] {
            self.fu_seen[fu] = true;
            if fu > usize::from(u16::MAX) {
                self.rec_overflow = true;
                return;
            }
            self.fu_touched.push(fu as u16);
            for &free in timing.fu_slots[fu].iter() {
                let rel = free.saturating_sub(base);
                self.rec_overflow |= rel > MAX_REL;
                self.rec_fu_rels.push(rel);
            }
        }
    }

    #[inline]
    fn observe_reg(&mut self, reg: Reg, timing: &TimingModel, base: u64) {
        let dense = reg.dense_index();
        if !self.observed[dense] {
            self.observed[dense] = true;
            let rel = timing.reg_ready[dense].saturating_sub(base);
            self.rec_overflow |= rel > MAX_REL;
            self.rec_reg_idx.push(dense as u16);
            self.rec_reg_rels.push(rel);
        }
    }

    /// Captures one exactly-issued instruction into the pending recording.
    /// Must run *after* [`Self::observe_step`] and the exact issue.
    pub(crate) fn record_step(
        &mut self,
        info: &StepInfo,
        record: IssueRecord,
        detail: IssueDetail,
    ) {
        let base = self.rec_base;
        let loc = packed_loc(info);
        if let Some(cause) = record.cause {
            self.rec_stall[cause.index()] += detail.empty;
            self.rec_wait[cause.index()] += record.wait;
            self.rec_class_waits[info.class.index()] += record.wait;
            match cause {
                StallCause::FuBusy { unit } => self.rec_fu_waits[unit] += record.wait,
                StallCause::RawInterlock { reg } | StallCause::WawInterlock { reg } => {
                    // `written` has not yet been updated for this step's
                    // def, so it reflects exactly the writer state the
                    // exact model charged against.
                    let dense = reg.dense_index();
                    if self.written[dense] {
                        self.rec_static_charges
                            .push((self.writer_in_trace[dense], record.wait));
                    } else {
                        self.rec_live_charges.push((dense as u16, record.wait));
                    }
                }
                _ => {}
            }
        }
        if detail.count_issue {
            self.rec_issue_cycles += 1;
        }
        let drain_rel = record.drain - base;
        self.rec_max_drain = self.rec_max_drain.max(drain_rel);
        let (def_dense, def_ready_rel, def_writer) = match info.def {
            Some(def) => {
                let dense = def.dense_index();
                if !self.written[dense] {
                    self.written[dense] = true;
                    self.written_list.push(dense as u16);
                }
                self.writer_in_trace[dense] = loc;
                let ready = if matches!(def, Reg::Vec(_)) {
                    record.complete
                } else {
                    record.drain
                };
                (dense as u16, ready - base, loc)
            }
            None => (NO_DEF, 0, 0),
        };
        self.rec_steps.push(ReplayStep {
            loc,
            control: info.control,
            expected_vlen: info.vlen,
            class: info.class.index() as u16,
            mem_rel: detail.mem_constraint.saturating_sub(base),
            issue_rel: record.issue - base,
            complete_rel: record.complete - base,
            drain_rel,
            wait: record.wait,
            empty: detail.empty,
            cause: record.cause,
            advance: detail.advance,
            count_issue: detail.count_issue,
            fu: detail.fu as u16,
            slot_free_rel: detail.slot_free - base,
            def_dense,
            def_ready_rel,
            def_writer,
        });
    }

    /// Steps recorded so far in the pending recording.
    pub(crate) fn recorded_len(&self) -> usize {
        self.rec_steps.len()
    }

    /// Installs the pending recording as a variant of `block` (or discards
    /// it on spec overflow), reading the trace's exit state from `timing`.
    pub(crate) fn finish_recording(&mut self, block: u32, timing: &TimingModel) {
        if self.rec_overflow || self.rec_steps.is_empty() {
            self.stats.overflows += 1;
            self.rec_steps.clear();
            return;
        }
        let base = self.rec_base;
        let mut summary = Summary {
            len: self.rec_steps.len() as u32,
            end_issued: timing.issued_in_cycle,
            issue_cycles_delta: self.rec_issue_cycles,
            end_cur_rel: timing.cur_cycle - base,
            end_csu_rel: timing.control_stall_until.saturating_sub(base),
            csu_excl_last_rel: self.rec_csu_prev.saturating_sub(base),
            max_drain_rel: self.rec_max_drain,
            stall_delta: self.rec_stall,
            wait_delta: self.rec_wait,
            ..Summary::default()
        };
        for (class, &wait) in self.rec_class_waits.iter().enumerate() {
            if wait > 0 {
                summary.class_waits.push((class as u16, wait));
            }
        }
        for (unit, &wait) in self.rec_fu_waits.iter().enumerate() {
            if wait > 0 {
                summary.fu_waits.push((unit as u16, wait));
            }
        }
        if !timing.producer_bases.is_empty() {
            for &(packed, wait) in &self.rec_static_charges {
                let func = (packed >> 32) as usize;
                let pc = packed & 0xFFFF_FFFF;
                if let Some(&fbase) = timing.producer_bases.get(func) {
                    summary.static_charges.push(((fbase + pc) as u32, wait));
                }
            }
        }
        summary.live_charges = self.rec_live_charges.clone();
        for &dense in &self.written_list {
            summary.reg_finals.push((
                dense,
                timing.reg_ready[dense as usize].saturating_sub(base),
                timing.reg_writer[dense as usize],
            ));
        }
        for &fu in &self.fu_touched {
            for (slot, &free) in timing.fu_slots[fu as usize].iter().enumerate() {
                summary
                    .fu_slot_finals
                    .push((fu, slot as u16, free.saturating_sub(base)));
            }
        }
        summary.self_replayable = self.self_replay_check(&summary, base, timing);
        let hot = self
            .rec_steps
            .iter()
            .map(|step| HotStep {
                loc: step.loc,
                mem_rel: step.mem_rel,
                drain_rel: step.drain_rel,
                expected_vlen: step.expected_vlen,
                control: step.control,
            })
            .collect();
        let variant = Variant {
            hot,
            spec: Spec {
                flags: self.rec_flags,
                csu_rel: self.rec_csu_rel,
                reg_idx: std::mem::take(&mut self.rec_reg_idx),
                reg_rels: std::mem::take(&mut self.rec_reg_rels),
                fu_units: self.fu_touched.clone(),
                fu_rels: std::mem::take(&mut self.rec_fu_rels),
            },
            steps: std::mem::take(&mut self.rec_steps),
            summary,
        };
        let entry = &mut self.traces[block as usize];
        if entry.variants.len() < MAX_VARIANTS {
            entry.variants.push(variant);
        } else {
            entry.variants[entry.next_evict] = variant;
            entry.next_evict = (entry.next_evict + 1) % MAX_VARIANTS;
            self.stats.evictions += 1;
        }
    }

    /// Whether the pending recording's exit state provably re-satisfies
    /// its own entry spec at the post-trace entry cycle `base +
    /// end_cur_rel`. Every spec component's post-completion value is a
    /// deterministic function of the spec and the summary — written
    /// registers and touched-unit slots are set absolutely by
    /// [`apply_summary`], the rest shift with the base — so one check at
    /// recording time certifies every future back-to-back replay.
    fn self_replay_check(&self, summary: &Summary, base: u64, timing: &TimingModel) -> bool {
        let delta = summary.end_cur_rel;
        // Entry flags must recur: past the run's first instruction (bit 0
        // clear) and the exit issue-slot count equal to the entry's.
        if self.rec_flags & 1 != 0 || self.rec_flags >> 1 != u64::from(summary.end_issued) {
            return false;
        }
        // Exit control-stall horizon is `max(entry, base + end_csu_rel)`;
        // relative to the new base it must reproduce the spec value.
        if self
            .rec_csu_rel
            .max(summary.end_csu_rel)
            .saturating_sub(delta)
            != self.rec_csu_rel
        {
            return false;
        }
        for (&reg, &rel) in self.rec_reg_idx.iter().zip(&self.rec_reg_rels) {
            // Written spec registers exit at their recorded final; unwritten
            // ones keep their entry value, which merely shifts with the
            // base. Either way the old-base-relative exit value is exact
            // (in-trace writes are never below the entry cycle), and
            // saturation at the new base is the spec's own equivalence.
            let exit_rel = if self.written[usize::from(reg)] {
                timing.reg_ready[usize::from(reg)].saturating_sub(base)
            } else {
                rel
            };
            if exit_rel.saturating_sub(delta) != rel {
                return false;
            }
        }
        let mut rels = self.rec_fu_rels.iter();
        for &fu in &self.fu_touched {
            for &free in &timing.fu_slots[usize::from(fu)] {
                let &rel = rels
                    .next()
                    .expect("fu_rels covers every slot of every unit");
                if free.saturating_sub(base).saturating_sub(delta) != rel {
                    return false;
                }
            }
        }
        true
    }

    /// Replays a whole trace in bulk, driving the executor itself: each
    /// step is verified (location, control outcome, vector length, memory
    /// constraint) and applies only its live memory effects; all other
    /// timing state is deferred to one aggregated summary at trace end.
    ///
    /// On divergence the verified prefix is materialized exactly — the
    /// recorded per-step values are what the exact model would have
    /// written — and the diverging step is handed back for exact issue.
    ///
    /// # Errors
    ///
    /// Propagates executor faults.
    pub(crate) fn replay_trace(
        &mut self,
        block: u32,
        variant: u32,
        base: u64,
        first: &StepInfo,
        exec: &mut Executor<'_>,
        timing: &mut TimingModel,
    ) -> Result<TraceRun, SimError> {
        let v = &self.traces[block as usize].variants[variant as usize];
        let steps: &[ReplayStep] = &v.steps;
        let summary = &v.summary;
        let mut info = *first;
        let mut pos = 0_usize;
        let mut iter = v.hot.iter();
        // Whether the trace completed with its recorded exit state (the
        // benign control-exit applies a live outcome instead, which voids
        // the self-replay certificate below).
        let mut exact_exit = false;
        let (outcome, replayed) = loop {
            let step = iter.next().expect("replay never runs past the recording");
            let loc_ok = packed_loc(&info) == step.loc && info.vlen == step.expected_vlen;
            let control_ok = info.control == step.control;
            let mut ok = loc_ok && control_ok;
            if ok {
                if let Some((addr, is_store)) = info.mem {
                    let span = (info.vlen.max(1)) as usize;
                    let end = (addr + span).min(timing.mem_ready.len());
                    let mut constraint = 0_u64;
                    for a in addr..end {
                        constraint = constraint.max(timing.mem_ready.get(a));
                    }
                    if constraint.saturating_sub(base) == step.mem_rel {
                        if is_store {
                            let drain = base + step.drain_rel;
                            for a in addr..end {
                                timing.mem_ready.set(a, drain);
                            }
                        }
                    } else {
                        ok = false;
                    }
                }
            }
            if !ok {
                // Control-only divergence at the final step — the common
                // loop-exit case (the recorded back-edge was not taken, or
                // vice versa). A control instruction's issue timing is
                // outcome-independent, so the whole summary still applies;
                // only the control-stall horizon comes from the live
                // outcome instead of the recording.
                if loc_ok && !control_ok && pos + 1 == steps.len() && info.mem.is_none() {
                    let last = &steps[pos];
                    apply_summary(summary, base, timing, summary.csu_excl_last_rel);
                    let transfers = matches!(
                        info.control,
                        ControlEvent::Branch { taken: true }
                            | ControlEvent::Jump
                            | ControlEvent::Call
                            | ControlEvent::Return
                    );
                    if transfers {
                        if !timing.perfect_branch_prediction {
                            timing.control_stall_until =
                                timing.control_stall_until.max(base + last.complete_rel);
                        }
                        if timing.taken_branch_breaks_issue {
                            timing.control_stall_until =
                                timing.control_stall_until.max(base + last.issue_rel + 1);
                        }
                    }
                    break (TraceRun::Completed, steps.len() as u64);
                }
                // Materialize the verified prefix. Memory-scoreboard
                // writes are skipped: verification already applied them
                // live.
                for prev in &steps[..pos] {
                    apply_recorded_step(prev, base, timing, None);
                }
                break (TraceRun::Diverged(info), pos as u64);
            }
            pos += 1;
            if pos == steps.len() {
                apply_summary(summary, base, timing, summary.end_csu_rel);
                exact_exit = true;
                break (TraceRun::Completed, pos as u64);
            }
            match exec.step()? {
                Some(next) => info = next,
                None => break (TraceRun::Ended, pos as u64),
            }
        };
        // Renew or void the re-entry certificate for the next visit.
        if exact_exit && summary.self_replayable {
            self.reentry_loc = v.hot[0].loc;
            self.reentry_block = block;
            self.reentry_variant = variant;
        } else {
            self.reentry_loc = u64::MAX;
        }
        self.stats.replayed_instructions += replayed;
        if matches!(outcome, TraceRun::Diverged(_)) {
            self.stats.fallbacks += 1;
        }
        Ok(outcome)
    }

    /// Replays step `pos` of the chosen variant one instruction at a time
    /// (the sink-attached path, which must emit per-instruction records):
    /// verifies the step, then applies the recorded state updates with
    /// live memory effects. Returns the issue record and whether the trace
    /// is finished, or `None` (leaving the state untouched — the eager
    /// per-step application means the prefix is already exact) when
    /// verification fails.
    pub(crate) fn replay_step(
        &mut self,
        block: u32,
        variant: u32,
        pos: u32,
        base: u64,
        info: &StepInfo,
        timing: &mut TimingModel,
    ) -> Option<(IssueRecord, bool)> {
        let v = &self.traces[block as usize].variants[variant as usize];
        let step = &v.steps[pos as usize];
        if packed_loc(info) != step.loc
            || info.control != step.control
            || info.vlen != step.expected_vlen
        {
            return None;
        }
        if let Some((addr, _)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            let mut constraint = 0_u64;
            for a in addr..(addr + span).min(timing.mem_ready.len()) {
                constraint = constraint.max(timing.mem_ready.get(a));
            }
            if constraint.saturating_sub(base) != step.mem_rel {
                return None;
            }
        }
        let record = apply_recorded_step(step, base, timing, Some(info));
        let done = pos + 1 == v.summary.len;
        self.stats.replayed_instructions += 1;
        Some((record, done))
    }
}

/// Applies one recorded step's state updates — the same writes
/// [`TimingModel::issue_with_detail`] performs, fed from recorded values.
///
/// With `live` present (per-step replay), memory-scoreboard writes use the
/// live addresses; without it (prefix materialization), they are skipped
/// because bulk verification already applied them.
fn apply_recorded_step(
    step: &ReplayStep,
    base: u64,
    timing: &mut TimingModel,
    live: Option<&StepInfo>,
) -> IssueRecord {
    let t = base + step.issue_rel;
    let complete = base + step.complete_rel;
    let drain = base + step.drain_rel;
    if let Some(cause) = step.cause {
        timing.stall_cycles[cause.index()] += step.empty;
        timing.wait_cycles[cause.index()] += step.wait;
        timing.class_waits[step.class as usize] += step.wait;
        match cause {
            StallCause::FuBusy { unit } => timing.fu_waits[unit] += step.wait,
            StallCause::RawInterlock { reg } | StallCause::WawInterlock { reg } => {
                // The writer table is updated in step order below, so this
                // live lookup sees exactly what the exact model saw.
                timing.charge_producer(reg, step.wait);
            }
            _ => {}
        }
    }
    if step.count_issue {
        timing.issue_cycles += 1;
    }
    if step.advance {
        timing.cur_cycle = t;
        timing.issued_in_cycle = 1;
    } else {
        timing.issued_in_cycle += 1;
    }
    timing.reserve_slot(step.fu as usize, base + step.slot_free_rel);
    if step.def_dense != NO_DEF {
        timing.reg_ready[step.def_dense as usize] = base + step.def_ready_rel;
        timing.reg_writer[step.def_dense as usize] = step.def_writer;
    }
    if let Some(info) = live {
        if let Some((addr, true)) = info.mem {
            let span = (info.vlen.max(1)) as usize;
            for a in addr..(addr + span).min(timing.mem_ready.len()) {
                timing.mem_ready.set(a, drain);
            }
        }
    }
    timing.last_completion = timing.last_completion.max(drain);
    // The recorded control outcome is verified equal to the live one, so
    // applying from the recording is applying the live behaviour.
    let transfers = matches!(
        step.control,
        ControlEvent::Branch { taken: true }
            | ControlEvent::Jump
            | ControlEvent::Call
            | ControlEvent::Return
    );
    if transfers {
        if !timing.perfect_branch_prediction {
            timing.control_stall_until = timing.control_stall_until.max(complete);
        }
        if timing.taken_branch_breaks_issue {
            timing.control_stall_until = timing.control_stall_until.max(t + 1);
        }
    }
    timing.instructions += 1;
    IssueRecord {
        issue: t,
        complete,
        drain,
        wait: step.wait,
        cause: step.cause,
    }
}

/// Applies a trace's aggregated state delta after full verification.
/// `csu_rel` is the control-stall horizon to apply — the summary's own
/// exit value normally, or the excluding-last-step value when the final
/// step's control outcome diverged and is applied live by the caller.
fn apply_summary(s: &Summary, base: u64, timing: &mut TimingModel, csu_rel: u64) {
    for i in 0..NUM_STALL_KINDS {
        timing.stall_cycles[i] += s.stall_delta[i];
        timing.wait_cycles[i] += s.wait_delta[i];
    }
    for &(class, wait) in &s.class_waits {
        timing.class_waits[class as usize] += wait;
    }
    for &(unit, wait) in &s.fu_waits {
        timing.fu_waits[unit as usize] += wait;
    }
    timing.issue_cycles += s.issue_cycles_delta;
    timing.cur_cycle = base + s.end_cur_rel;
    timing.issued_in_cycle = s.end_issued;
    timing.control_stall_until = timing.control_stall_until.max(base + csu_rel);
    timing.last_completion = timing.last_completion.max(base + s.max_drain_rel);
    if !timing.producer_waits.is_empty() {
        for &(flat, wait) in &s.static_charges {
            if let Some(slot) = timing.producer_waits.get_mut(flat as usize) {
                *slot += wait;
            }
        }
    }
    // Live charges read the writer table before `reg_finals` below
    // overwrites it — the order the exact model observed.
    for &(dense, wait) in &s.live_charges {
        timing.charge_producer_dense(dense as usize, wait);
    }
    for &(dense, ready_rel, writer) in &s.reg_finals {
        timing.reg_ready[dense as usize] = base + ready_rel;
        timing.reg_writer[dense as usize] = writer;
    }
    for &(fu, slot, free_rel) in &s.fu_slot_finals {
        timing.fu_slots[fu as usize][slot as usize] = base + free_rel;
    }
    timing.instructions += u64::from(s.len);
}

/// Whether every spec component matches the live timing state at entry
/// cycle `base` (with `flags` precomputed by the caller).
fn spec_matches(spec: &Spec, timing: &TimingModel, base: u64, flags: u64) -> bool {
    if spec.flags != flags || timing.control_stall_until.saturating_sub(base) != spec.csu_rel {
        return false;
    }
    for (&reg, &rel) in spec.reg_idx.iter().zip(&spec.reg_rels) {
        if timing.reg_ready[reg as usize].saturating_sub(base) != rel {
            return false;
        }
    }
    let mut rels = spec.fu_rels.iter();
    for &fu in &spec.fu_units {
        for &live in &timing.fu_slots[fu as usize] {
            let &rel = rels
                .next()
                .expect("fu_rels covers every slot of every unit");
            if live.saturating_sub(base) != rel {
                return false;
            }
        }
    }
    true
}
