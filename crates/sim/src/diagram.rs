//! ASCII pipeline diagrams (the paper's Figures 2-1 through 2-8).
//!
//! Diagrams are rendered from the actual [`TimingModel`], not drawn by hand:
//! a stream of independent single-cycle instructions is issued into the
//! machine description and each instruction's fetch/decode/execute/writeback
//! occupancy is plotted against time in base cycles.

use crate::exec::{ControlEvent, StepInfo};
use crate::timing::{IssueRecord, StallCause, TimingModel};
use supersym_isa::{FuncId, InstrClass, IntReg, Reg};
use supersym_machine::MachineConfig;

/// One diagram row: `(issue, last execute+1, stall span)` in machine
/// cycles. The stall span is how many `s` columns precede execute —
/// interlock waits only; routine issue-width deferrals are not drawn
/// (every instruction on a width-1 machine would otherwise carry one).
fn row(record: &IssueRecord, end: u64) -> (u64, u64, u64) {
    let span = match record.cause {
        Some(StallCause::IssueWidth) | None => 0,
        Some(_) => record.wait,
    };
    (record.issue, end, span)
}

/// Renders the execution of `n` independent instructions on `config` as an
/// ASCII pipeline diagram.
///
/// Each row is one instruction. `F` is fetch, `D` decode, `E` the execute
/// pipestage(s) (cross-hatched in the paper's figures), `W` writeback. One
/// character column is one *machine* cycle; the axis below the diagram marks
/// base-cycle boundaries.
///
/// ```
/// use supersym_machine::presets;
/// use supersym_sim::diagram::pipeline_diagram;
/// let text = pipeline_diagram(&presets::base(), 4);
/// assert!(text.contains('E'));
/// ```
#[must_use]
pub fn pipeline_diagram(config: &MachineConfig, n: usize) -> String {
    let mut timing = TimingModel::new(config, 16);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let dst = IntReg::new_unchecked((i % 24) as u8 + 1);
        let info = StepInfo {
            func: FuncId::new(0),
            pc: i,
            class: InstrClass::IntAdd,
            uses: Default::default(),
            def: Some(Reg::Int(dst)),
            mem: None,
            vlen: 0,
            control: ControlEvent::None,
        };
        let record = timing.issue(&info);
        rows.push(row(&record, record.complete));
    }
    render_rows(config, &rows, "instr")
}

/// Renders a vector instruction stream (Figure 2-8), measured through the
/// timing model: each vector instruction issues once and then performs one
/// element operation per cycle on its functional unit; a dependent chain of
/// vector operations overlaps (chaining).
#[must_use]
pub fn vector_diagram(vector_length: u32, n: usize) -> String {
    use supersym_isa::VecReg;
    let config = supersym_machine::presets::base();
    let mut timing = TimingModel::new(&config, 256);
    let mut rows = Vec::with_capacity(n);
    let uses = |k: usize| {
        // Build a Uses set by synthesizing a real instruction.
        let instr = supersym_isa::Instr::VOp {
            op: supersym_isa::FpOp::FAdd,
            dst: VecReg::new_unchecked((k % 4) as u8 + 1),
            lhs: VecReg::new_unchecked((k % 4) as u8),
            rhs: VecReg::new_unchecked((k % 4) as u8),
        };
        (instr.uses(), instr.def())
    };
    for i in 0..n {
        let (u, d) = uses(i);
        let info = StepInfo {
            func: FuncId::new(0),
            pc: i,
            class: InstrClass::FpAdd,
            uses: u,
            def: d,
            mem: None,
            vlen: vector_length,
            control: ControlEvent::None,
        };
        let record = timing.issue(&info);
        rows.push(row(&record, record.drain));
    }
    render_rows(&config, &rows, "vinstr")
}

fn render_rows(config: &MachineConfig, rows: &[(u64, u64, u64)], label: &str) -> String {
    // Fetch/decode occupy the two machine cycles before issue (before any
    // interlock stall); shift everything so the first fetch lands at
    // column 0. Stalled decode cycles render as `s`.
    let lead = 2_u64;
    let max_col = rows
        .iter()
        .map(|&(_, complete, _)| complete + 1)
        .max()
        .unwrap_or(0)
        + lead;
    let mut out = String::new();
    out.push_str(&format!("{}\n", config.name()));
    for (index, &(issue, complete, stall)) in rows.iter().enumerate() {
        let mut line = vec![b' '; (max_col + lead) as usize];
        let fetched = issue - stall;
        let fetch = fetched + lead - 2;
        let decode = fetched + lead - 1;
        line[fetch as usize] = b'F';
        line[decode as usize] = b'D';
        for cycle in fetched..issue {
            line[(cycle + lead) as usize] = b's';
        }
        for cycle in issue..complete {
            line[(cycle + lead) as usize] = b'E';
        }
        line[(complete + lead) as usize] = b'W';
        out.push_str(&format!(
            "{label}{index:<3} {}\n",
            String::from_utf8_lossy(&line).trim_end()
        ));
    }
    // Base-cycle axis: a tick every `pipe_degree` machine cycles.
    let degree = u64::from(config.pipe_degree());
    let mut axis = String::new();
    for col in 0..(max_col + lead) {
        axis.push(if col % degree == 0 { '|' } else { '.' });
    }
    out.push_str(&format!("{:8} {axis}\n", "base t"));
    out.push_str(&format!("{:8} (one column = 1/{degree} base cycle)\n", ""));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_machine::presets;

    #[test]
    fn base_machine_diagonal() {
        let text = pipeline_diagram(&presets::base(), 3);
        // Three instruction rows plus header and axis.
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("instr")).collect();
        assert_eq!(rows.len(), 3);
        // Each row has exactly one execute slot on the base machine.
        for row in rows {
            assert_eq!(row.matches('E').count(), 1);
        }
    }

    #[test]
    fn superscalar_shares_columns() {
        let text = pipeline_diagram(&presets::ideal_superscalar(3), 3);
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("instr")).collect();
        // All three issue in the same cycle: E in the same column.
        let positions: Vec<usize> = rows.iter().map(|r| r.find('E').unwrap()).collect();
        assert_eq!(positions[0], positions[1]);
        assert_eq!(positions[1], positions[2]);
    }

    #[test]
    fn superpipelined_stretches_execute() {
        let text = pipeline_diagram(&presets::superpipelined(3), 2);
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("instr")).collect();
        // Execute occupies three machine cycles.
        assert_eq!(rows[0].matches('E').count(), 3);
        // Issue is staggered by one machine cycle.
        assert_eq!(rows[1].find('E').unwrap(), rows[0].find('E').unwrap() + 1);
    }

    #[test]
    fn vector_diagram_has_long_strings() {
        let text = vector_diagram(8, 2);
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("vinstr")).collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].matches('E').count() >= 8);
    }

    #[test]
    fn underpipelined_issue_every_other_cycle() {
        let text = pipeline_diagram(&presets::underpipelined_half_issue(), 2);
        let rows: Vec<&str> = text.lines().filter(|l| l.starts_with("instr")).collect();
        assert_eq!(rows[1].find('E').unwrap(), rows[0].find('E').unwrap() + 2);
    }
}
