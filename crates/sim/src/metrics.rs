//! Distribution metrics over the simulated issue stream.
//!
//! The paper's aggregate numbers (cycles, available parallelism, the
//! per-cause [`CycleAccount`](crate::CycleAccount)) say *how much* time was
//! lost but not *in what shape*. Two distributions answer the shape
//! question:
//!
//! * **stall-run length** — how many consecutive machine cycles pass with
//!   no issue at all. A superscalar machine losing cycles in long runs is
//!   starved by dependences; one losing them in many length-1 gaps is
//!   limited by issue width.
//! * **per-block ILP** — dynamic instructions per issue cycle within each
//!   straight-line run of consecutive `pc`s, scaled by 100 (the registry
//!   has no fractional histogram). The paper's Figure 3-3 point that
//!   basic-block boundaries cap parallelism shows up directly here.
//!
//! [`MetricsSink`] implements [`TraceSink`], so it stacks behind
//! `simulate_with_sink` like any other observer: allocation-free per event
//! (both histograms are fixed-size arrays), preserving the hot-path
//! contract.

use supersym_trace::{Histogram, IssueEvent, MetricsRegistry, TraceSink};

/// Collects stall-run-length and per-block ILP histograms from an issue
/// stream. Feed it to `simulate_with_sink`, call
/// [`finish`](MetricsSink::finish), then fold into a registry with
/// [`register`](MetricsSink::register).
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    stall_runs: Histogram,
    block_ilp_x100: Histogram,
    /// Issue cycle of the most recent instruction, if any.
    last_issue: Option<u64>,
    /// `(func, pc)` of the most recent instruction.
    last_at: Option<(u32, u64)>,
    /// First issue cycle of the current straight-line block.
    block_start: u64,
    /// Dynamic instructions in the current block.
    block_instrs: u64,
    finished: bool,
}

impl MetricsSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MetricsSink::default()
    }

    fn close_block(&mut self, last_issue: u64) {
        if self.block_instrs == 0 {
            return;
        }
        let cycles = last_issue.saturating_sub(self.block_start) + 1;
        self.block_ilp_x100.record(self.block_instrs * 100 / cycles);
        self.block_instrs = 0;
    }

    /// Closes the in-progress block. Idempotent; call after the run.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(last) = self.last_issue {
            self.close_block(last);
        }
    }

    /// The stall-run-length histogram (machine cycles with no issue).
    #[must_use]
    pub fn stall_runs(&self) -> &Histogram {
        &self.stall_runs
    }

    /// The per-block ILP histogram, values scaled by 100.
    #[must_use]
    pub fn block_ilp_x100(&self) -> &Histogram {
        &self.block_ilp_x100
    }

    /// Folds both histograms into `registry` as `sim.stall_run_length`
    /// and `sim.block_ilp_x100`. Calls [`finish`](MetricsSink::finish)
    /// first so the trailing block is counted.
    pub fn register(&mut self, registry: &mut MetricsRegistry) {
        self.finish();
        registry.histogram("sim.stall_run_length", &self.stall_runs);
        registry.histogram("sim.block_ilp_x100", &self.block_ilp_x100);
    }
}

impl TraceSink for MetricsSink {
    fn issue(&mut self, event: &IssueEvent) {
        if let Some(last) = self.last_issue {
            let gap = event.issue.saturating_sub(last + 1);
            if gap > 0 {
                self.stall_runs.record(gap);
            }
        }
        let sequential = matches!(
            self.last_at,
            Some((func, pc)) if func == event.func && event.pc == pc + 1
        );
        let same_pc = self.last_at == Some((event.func, event.pc));
        if !(sequential || same_pc) {
            if let Some(last) = self.last_issue {
                self.close_block(last);
            }
            self.block_start = event.issue;
        }
        self.block_instrs += 1;
        self.last_issue = Some(event.issue);
        self.last_at = Some((event.func, event.pc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(func: u32, pc: u64, issue: u64) -> IssueEvent {
        IssueEvent {
            func,
            pc,
            class: "intadd",
            issue,
            complete: issue + 1,
            drain: issue + 1,
            wait: 0,
            cause: None,
        }
    }

    #[test]
    fn gaps_between_issues_become_stall_runs() {
        let mut sink = MetricsSink::new();
        // Issues at cycles 0, 1, 4, 10: runs of length 2 and 5.
        for (pc, cycle) in [(0, 0), (1, 1), (2, 4), (3, 10)] {
            sink.issue(&at(0, pc, cycle));
        }
        sink.finish();
        assert_eq!(sink.stall_runs().count(), 2);
        assert_eq!(sink.stall_runs().sum(), 7);
        assert_eq!(sink.stall_runs().max(), 5);
    }

    #[test]
    fn straight_line_runs_become_blocks() {
        let mut sink = MetricsSink::new();
        // Block 1: pcs 10..13 issued over cycles 0..2 → ILP 4/3 → 133.
        for (pc, cycle) in [(10, 0), (11, 0), (12, 1), (13, 2)] {
            sink.issue(&at(0, pc, cycle));
        }
        // Taken branch: block 2 is a single instruction → ILP 100.
        sink.issue(&at(0, 40, 5));
        let mut registry = MetricsRegistry::new();
        sink.register(&mut registry);
        let ilp = sink.block_ilp_x100();
        assert_eq!(ilp.count(), 2);
        assert_eq!(ilp.min(), 100);
        assert_eq!(ilp.max(), 133);
        assert!(registry.get("sim.block_ilp_x100").is_some());
        assert!(registry.get("sim.stall_run_length").is_some());
    }

    #[test]
    fn finish_is_idempotent_and_register_counts_the_tail_block() {
        let mut sink = MetricsSink::new();
        sink.issue(&at(0, 0, 0));
        sink.finish();
        sink.finish();
        assert_eq!(sink.block_ilp_x100().count(), 1);
    }

    #[test]
    fn empty_stream_registers_empty_histograms() {
        let mut sink = MetricsSink::new();
        let mut registry = MetricsRegistry::new();
        sink.register(&mut registry);
        assert!(sink.stall_runs().is_empty());
        assert!(sink.block_ilp_x100().is_empty());
    }
}
