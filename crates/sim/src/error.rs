//! Simulator error type.

use std::error::Error;
use std::fmt;
use supersym_isa::{FuncId, IsaError};

/// Errors raised while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program failed static validation.
    InvalidProgram(IsaError),
    /// A memory access fell outside the simulated memory.
    MemoryOutOfBounds {
        /// The faulting word address.
        addr: i64,
        /// Size of the simulated memory, in words.
        memory_words: usize,
    },
    /// The call stack exceeded its depth limit.
    CallStackOverflow {
        /// The depth limit that was exceeded.
        limit: usize,
    },
    /// Execution ran past the end of a function without `ret` or `halt`.
    FellOffFunction(FuncId),
    /// Execution exceeded the configured step limit (runaway program).
    StepLimitExceeded {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// A `call` targeted a function id outside the program. Unreachable
    /// after [`supersym_isa::Program::validate`], but the executor must not
    /// trust that coupling: torture-mutated programs reach `step` however
    /// they can.
    UnknownFunction(FuncId),
    /// A branch or jump named a label with no slot in its function's table.
    /// Like [`SimError::UnknownFunction`], a typed backstop behind the
    /// static validator.
    DanglingLabel {
        /// The function the branch executed in.
        func: FuncId,
        /// The offending label slot.
        slot: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            SimError::MemoryOutOfBounds { addr, memory_words } => {
                write!(f, "memory access at word {addr} outside 0..{memory_words}")
            }
            SimError::CallStackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            SimError::FellOffFunction(id) => {
                write!(f, "execution fell off the end of function {id}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded the step limit of {limit}")
            }
            SimError::UnknownFunction(id) => {
                write!(f, "call to unknown function {id}")
            }
            SimError::DanglingLabel { func, slot } => {
                write!(f, "branch in {func} to label slot {slot} with no target")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(e: IsaError) -> Self {
        SimError::InvalidProgram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::MemoryOutOfBounds {
            addr: -1,
            memory_words: 100,
        };
        assert_eq!(e.to_string(), "memory access at word -1 outside 0..100");
        assert!(e.source().is_none());

        let inner = IsaError::MissingEntry;
        let e = SimError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
