//! # supersym-sim
//!
//! The instruction-level simulator of the supersym system.
//!
//! The paper (§3): "The language system then optimizes the code, allocates
//! registers, and schedules the instructions for the pipeline, all according
//! to this specification. The simulator executes the program according to
//! the same specification." This crate is that simulator:
//!
//! * [`Executor`] — architectural (functional) execution of a
//!   `supersym-isa` [`Program`](supersym_isa::Program): registers, memory,
//!   call stack, dynamic instruction census;
//! * [`TimingModel`] — the parameterizable pipeline model: in-order issue
//!   limited by issue width, operand scoreboard interlocks (RAW, and
//!   conservative WAW — register reuse is a real dependence, §3), functional
//!   unit reservation (issue latency × multiplicity, §3), store-to-load
//!   memory interlocks, optional control latency;
//! * [`simulate`] — runs both together and reports cycles, available
//!   parallelism, and the class census; [`simulate_with_sink`] additionally
//!   streams one [`IssueEvent`](supersym_trace::IssueEvent) per dynamic
//!   instruction to a [`TraceSink`](supersym_trace::TraceSink);
//! * [`CycleAccount`] / [`StallCause`] — stall attribution: every cycle an
//!   instruction waits is charged to exactly one cause, and
//!   `issue + Σ stalls + drain == machine_cycles` holds exactly;
//! * [`Cache`] / [`CacheSystem`] — the cache simulator behind the paper's
//!   §5.1 cache-cost analysis;
//! * [`diagram`] — renders the paper's Figure 2-1…2-8 pipeline diagrams
//!   from actual timing-model output.
//!
//! ## Example
//!
//! ```
//! use supersym_isa::{AsmBuilder, IntReg};
//! use supersym_machine::presets;
//! use supersym_sim::simulate;
//!
//! // Figure 1-1(b): a serial chain has parallelism 1.
//! let mut asm = AsmBuilder::new("main");
//! let r2 = IntReg::new(2)?;
//! let r3 = IntReg::new(3)?;
//! let r4 = IntReg::new(4)?;
//! asm.add(r3, r3, 1.into());
//! asm.add(r4, r3, r2.into());
//! asm.store(r4, r4, 0);
//! asm.halt();
//! let program = asm.finish_program();
//!
//! let report = simulate(&program, &presets::ideal_superscalar(3), Default::default())?;
//! assert!(report.available_parallelism() < 1.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod block;
mod cache;
pub mod diagram;
mod error;
mod exec;
mod limits;
mod metrics;
mod paged;
mod report;
mod timing;

pub use block::BlockCacheStats;
pub use cache::{
    issue_speedup_with_miss_burden, Cache, CacheConfig, CacheStats, CacheSystem, MissCostRow,
};
pub use error::SimError;
pub use exec::{ControlEvent, ExecOptions, Executor, StepInfo};
pub use limits::{measure_limit, DataflowLimit, LimitOptions};
pub use metrics::MetricsSink;
pub use report::{
    simulate, simulate_with_cache, simulate_with_sink, CacheReport, CriticalProducer, SimOptions,
    SimReport,
};
pub use timing::{CycleAccount, IssueRecord, StallCause, TimingModel, NUM_STALL_KINDS};
