//! Coupled functional + timing simulation and its report.

use crate::block::{BlockCache, BlockCacheStats, BlockStart};
use crate::cache::{CacheConfig, CacheStats, CacheSystem};
use crate::error::SimError;
use crate::exec::{ExecOptions, Executor};
use crate::timing::{CycleAccount, TimingModel};
use supersym_isa::{ClassCensus, Program};
use supersym_machine::MachineConfig;
use supersym_trace::{BlockReplayEvent, IssueEvent, TraceSink};

/// Options for [`simulate`].
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Functional-execution options.
    pub exec: ExecOptions,
    /// Whether the block timing cache is enabled (default `true`). The
    /// cache is bit-exact — disabling it changes nothing but speed; the
    /// switch exists for differential testing and for measuring the cache
    /// itself.
    pub block_cache: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            exec: ExecOptions::default(),
            block_cache: true,
        }
    }
}

/// How many critical producers a [`SimReport`] keeps.
const MAX_PRODUCERS: usize = 16;

/// A static instruction whose result latency dynamic instructions waited
/// on (RAW or WAW), resolved to source coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalProducer {
    /// Function name.
    pub function: String,
    /// Instruction index within the function.
    pub pc: usize,
    /// Disassembled instruction text.
    pub instr: String,
    /// Total instruction-cycles consumers waited on this producer.
    pub wait_cycles: u64,
}

/// The result of simulating a program on a machine.
#[derive(Debug, Clone)]
pub struct SimReport {
    machine: String,
    instructions: u64,
    machine_cycles: u64,
    base_cycles: f64,
    census: ClassCensus,
    account: CycleAccount,
    producers: Vec<CriticalProducer>,
    block_cache: BlockCacheStats,
}

impl SimReport {
    /// The machine's name.
    #[must_use]
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Dynamic instruction count.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Elapsed machine cycles.
    #[must_use]
    pub fn machine_cycles(&self) -> u64 {
        self.machine_cycles
    }

    /// Elapsed time in base-machine cycles.
    #[must_use]
    pub fn base_cycles(&self) -> f64 {
        self.base_cycles
    }

    /// Dynamic instruction census by class.
    #[must_use]
    pub fn census(&self) -> &ClassCensus {
        &self.census
    }

    /// Where the machine cycles went: the stall-attribution account
    /// (cycle view conserves exactly; wait view rolls up per class, per
    /// functional unit, and per cause including issue width).
    #[must_use]
    pub fn cycle_account(&self) -> &CycleAccount {
        &self.account
    }

    /// The static instructions whose result latency was most waited on,
    /// sorted by descending wait cycles (at most 16 entries, zero-wait
    /// entries dropped).
    #[must_use]
    pub fn critical_producers(&self) -> &[CriticalProducer] {
        &self.producers
    }

    /// Block-timing-cache counters for the run (all zero when the cache
    /// was disabled or the run took a cache-free path).
    #[must_use]
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.block_cache
    }

    /// Instructions per base cycle. On an ideal machine of unlimited width
    /// and unit latencies this is the paper's *available instruction-level
    /// parallelism*; on real machines it is the sustained execution rate.
    #[must_use]
    pub fn available_parallelism(&self) -> f64 {
        if self.base_cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.base_cycles
        }
    }

    /// Speedup of `self` relative to `baseline` (same program assumed).
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.base_cycles / self.base_cycles
    }
}

/// Runs a program on a machine description.
///
/// Functional execution and timing run in lockstep: each architecturally
/// executed instruction is issued into the pipeline model of `config`.
///
/// # Errors
///
/// Propagates any [`SimError`] from execution.
pub fn simulate(
    program: &Program,
    config: &MachineConfig,
    options: SimOptions,
) -> Result<SimReport, SimError> {
    run_lockstep(program, config, options, None)
}

/// Runs a program on a machine description, streaming one
/// [`IssueEvent`] per dynamic instruction to `sink`.
///
/// The sink-free [`simulate`] path takes the same code path with no sink
/// attached; the difference per instruction is one branch and zero heap
/// allocations (asserted by the `no_alloc` integration test).
///
/// # Errors
///
/// Propagates any [`SimError`] from execution.
pub fn simulate_with_sink(
    program: &Program,
    config: &MachineConfig,
    options: SimOptions,
    sink: &mut dyn TraceSink,
) -> Result<SimReport, SimError> {
    run_lockstep(program, config, options, Some(sink))
}

/// Where the lockstep driver is within the current trace.
///
/// `Copy`, matched by value and reassigned explicitly — the state machine
/// only ever moves forward within a trace and resets at its boundary.
/// `entry` is the packed trace-entry location throughout (for the break
/// rule's loop-closure test and the telemetry event).
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// The next step enters a new trace; ask the cache what to do.
    Boundary,
    /// Run the exact model to the end of the trace (post-fallback).
    Exact { entry: u64 },
    /// Run the exact model, capturing a recording for `block`.
    Recording { block: u32, entry: u64 },
    /// Replay a recorded variant, verifying each step.
    Replaying {
        block: u32,
        variant: u32,
        /// Steps replayed so far (index of the next step).
        pos: u32,
        /// Entry cycle the deltas are applied against.
        base: u64,
        entry: u64,
    },
}

fn issue_event(info: &crate::exec::StepInfo, record: crate::timing::IssueRecord) -> IssueEvent {
    IssueEvent {
        func: info.func.index() as u32,
        pc: info.pc as u64,
        class: info.class.mnemonic(),
        issue: record.issue,
        complete: record.complete,
        drain: record.drain,
        wait: record.wait,
        cause: record.cause.map(|cause| cause.label()),
    }
}

fn run_lockstep(
    program: &Program,
    config: &MachineConfig,
    options: SimOptions,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<SimReport, SimError> {
    let mut exec = Executor::new(program, options.exec)?;
    let mut timing = TimingModel::new(config, options.exec.memory_words);
    timing.track_producers(program);
    let stats = if options.block_cache {
        let mut cache = BlockCache::new(program, &timing);
        match sink.as_deref_mut() {
            None => run_bulk(&mut cache, &mut exec, &mut timing)?,
            Some(sink) => run_cached_with_sink(&mut cache, &mut exec, &mut timing, sink)?,
        }
        cache.stats
    } else {
        // Cache off: the plain lockstep loop, no trace bookkeeping at all.
        while let Some(info) = exec.step()? {
            let record = timing.issue(&info);
            if let Some(sink) = sink.as_deref_mut() {
                sink.issue(&issue_event(&info, record));
            }
        }
        BlockCacheStats::default()
    };
    Ok(finish_report(program, config, &exec, &timing, stats))
}

/// The sink-free cached loop — the hot path behind [`simulate`]. Replays
/// defer all timing-state writes to one aggregated delta per trace, so a
/// verified step costs a few compares plus the live memory effects.
///
/// Structured as nested loops rather than a per-step mode dispatch: each
/// trace visit runs one tight inner loop (replay, record, or exact tail)
/// with its state in locals, and `'trace` restarts at the next boundary.
///
/// The executor only returns `None` after a `Halt` step, and `Halt` always
/// ends a trace — so the inner loops' "stream ended" breaks are
/// unreachable-in-practice guards, not trace-state leaks.
fn run_bulk(
    cache: &mut BlockCache,
    exec: &mut Executor<'_>,
    timing: &mut TimingModel,
) -> Result<(), SimError> {
    use crate::block::{packed_loc, trace_break, TraceRun, MAX_TRACE_LEN};
    'trace: loop {
        let Some(first) = exec.step()? else {
            return Ok(());
        };
        let entry = packed_loc(&first);
        match cache.begin_block(&first, timing) {
            BlockStart::Record { block } => {
                let mut info = first;
                loop {
                    cache.observe_step(&info, timing);
                    let (record, detail) = timing.issue_with_detail(&info);
                    cache.record_step(&info, record, detail);
                    if trace_break(info.control, info.pc, exec.cursor(), entry)
                        || cache.recorded_len() >= MAX_TRACE_LEN
                    {
                        cache.finish_recording(block, timing);
                        continue 'trace;
                    }
                    match exec.step()? {
                        Some(next) => info = next,
                        None => return Ok(()),
                    }
                }
            }
            BlockStart::Replay {
                block,
                variant,
                base,
            } => match cache.replay_trace(block, variant, base, &first, exec, timing)? {
                TraceRun::Completed => {}
                TraceRun::Ended => return Ok(()),
                TraceRun::Diverged(diverged) => {
                    // The verified prefix has been materialized exactly;
                    // issue the diverging step on the exact model, then
                    // treat the divergence as a trace boundary. The next
                    // instruction starts a fresh trace, so divergent paths
                    // (loop exits, data-dependent branches) earn their own
                    // cached traces instead of replaying nothing.
                    timing.issue(&diverged);
                    continue 'trace;
                }
            },
        }
    }
}

/// The sink-attached cached loop: replays apply state per instruction so
/// every dynamic instruction still emits an exact [`IssueEvent`], plus one
/// [`BlockReplayEvent`] per finished or abandoned replay.
fn run_cached_with_sink(
    cache: &mut BlockCache,
    exec: &mut Executor<'_>,
    timing: &mut TimingModel,
    sink: &mut dyn TraceSink,
) -> Result<(), SimError> {
    use crate::block::{packed_loc, trace_break, MAX_TRACE_LEN};
    let replay_event = |entry: u64, base: u64, instructions: u32, hit: bool| BlockReplayEvent {
        func: (entry >> 32) as u32,
        pc: entry & 0xFFFF_FFFF,
        cycle: base,
        instructions,
        hit,
    };
    let mut mode = Mode::Boundary;
    while let Some(info) = exec.step()? {
        if let Mode::Boundary = mode {
            mode = match cache.begin_block(&info, timing) {
                BlockStart::Record { block, .. } => Mode::Recording {
                    block,
                    entry: packed_loc(&info),
                },
                BlockStart::Replay {
                    block,
                    variant,
                    base,
                } => Mode::Replaying {
                    block,
                    variant,
                    pos: 0,
                    base,
                    entry: packed_loc(&info),
                },
            };
        }
        let record = match mode {
            Mode::Boundary => unreachable!("boundary resolves before issue"),
            Mode::Exact { entry } => {
                let record = timing.issue(&info);
                if trace_break(info.control, info.pc, exec.cursor(), entry) {
                    mode = Mode::Boundary;
                }
                record
            }
            Mode::Recording { block, entry } => {
                cache.observe_step(&info, timing);
                let (record, detail) = timing.issue_with_detail(&info);
                cache.record_step(&info, record, detail);
                if trace_break(info.control, info.pc, exec.cursor(), entry)
                    || cache.recorded_len() >= MAX_TRACE_LEN
                {
                    cache.finish_recording(block, timing);
                    mode = Mode::Boundary;
                }
                record
            }
            Mode::Replaying {
                block,
                variant,
                pos,
                base,
                entry,
            } => match cache.replay_step(block, variant, pos, base, &info, timing) {
                Some((record, done)) => {
                    if done {
                        sink.block_replay(&replay_event(entry, base, pos + 1, true));
                        mode = Mode::Boundary;
                    } else {
                        mode = Mode::Replaying {
                            block,
                            variant,
                            pos: pos + 1,
                            base,
                            entry,
                        };
                    }
                    record
                }
                None => {
                    // Verification drift: the eagerly-applied prefix is
                    // already exact; finish the trace on the exact model.
                    cache.stats.fallbacks += 1;
                    sink.block_replay(&replay_event(entry, base, pos, false));
                    let record = timing.issue(&info);
                    mode = if trace_break(info.control, info.pc, exec.cursor(), entry) {
                        Mode::Boundary
                    } else {
                        Mode::Exact { entry }
                    };
                    record
                }
            },
        };
        sink.issue(&issue_event(&info, record));
    }
    Ok(())
}

/// Resolves the timing model's flat producer table against the program and
/// assembles the report.
fn finish_report(
    program: &Program,
    config: &MachineConfig,
    exec: &Executor<'_>,
    timing: &TimingModel,
    block_cache: BlockCacheStats,
) -> SimReport {
    let waits = timing.producer_waits();
    let mut producers: Vec<(usize, CriticalProducer)> = Vec::new();
    let mut flat = 0_usize;
    for function in program.functions() {
        for (pc, instr) in function.instrs().iter().enumerate() {
            let wait_cycles = waits.get(flat).copied().unwrap_or(0);
            if wait_cycles > 0 {
                producers.push((
                    flat,
                    CriticalProducer {
                        function: function.name().to_string(),
                        pc,
                        instr: instr.to_string(),
                        wait_cycles,
                    },
                ));
            }
            flat += 1;
        }
    }
    // Descending by wait; static program order breaks ties, so the table
    // is deterministic. `sort_unstable` allocates nothing.
    producers.sort_unstable_by(|a, b| b.1.wait_cycles.cmp(&a.1.wait_cycles).then(a.0.cmp(&b.0)));
    producers.truncate(MAX_PRODUCERS);
    let producers: Vec<CriticalProducer> = producers.into_iter().map(|(_, p)| p).collect();
    SimReport {
        machine: config.name().to_string(),
        instructions: timing.instructions(),
        machine_cycles: timing.machine_cycles(),
        base_cycles: timing.base_cycles(),
        census: *exec.census(),
        account: timing.account(),
        producers,
        block_cache,
    }
}

/// Cache behaviour observed during a [`simulate_with_cache`] run.
#[derive(Debug, Clone, Copy)]
pub struct CacheReport {
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Data-cache counters.
    pub dcache: CacheStats,
    /// Total misses per executed instruction.
    pub misses_per_instruction: f64,
}

impl CacheReport {
    /// Effective cycles per instruction once each miss costs
    /// `miss_penalty_cycles`: `base_cpi + misses/instr * penalty` (§5.1).
    #[must_use]
    pub fn effective_cpi(&self, base_cpi: f64, miss_penalty_cycles: f64) -> f64 {
        base_cpi + self.misses_per_instruction * miss_penalty_cycles
    }
}

/// Runs a program while also driving a split I/D cache system.
///
/// Instruction addresses place each function at a base address equal to the
/// cumulative instruction count of the functions before it (one word per
/// instruction); data addresses are the words actually touched.
///
/// # Errors
///
/// Propagates any [`SimError`] from execution.
pub fn simulate_with_cache(
    program: &Program,
    config: &MachineConfig,
    options: SimOptions,
    icache: CacheConfig,
    dcache: CacheConfig,
) -> Result<(SimReport, CacheReport), SimError> {
    // Function base addresses for I-fetch simulation.
    let mut bases = Vec::with_capacity(program.functions().len());
    let mut next = 0_u64;
    for function in program.functions() {
        bases.push(next);
        next += function.instrs().len() as u64;
    }

    let mut exec = Executor::new(program, options.exec)?;
    let mut timing = TimingModel::new(config, options.exec.memory_words);
    timing.track_producers(program);
    let mut caches = CacheSystem::new(icache, dcache);
    while let Some(info) = exec.step()? {
        timing.issue(&info);
        caches.fetch(bases[info.func.index()] + info.pc as u64);
        if let Some((addr, _)) = info.mem {
            caches.data(addr as u64);
        }
    }
    // The I/D-cache path drives the exact timing model directly (the block
    // cache memoizes only the issue model, not the cache system's access
    // stream — see DESIGN.md §12).
    let report = finish_report(program, config, &exec, &timing, BlockCacheStats::default());
    let cache_report = CacheReport {
        icache: caches.icache_stats(),
        dcache: caches.dcache_stats(),
        misses_per_instruction: caches.misses_per_instruction(report.instructions),
    };
    Ok((report, cache_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::{AsmBuilder, IntReg};
    use supersym_machine::presets;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn tiny_loop(iters: i64) -> Program {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), iters);
        asm.movi(r(3), 0);
        asm.bind(top);
        asm.add(r(3), r(3), 2.into());
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(2), r(1), 0.into());
        asm.br_true(r(2), top);
        asm.halt();
        asm.finish_program()
    }

    #[test]
    fn report_basic_invariants() {
        let program = tiny_loop(50);
        let report = simulate(&program, &presets::base(), SimOptions::default()).unwrap();
        assert!(report.instructions() > 150);
        assert!(report.base_cycles() >= report.instructions() as f64);
        assert!(report.available_parallelism() <= 1.0);
        assert_eq!(report.machine(), "base");
    }

    #[test]
    fn superscalar_speedup_on_loop() {
        let program = tiny_loop(100);
        let base = simulate(&program, &presets::base(), SimOptions::default()).unwrap();
        let ss4 = simulate(
            &program,
            &presets::ideal_superscalar(4),
            SimOptions::default(),
        )
        .unwrap();
        let speedup = ss4.speedup_over(&base);
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(speedup < 4.0);
    }

    #[test]
    fn cache_simulation_counts_fetches() {
        let program = tiny_loop(100);
        let (report, caches) = simulate_with_cache(
            &program,
            &presets::base(),
            SimOptions::default(),
            CacheConfig::small_direct(),
            CacheConfig::small_direct(),
        )
        .unwrap();
        assert_eq!(caches.icache.accesses, report.instructions());
        // A tiny loop fits in the I-cache: nearly all hits.
        assert!(caches.icache.miss_rate() < 0.05);
        let cpi = caches.effective_cpi(1.0, 10.0);
        assert!((1.0..2.0).contains(&cpi));
    }
}
