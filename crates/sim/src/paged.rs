//! A lazily populated, page-granular flat array.
//!
//! The executor's data memory and the timing model's store-to-load
//! scoreboard are both logically `memory_words` long (1 MiW by default) but
//! touch only a tiny, clustered fraction of that span per run: the globals
//! at the bottom and the stack at the top. Allocating and zeroing the full
//! dense vector dominated the cost of short simulations — it was most of
//! `Executor::new` and `TimingModel::new` in profile — so both now sit on
//! this structure: a page table of lazily allocated, zero-initialized
//! pages. Reads of an unmapped page return `T::default()` without mapping
//! it; only writes allocate.
//!
//! Semantics are identical to a dense `vec![T::default(); len]`: every
//! element reads as the default until written, and indexing past `len` is
//! a caller bug (bounds are checked by the callers before any access, as
//! they were for the dense vectors).

/// log2 of the page size in elements.
const PAGE_SHIFT: usize = 12;
/// Elements per page (4096 — 32 KiB of `u64`/`i64` per mapped page).
const PAGE_LEN: usize = 1 << PAGE_SHIFT;
/// Index mask within a page.
const PAGE_MASK: usize = PAGE_LEN - 1;

/// A fixed-length array whose zero pages are materialized on first write.
#[derive(Debug, Clone)]
pub(crate) struct PagedArray<T> {
    pages: Vec<Option<Box<[T; PAGE_LEN]>>>,
    len: usize,
}

impl<T: Copy + Default> PagedArray<T> {
    /// A logically zeroed array of `len` elements; allocates only the page
    /// table (one pointer per 4096 elements).
    pub(crate) fn new(len: usize) -> Self {
        let pages = len.div_ceil(PAGE_LEN);
        PagedArray {
            pages: (0..pages).map(|_| None).collect(),
            len,
        }
    }

    /// Logical length in elements.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Reads element `index` (`T::default()` when its page was never
    /// written).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub(crate) fn get(&self, index: usize) -> T {
        assert!(index < self.len, "PagedArray index {index} out of bounds");
        match &self.pages[index >> PAGE_SHIFT] {
            Some(page) => page[index & PAGE_MASK],
            None => T::default(),
        }
    }

    /// Writes element `index`, materializing its page if needed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub(crate) fn set(&mut self, index: usize, value: T) {
        assert!(index < self.len, "PagedArray index {index} out of bounds");
        let page = self.pages[index >> PAGE_SHIFT]
            .get_or_insert_with(|| Box::new([T::default(); PAGE_LEN]));
        page[index & PAGE_MASK] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_default_until_written() {
        let mut array: PagedArray<u64> = PagedArray::new(10_000);
        assert_eq!(array.len(), 10_000);
        assert_eq!(array.get(0), 0);
        assert_eq!(array.get(9_999), 0);
        array.set(9_999, 7);
        assert_eq!(array.get(9_999), 7);
        assert_eq!(array.get(9_998), 0);
    }

    #[test]
    fn pages_materialize_independently() {
        let mut array: PagedArray<i64> = PagedArray::new(3 * PAGE_LEN);
        array.set(PAGE_LEN + 1, -5);
        assert_eq!(array.get(PAGE_LEN + 1), -5);
        assert_eq!(array.get(0), 0);
        assert_eq!(array.get(2 * PAGE_LEN), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let array: PagedArray<u64> = PagedArray::new(5);
        let _ = array.get(5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics() {
        let mut array: PagedArray<u64> = PagedArray::new(5);
        array.set(5, 1);
    }
}
