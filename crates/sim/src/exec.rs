//! Architectural (functional) execution.
//!
//! The executor interprets a program one instruction at a time, maintaining
//! registers, word-addressed memory and a call stack. Each step reports a
//! compact [`StepInfo`] that the timing model and cache simulator consume,
//! so functional and timing simulation run in lockstep without materializing
//! a trace.

use crate::error::SimError;
use crate::paged::PagedArray;
use supersym_isa::{
    ClassCensus, FpCmpOp, FpOp, FuncId, Function, Instr, InstrClass, IntOp, IntReg, IsaError,
    Operand, Program, Reg, Uses, MAX_VLEN, NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS,
};

/// Control-flow outcome of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// Ordinary fall-through.
    None,
    /// A conditional branch, with its outcome.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// An unconditional jump.
    Jump,
    /// A call entered a new function.
    Call,
    /// A return to the caller.
    Return,
    /// The program halted.
    Halt,
}

/// What one executed instruction did, as needed by timing and cache models.
#[derive(Debug, Clone, Copy)]
pub struct StepInfo {
    /// The function executed in.
    pub func: FuncId,
    /// Index of the instruction within the function.
    pub pc: usize,
    /// The instruction's class.
    pub class: InstrClass,
    /// Registers read (zero register omitted).
    pub uses: Uses,
    /// Register written, if any (zero register omitted).
    pub def: Option<Reg>,
    /// First memory word touched, with `true` for stores.
    pub mem: Option<(usize, bool)>,
    /// Vector length of a vector instruction (0 for scalar instructions);
    /// vector memory operations touch `mem.0 .. mem.0 + vlen`.
    pub vlen: u32,
    /// Control-flow outcome.
    pub control: ControlEvent,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Simulated memory size in words (default 1 MiW = 8 MiB).
    pub memory_words: usize,
    /// Call-stack depth limit.
    pub max_call_depth: usize,
    /// Dynamic instruction limit (guards against runaway programs).
    pub max_steps: u64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            memory_words: 1 << 20,
            max_call_depth: 1 << 14,
            max_steps: 2_000_000_000,
        }
    }
}

/// Discriminant of a predecoded micro-operation. Operand-carrying opcode
/// families keep their sub-opcode inline so dispatch is one two-level match
/// with no further field decoding.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// Integer ALU, register right-hand side.
    IntOpR(IntOp),
    /// Integer ALU, immediate right-hand side (in `imm`).
    IntOpI(IntOp),
    MovI,
    FpOp(FpOp),
    FpCmp(FpCmpOp),
    /// `imm` holds the f64 payload as bits.
    MovF,
    FMov,
    IToF,
    FToI,
    Load,
    LoadF,
    Store,
    StoreF,
    SetVl,
    VLoad,
    VStore,
    VOp(FpOp),
    VOpS(FpOp),
    /// `imm` holds the pre-resolved target pc.
    Br {
        /// Branch sense: taken when `(cond != 0) == expect`.
        expect: bool,
    },
    /// `imm` holds the pre-resolved target pc.
    Jmp,
    /// `imm` holds the callee's function index.
    Call,
    Ret,
    Halt,
}

/// One predecoded micro-operation: the [`Instr`] payload flattened into a
/// fixed 16-byte record, with branch/jump labels resolved to instruction
/// indices so the hot loop never touches the label table.
///
/// Field meaning is per-kind: `dst`/`a`/`b` are register indices in
/// whichever file the opcode addresses (`a` is the left operand or address
/// base, `b` the right operand or store source), `imm` is the immediate,
/// address offset, f64 bit pattern, or resolved control target.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    dst: u8,
    a: u8,
    b: u8,
    imm: i64,
}

/// One predecoded instruction record: the executable [`Op`] plus the
/// [`StepInfo`] metadata (`class`/`uses`/`def` are pure functions of the
/// static instruction). One table keeps the per-step path to a single
/// indexed load.
#[derive(Debug, Clone, Copy)]
struct Decoded {
    op: Op,
    class: InstrClass,
    uses: Uses,
    def: Option<Reg>,
}

/// The architectural interpreter.
///
/// Constructed over a validated program; driven by [`Executor::step`] until
/// it reports `None` (halt).
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p Program,
    /// `decode_base[func]`, cached for the executing function.
    cur_base: usize,
    /// Instruction count of the executing function, cached likewise.
    cur_len: usize,
    /// Flat-table base offset of each function's instructions.
    decode_base: Vec<usize>,
    /// Instruction count per function.
    func_len: Vec<usize>,
    /// Predecode table, indexed by `decode_base[func] + pc`: everything
    /// the per-step path needs, computed once per static instruction at
    /// construction.
    decoded: Vec<Decoded>,
    int: [i64; NUM_INT_REGS],
    fp: [f64; NUM_FP_REGS],
    vec: [[f64; MAX_VLEN]; NUM_VEC_REGS],
    vl: usize,
    memory: PagedArray<i64>,
    func: FuncId,
    pc: usize,
    call_stack: Vec<(FuncId, usize)>,
    halted: bool,
    steps: u64,
    census: ClassCensus,
    options: ExecOptions,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the program entry.
    ///
    /// Initializes the stack pointer to the top of memory, the global
    /// pointer to the base of the global region (word 0), and loads the
    /// program's data image.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProgram`] if the program fails
    /// [`Program::validate`], and [`SimError::MemoryOutOfBounds`] if the
    /// globals or data image do not fit in memory.
    pub fn new(program: &'p Program, options: ExecOptions) -> Result<Self, SimError> {
        program.validate()?;
        // `validate` checks for an entry today, but the executor must not
        // rely on that coupling: a missing entry is a typed error, not a
        // panic, even if validation semantics drift.
        let entry = program
            .entry()
            .ok_or(SimError::InvalidProgram(IsaError::MissingEntry))?;
        if program.globals_words() > options.memory_words {
            return Err(SimError::MemoryOutOfBounds {
                addr: program.globals_words() as i64,
                memory_words: options.memory_words,
            });
        }
        let mut memory = PagedArray::new(options.memory_words);
        for &(addr, value) in program.data() {
            if addr >= memory.len() {
                return Err(SimError::MemoryOutOfBounds {
                    addr: addr as i64,
                    memory_words: options.memory_words,
                });
            }
            memory.set(addr, value);
        }
        let mut int = [0_i64; NUM_INT_REGS];
        int[IntReg::SP.index() as usize] = options.memory_words as i64;
        int[IntReg::GP.index() as usize] = 0;
        let mut decode_base = Vec::with_capacity(program.functions().len());
        let mut func_len = Vec::with_capacity(program.functions().len());
        let mut decoded = Vec::new();
        for (index, function) in program.functions().iter().enumerate() {
            decode_base.push(decoded.len());
            func_len.push(function.instrs().len());
            for instr in function.instrs() {
                decoded.push(Decoded {
                    op: predecode(instr, function, FuncId::new(index as u32))?,
                    class: instr.class(),
                    uses: instr.uses(),
                    def: instr.def(),
                });
            }
        }
        program
            .try_function(entry)
            .ok_or(SimError::UnknownFunction(entry))?;
        let cur_base = decode_base[entry.index()];
        let cur_len = func_len[entry.index()];
        Ok(Executor {
            program,
            cur_base,
            cur_len,
            decode_base,
            func_len,
            decoded,
            int,
            fp: [0.0; NUM_FP_REGS],
            vec: [[0.0; MAX_VLEN]; NUM_VEC_REGS],
            vl: 0,
            memory,
            func: entry,
            pc: 0,
            call_stack: Vec::new(),
            halted: false,
            steps: 0,
            census: ClassCensus::new(),
            options,
        })
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Packed `(func << 32) | pc` of the *next* instruction to execute —
    /// the trace cache's break rule peeks at where control went.
    pub(crate) fn cursor(&self) -> u64 {
        (u64::from(self.func.index() as u32) << 32) | self.pc as u64
    }

    /// The dynamic instruction census so far.
    #[must_use]
    pub fn census(&self) -> &ClassCensus {
        &self.census
    }

    /// Reads an integer register.
    #[must_use]
    pub fn int_reg(&self, reg: IntReg) -> i64 {
        if reg.is_zero() {
            0
        } else {
            self.int[reg.index() as usize]
        }
    }

    /// Reads a floating-point register.
    #[must_use]
    pub fn fp_reg(&self, reg: supersym_isa::FpReg) -> f64 {
        self.fp[reg.index() as usize]
    }

    /// Reads one element of a vector register.
    ///
    /// # Panics
    ///
    /// Panics if `element >= MAX_VLEN`.
    #[must_use]
    pub fn vec_elem(&self, reg: supersym_isa::VecReg, element: usize) -> f64 {
        self.vec[reg.index() as usize][element]
    }

    /// The current vector length.
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Reads a memory word (for checksum assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn memory_word(&self, addr: usize) -> i64 {
        self.memory.get(addr)
    }

    #[inline]
    fn addr(&self, base: u8, offset: i64) -> Result<usize, SimError> {
        let addr = self.int[base as usize].wrapping_add(offset);
        if addr < 0 || addr as usize >= self.memory.len() {
            Err(SimError::MemoryOutOfBounds {
                addr,
                memory_words: self.memory.len(),
            })
        } else {
            Ok(addr as usize)
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once the program has halted.
    ///
    /// # Errors
    ///
    /// Propagates memory faults, call-stack overflow, step-limit overruns,
    /// and falling off the end of a function.
    #[inline]
    pub fn step(&mut self) -> Result<Option<StepInfo>, SimError> {
        if self.halted {
            return Ok(None);
        }
        if self.steps >= self.options.max_steps {
            return Err(SimError::StepLimitExceeded {
                limit: self.options.max_steps,
            });
        }
        if self.pc >= self.cur_len {
            return Err(SimError::FellOffFunction(self.func));
        }
        let info_pc = self.pc;
        let info_func = self.func;
        let slot = self.cur_base + self.pc;
        let Decoded {
            op,
            class,
            uses,
            def,
        } = self.decoded[slot];
        let mut mem = None;
        let mut vlen = 0_u32;
        let mut control = ControlEvent::None;
        let mut next_pc = self.pc + 1;

        // Register reads index the file directly: `int[0]` (the zero
        // register) is never written, so reads need no zero check; only
        // integer writes are guarded.
        match op.kind {
            OpKind::IntOpR(int_op) => {
                let value = eval_int_op(int_op, self.int[op.a as usize], self.int[op.b as usize]);
                if op.dst != 0 {
                    self.int[op.dst as usize] = value;
                }
            }
            OpKind::IntOpI(int_op) => {
                let value = eval_int_op(int_op, self.int[op.a as usize], op.imm);
                if op.dst != 0 {
                    self.int[op.dst as usize] = value;
                }
            }
            OpKind::MovI => {
                if op.dst != 0 {
                    self.int[op.dst as usize] = op.imm;
                }
            }
            OpKind::FpOp(fp_op) => {
                let a = self.fp[op.a as usize];
                let b = self.fp[op.b as usize];
                self.fp[op.dst as usize] = eval_fp_op(fp_op, a, b);
            }
            OpKind::FpCmp(cmp) => {
                let a = self.fp[op.a as usize];
                let b = self.fp[op.b as usize];
                let value = match cmp {
                    FpCmpOp::FEq => a == b,
                    FpCmpOp::FNe => a != b,
                    FpCmpOp::FLt => a < b,
                    FpCmpOp::FLe => a <= b,
                    FpCmpOp::FGt => a > b,
                    FpCmpOp::FGe => a >= b,
                };
                if op.dst != 0 {
                    self.int[op.dst as usize] = i64::from(value);
                }
            }
            OpKind::MovF => self.fp[op.dst as usize] = f64::from_bits(op.imm as u64),
            OpKind::FMov => self.fp[op.dst as usize] = self.fp[op.a as usize],
            OpKind::IToF => self.fp[op.dst as usize] = self.int[op.a as usize] as f64,
            OpKind::FToI => {
                let value = self.fp[op.a as usize];
                if op.dst != 0 {
                    self.int[op.dst as usize] = value as i64;
                }
            }
            OpKind::Load => {
                let addr = self.addr(op.a, op.imm)?;
                let value = self.memory.get(addr);
                if op.dst != 0 {
                    self.int[op.dst as usize] = value;
                }
                mem = Some((addr, false));
            }
            OpKind::LoadF => {
                let addr = self.addr(op.a, op.imm)?;
                self.fp[op.dst as usize] = f64::from_bits(self.memory.get(addr) as u64);
                mem = Some((addr, false));
            }
            OpKind::Store => {
                let addr = self.addr(op.a, op.imm)?;
                self.memory.set(addr, self.int[op.b as usize]);
                mem = Some((addr, true));
            }
            OpKind::StoreF => {
                let addr = self.addr(op.a, op.imm)?;
                self.memory
                    .set(addr, self.fp[op.b as usize].to_bits() as i64);
                mem = Some((addr, true));
            }
            OpKind::SetVl => {
                let requested = self.int[op.a as usize];
                self.vl = requested.clamp(0, MAX_VLEN as i64) as usize;
            }
            OpKind::VLoad => {
                let addr = self.addr(op.a, op.imm)?;
                if addr + self.vl > self.memory.len() {
                    return Err(SimError::MemoryOutOfBounds {
                        addr: (addr + self.vl) as i64,
                        memory_words: self.memory.len(),
                    });
                }
                for k in 0..self.vl {
                    self.vec[op.dst as usize][k] = f64::from_bits(self.memory.get(addr + k) as u64);
                }
                mem = Some((addr, false));
                vlen = self.vl as u32;
            }
            OpKind::VStore => {
                let addr = self.addr(op.a, op.imm)?;
                if addr + self.vl > self.memory.len() {
                    return Err(SimError::MemoryOutOfBounds {
                        addr: (addr + self.vl) as i64,
                        memory_words: self.memory.len(),
                    });
                }
                for k in 0..self.vl {
                    self.memory
                        .set(addr + k, self.vec[op.b as usize][k].to_bits() as i64);
                }
                mem = Some((addr, true));
                vlen = self.vl as u32;
            }
            OpKind::VOp(fp_op) => {
                for k in 0..self.vl {
                    let a = self.vec[op.a as usize][k];
                    let b = self.vec[op.b as usize][k];
                    self.vec[op.dst as usize][k] = eval_fp_op(fp_op, a, b);
                }
                vlen = self.vl as u32;
            }
            OpKind::VOpS(fp_op) => {
                let b = self.fp[op.b as usize];
                for k in 0..self.vl {
                    let a = self.vec[op.a as usize][k];
                    self.vec[op.dst as usize][k] = eval_fp_op(fp_op, a, b);
                }
                vlen = self.vl as u32;
            }
            OpKind::Br { expect } => {
                let taken = (self.int[op.a as usize] != 0) == expect;
                if taken {
                    next_pc = op.imm as usize;
                }
                control = ControlEvent::Branch { taken };
            }
            OpKind::Jmp => {
                next_pc = op.imm as usize;
                control = ControlEvent::Jump;
            }
            OpKind::Call => {
                if self.call_stack.len() >= self.options.max_call_depth {
                    return Err(SimError::CallStackOverflow {
                        limit: self.options.max_call_depth,
                    });
                }
                let target = FuncId::new(op.imm as u32);
                if target.index() >= self.program.functions().len() {
                    return Err(SimError::UnknownFunction(target));
                }
                self.call_stack.push((self.func, self.pc + 1));
                self.func = target;
                self.cur_base = self.decode_base[target.index()];
                self.cur_len = self.func_len[target.index()];
                next_pc = 0;
                control = ControlEvent::Call;
            }
            OpKind::Ret => match self.call_stack.pop() {
                Some((func, pc)) => {
                    self.func = func;
                    self.cur_base = self.decode_base[func.index()];
                    self.cur_len = self.func_len[func.index()];
                    next_pc = pc;
                    control = ControlEvent::Return;
                }
                None => {
                    self.halted = true;
                    control = ControlEvent::Halt;
                }
            },
            OpKind::Halt => {
                self.halted = true;
                control = ControlEvent::Halt;
            }
        }

        self.pc = next_pc;
        self.steps += 1;
        self.census.record(class);
        Ok(Some(StepInfo {
            func: info_func,
            pc: info_pc,
            class,
            uses,
            def,
            mem,
            vlen,
            control,
        }))
    }

    /// Runs to completion, discarding step information.
    ///
    /// # Errors
    ///
    /// Propagates the first execution error.
    pub fn run(&mut self) -> Result<(), SimError> {
        while self.step()?.is_some() {}
        Ok(())
    }
}

/// Flattens one static instruction into its [`Op`] record, resolving
/// branch/jump labels to instruction indices. Post-[`Program::validate`]
/// the label lookups cannot fail, but a dangling label is still reported as
/// a typed error rather than a panic.
fn predecode(instr: &Instr, function: &Function, func: FuncId) -> Result<Op, SimError> {
    let op = |kind: OpKind, dst: u8, a: u8, b: u8, imm: i64| Op {
        kind,
        dst,
        a,
        b,
        imm,
    };
    let resolve = |label: supersym_isa::Label| {
        function.try_resolve(label).ok_or(SimError::DanglingLabel {
            func,
            slot: label.slot(),
        })
    };
    Ok(match instr {
        Instr::IntOp {
            op: int_op,
            dst,
            lhs,
            rhs,
        } => match rhs {
            Operand::Reg(r) => op(
                OpKind::IntOpR(*int_op),
                dst.index(),
                lhs.index(),
                r.index(),
                0,
            ),
            Operand::Imm(v) => op(OpKind::IntOpI(*int_op), dst.index(), lhs.index(), 0, *v),
        },
        Instr::MovI { dst, imm } => op(OpKind::MovI, dst.index(), 0, 0, *imm),
        Instr::FpOp {
            op: fp_op,
            dst,
            lhs,
            rhs,
        } => op(
            OpKind::FpOp(*fp_op),
            dst.index(),
            lhs.index(),
            rhs.index(),
            0,
        ),
        Instr::FpCmp {
            op: cmp,
            dst,
            lhs,
            rhs,
        } => op(
            OpKind::FpCmp(*cmp),
            dst.index(),
            lhs.index(),
            rhs.index(),
            0,
        ),
        Instr::MovF { dst, imm } => op(OpKind::MovF, dst.index(), 0, 0, imm.to_bits() as i64),
        Instr::FMov { dst, src } => op(OpKind::FMov, dst.index(), src.index(), 0, 0),
        Instr::IToF { dst, src } => op(OpKind::IToF, dst.index(), src.index(), 0, 0),
        Instr::FToI { dst, src } => op(OpKind::FToI, dst.index(), src.index(), 0, 0),
        Instr::Load {
            dst, base, offset, ..
        } => op(OpKind::Load, dst.index(), base.index(), 0, *offset),
        Instr::LoadF {
            dst, base, offset, ..
        } => op(OpKind::LoadF, dst.index(), base.index(), 0, *offset),
        Instr::Store {
            src, base, offset, ..
        } => op(OpKind::Store, 0, base.index(), src.index(), *offset),
        Instr::StoreF {
            src, base, offset, ..
        } => op(OpKind::StoreF, 0, base.index(), src.index(), *offset),
        Instr::SetVl { src } => op(OpKind::SetVl, 0, src.index(), 0, 0),
        Instr::VLoad {
            dst, base, offset, ..
        } => op(OpKind::VLoad, dst.index(), base.index(), 0, *offset),
        Instr::VStore {
            src, base, offset, ..
        } => op(OpKind::VStore, 0, base.index(), src.index(), *offset),
        Instr::VOp {
            op: fp_op,
            dst,
            lhs,
            rhs,
        } => op(
            OpKind::VOp(*fp_op),
            dst.index(),
            lhs.index(),
            rhs.index(),
            0,
        ),
        Instr::VOpS {
            op: fp_op,
            dst,
            lhs,
            scalar,
        } => op(
            OpKind::VOpS(*fp_op),
            dst.index(),
            lhs.index(),
            scalar.index(),
            0,
        ),
        Instr::Br {
            cond,
            expect,
            target,
        } => op(
            OpKind::Br { expect: *expect },
            0,
            cond.index(),
            0,
            resolve(*target)? as i64,
        ),
        Instr::Jmp { target } => op(OpKind::Jmp, 0, 0, 0, resolve(*target)? as i64),
        Instr::Call { target } => op(OpKind::Call, 0, 0, 0, target.index() as i64),
        Instr::Ret => op(OpKind::Ret, 0, 0, 0, 0),
        Instr::Halt => op(OpKind::Halt, 0, 0, 0, 0),
    })
}

fn eval_fp_op(op: supersym_isa::FpOp, a: f64, b: f64) -> f64 {
    match op {
        supersym_isa::FpOp::FAdd => a + b,
        supersym_isa::FpOp::FSub => a - b,
        supersym_isa::FpOp::FMul => a * b,
        supersym_isa::FpOp::FDiv => a / b,
    }
}

fn eval_int_op(op: IntOp, a: i64, b: i64) -> i64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        IntOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Sll => a.wrapping_shl(b as u32 & 63),
        IntOp::Srl => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        IntOp::Sra => a.wrapping_shr(b as u32 & 63),
        IntOp::CmpEq => i64::from(a == b),
        IntOp::CmpNe => i64::from(a != b),
        IntOp::CmpLt => i64::from(a < b),
        IntOp::CmpLe => i64::from(a <= b),
        IntOp::CmpGt => i64::from(a > b),
        IntOp::CmpGe => i64::from(a >= b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_isa::AsmBuilder;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    fn small_options() -> ExecOptions {
        ExecOptions {
            memory_words: 1024,
            max_call_depth: 16,
            max_steps: 100_000,
        }
    }

    #[test]
    fn missing_entry_is_typed_error() {
        let program = Program::new();
        let err = Executor::new(&program, small_options()).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidProgram(IsaError::MissingEntry)
        ));
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 20);
        asm.movi(r(2), 22);
        asm.add(r(3), r(1), r(2).into());
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(r(3)), 42);
        assert_eq!(exec.steps(), 4);
        assert!(exec.halted());
    }

    #[test]
    fn loop_executes_expected_count() {
        // r1 = 10; while (r1 > 0) r1 -= 1
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.movi(r(1), 10);
        asm.bind(top);
        asm.sub(r(1), r(1), 1.into());
        asm.cmp_gt(r(2), r(1), 0.into());
        asm.br_true(r(2), top);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(r(1)), 0);
        // movi + 10 * (sub, cmp, br) + halt
        assert_eq!(exec.steps(), 1 + 30 + 1);
    }

    #[test]
    fn memory_roundtrip() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 123);
        asm.movi(r(2), 100); // address
        asm.store(r(1), r(2), 5);
        asm.load(r(3), r(2), 5);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(r(3)), 123);
        assert_eq!(exec.memory_word(105), 123);
    }

    #[test]
    fn fp_roundtrip_through_memory() {
        use supersym_isa::FpReg;
        let f1 = FpReg::new(1).unwrap();
        let f2 = FpReg::new(2).unwrap();
        let mut asm = AsmBuilder::new("main");
        asm.movf(f1, 2.5);
        asm.movf(f2, 4.0);
        asm.fmul(f1, f1, f2);
        asm.storef(f1, IntReg::GP, 10);
        asm.loadf(f2, IntReg::GP, 10);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.fp_reg(f2), 10.0);
    }

    #[test]
    fn zero_register_immutable() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(IntReg::ZERO, 99);
        asm.add(r(1), IntReg::ZERO, 1.into());
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(IntReg::ZERO), 0);
        assert_eq!(exec.int_reg(r(1)), 1);
    }

    #[test]
    fn call_and_return() {
        use supersym_isa::{Function, Instr, Program};
        // callee: r1 = r1 * 2; ret
        let callee = Function::new(
            "double",
            vec![
                Instr::IntOp {
                    op: IntOp::Mul,
                    dst: r(1),
                    lhs: r(1),
                    rhs: Operand::Imm(2),
                },
                Instr::Ret,
            ],
            vec![],
        );
        let mut program = Program::new();
        let callee_id = program.add_function(callee);
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 21);
        asm.call(callee_id);
        asm.halt();
        let main_id = program.add_function(asm.finish());
        program.set_entry(main_id);
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(r(1)), 42);
    }

    #[test]
    fn ret_from_entry_halts() {
        let mut asm = AsmBuilder::new("main");
        asm.ret();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert!(exec.halted());
    }

    #[test]
    fn out_of_bounds_store_faults() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), -5);
        asm.store(r(1), r(1), 0);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        let err = exec.run().unwrap_err();
        assert!(matches!(err, SimError::MemoryOutOfBounds { addr: -5, .. }));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        asm.bind(top);
        asm.jmp(top);
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        let err = exec.run().unwrap_err();
        assert!(matches!(err, SimError::StepLimitExceeded { .. }));
    }

    #[test]
    fn division_by_zero_defined() {
        assert_eq!(eval_int_op(IntOp::Div, 5, 0), 0);
        assert_eq!(eval_int_op(IntOp::Rem, 5, 0), 5);
        assert_eq!(eval_int_op(IntOp::Div, i64::MIN, -1), i64::MIN); // wrapping
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(eval_int_op(IntOp::Sll, 1, 64), 1);
        assert_eq!(eval_int_op(IntOp::Srl, -1, 1), i64::MAX);
        assert_eq!(eval_int_op(IntOp::Sra, -8, 2), -2);
    }

    #[test]
    fn census_counts_classes() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 1);
        asm.add(r(2), r(1), 1.into());
        asm.and(r(3), r(1), r(2).into());
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.census().count(InstrClass::IntAdd), 2); // movi + add
        assert_eq!(exec.census().count(InstrClass::Logical), 1);
        assert_eq!(exec.census().count(InstrClass::Jump), 1); // halt
    }

    #[test]
    fn branch_step_info_reports_taken() {
        let mut asm = AsmBuilder::new("main");
        let skip = asm.new_label();
        asm.movi(r(1), 1);
        asm.br_true(r(1), skip);
        asm.movi(r(2), 99); // skipped
        asm.bind(skip);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        let mut taken_seen = false;
        while let Some(info) = exec.step().unwrap() {
            if let ControlEvent::Branch { taken } = info.control {
                taken_seen = taken;
            }
        }
        assert!(taken_seen);
        assert_eq!(exec.int_reg(r(2)), 0);
    }

    #[test]
    fn call_depth_limit() {
        use supersym_isa::{Function, Instr, Program};
        let mut program = Program::new();
        // fn f() { f(); }
        let f = Function::new(
            "f",
            vec![
                Instr::Call {
                    target: supersym_isa::FuncId::new(0),
                },
                Instr::Ret,
            ],
            vec![],
        );
        let id = program.add_function(f);
        program.set_entry(id);
        let mut exec = Executor::new(&program, small_options()).unwrap();
        let err = exec.run().unwrap_err();
        assert!(matches!(err, SimError::CallStackOverflow { limit: 16 }));
    }

    #[test]
    fn vector_roundtrip_and_arithmetic() {
        use supersym_isa::{FpOp, FpReg, VecReg};
        let v1 = VecReg::new(1).unwrap();
        let v2 = VecReg::new(2).unwrap();
        let f1 = FpReg::new(1).unwrap();
        let mut asm = AsmBuilder::new("main");
        // Fill memory[100..108] via scalar stores, then vector-process.
        for k in 0..8 {
            asm.movf(f1, k as f64 + 1.0);
            asm.storef(f1, IntReg::GP, 100 + k);
        }
        asm.movi(r(1), 8);
        asm.setvl(r(1));
        asm.movi(r(2), 100);
        asm.vload(v1, r(2), 0);
        asm.vop(FpOp::FAdd, v2, v1, v1); // v2 = 2*x
        asm.movf(f1, 10.0);
        asm.vop_s(FpOp::FMul, v2, v2, f1); // v2 = 20*x
        asm.vstore(v2, r(2), 100); // memory[200..208]
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.vl(), 8);
        for k in 0..8 {
            assert_eq!(exec.vec_elem(v1, k), k as f64 + 1.0);
            assert_eq!(
                f64::from_bits(exec.memory_word(200 + k) as u64),
                (k as f64 + 1.0) * 20.0
            );
        }
    }

    #[test]
    fn setvl_clamps() {
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 1000);
        asm.setvl(r(1));
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.vl(), supersym_isa::MAX_VLEN);
    }

    #[test]
    fn vector_load_bounds_checked() {
        use supersym_isa::VecReg;
        let mut asm = AsmBuilder::new("main");
        asm.movi(r(1), 8);
        asm.setvl(r(1));
        asm.movi(r(2), 1020); // 1020 + 8 > 1024
        asm.vload(VecReg::new(1).unwrap(), r(2), 0);
        asm.halt();
        let program = asm.finish_program();
        let mut exec = Executor::new(&program, small_options()).unwrap();
        assert!(matches!(
            exec.run(),
            Err(SimError::MemoryOutOfBounds { .. })
        ));
    }

    #[test]
    fn data_image_loaded() {
        let mut asm = AsmBuilder::new("main");
        asm.load(r(1), IntReg::GP, 3);
        asm.halt();
        let mut program = asm.finish_program();
        program.alloc_globals(8);
        program.add_data(3, 777);
        let mut exec = Executor::new(&program, small_options()).unwrap();
        exec.run().unwrap();
        assert_eq!(exec.int_reg(r(1)), 777);
    }
}
