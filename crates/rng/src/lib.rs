//! # supersym-rng
//!
//! The workspace's one deterministic RNG.
//!
//! SplitMix64 (Steele, Lea & Flood): one `u64` of state, full-period,
//! excellent diffusion, and — the property every consumer actually needs —
//! bit-identical streams from the same seed on every platform and every
//! run, with no dependency footprint. Three subsystems share it so their
//! seeds mean the same thing everywhere:
//!
//! * the torture harness's mutation campaigns (`supersym-torture`
//!   re-exports this type, so recorded campaign seeds stay valid),
//! * the workspace property tests (random program generation),
//! * rewrite-rule synthesis (`supersym-rules`), whose candidate
//!   fingerprint vectors must be reproducible for the checked-in rule
//!   table to regenerate byte-identically.
//!
//! The stream is pinned by a reference-value test below; changing the
//! algorithm is a breaking change to every recorded seed in the repo.

#![deny(missing_docs)]

/// SplitMix64: deterministic, seedable, dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A small signed integer biased toward interesting magnitudes:
    /// mostly near zero, occasionally at the extremes.
    pub fn interesting_i64(&mut self) -> i64 {
        match self.below(8) {
            0 => 0,
            1 => 1,
            2 => -1,
            3 => i64::from(self.next_u64() as i8),
            4 => i64::MAX,
            5 => i64::MIN,
            6 => self.next_u64() as i64 >> 32,
            _ => self.next_u64() as i64,
        }
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A fresh generator seeded from this one's stream; lets each consumer
    /// own an independent, replayable substream keyed by `(seed, index)`.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// FNV-1a over a byte string: the workspace's one stable content hash.
///
/// Used wherever a fingerprint must be identical across platforms, runs
/// and process restarts — sweep checkpoint headers, per-record checksums,
/// and the `(program hash, machine hash)` result-cache key. `std`'s
/// `DefaultHasher` is explicitly *not* stable across releases, so it can
/// never appear in a file format; FNV-1a is pinned here by a
/// reference-value test exactly like the SplitMix64 stream.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325_u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn range_i64_inclusive() {
        let mut rng = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn reference_values() {
        // Pin the stream so a silent algorithm change cannot invalidate
        // recorded campaign seeds or the checked-in rule table.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn fnv1a_reference_values() {
        // Canonical FNV-1a vectors; a silent change here would invalidate
        // every recorded sweep checkpoint and result cache.
        assert_eq!(fnv1a_64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn fnv1a_is_order_sensitive() {
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
