//! `titalc` — the supersym command-line driver.
//!
//! Compiles a Tital source file under a chosen machine description and
//! optimization level, then (by default) simulates it and reports cycle
//! counts, or disassembles the scheduled machine code.
//!
//! ```text
//! titalc program.tital                      # compile + run on the base machine
//! titalc -m superscalar:4 -O2 program.tital # degree-4 ideal superscalar, local opt
//! titalc -m cray1 --dump program.tital      # show scheduled assembly
//! titalc -m multititan --unroll careful:4 program.tital
//! titalc --verify program.tital             # verify the compiler's own output
//! titalc --oracle conservative program.tital# schedule without symbolic aliasing
//! titalc lint machine.machine               # lint a machine description
//! titalc lint program.s                     # lint an assembly program
//! titalc lint program.tital                 # dataflow lints on Tital source
//! titalc analyze program.tital              # dump per-block dataflow facts
//! titalc --machines                         # list machine presets
//! ```

use std::process::ExitCode;
use supersym::analyze::{dump_module, lint_module, OracleKind};
use supersym::machine::{parse_machine_spec, presets, MachineConfig};
use supersym::opt::UnrollOptions;
use supersym::sim::{simulate, simulate_with_cache, CacheConfig, SimOptions};
use supersym::verify::{error_count, lint_program};
use supersym::{compile, CompileOptions, OptLevel};

struct Args {
    source_path: Option<String>,
    machine: Option<String>,
    opt: OptLevel,
    unroll: Option<UnrollOptions>,
    dump: bool,
    cache: bool,
    list_machines: bool,
    lint: bool,
    analyze: bool,
    verify: bool,
    oracle: OracleKind,
}

const USAGE: &str = "\
titalc — compile and simulate Tital programs (supersym)

USAGE:
    titalc [OPTIONS] <FILE>
    titalc lint [OPTIONS] <FILE>
    titalc analyze <FILE>

OPTIONS:
    -m, --machine <NAME>     machine preset (default: base); see --machines
    -O<N>                    optimization level 0..4 (default: 4)
        --unroll <KIND:N>    loop unrolling: naive:N or careful:N
        --dump               print the scheduled assembly instead of running
        --cache              also simulate 8KiB split I/D caches
        --verify             run the static verifier on the compiled output
        --oracle <KIND>      memory disambiguation for scheduling:
                             symbolic (default) or conservative
        --machines           list machine presets and exit
    -h, --help               show this help

LINT:
    `titalc lint` statically checks a file and exits nonzero on errors.
    Files ending in `.machine` are parsed as machine descriptions; files
    ending in `.tital` are lowered to IR and checked with the dataflow
    lints (dead stores, provable out-of-bounds accesses, constant branch
    conditions); anything else is parsed as assembly and checked with the
    program lint (pass -m to also check register-split conformance).

ANALYZE:
    `titalc analyze` lowers a Tital source file to IR, prints every
    block's dataflow facts (reachability, constants, value ranges,
    reaching definitions, branch verdicts), then runs the dataflow lints.
    Exits nonzero on lint errors.
";

fn parse_machine(name: &str) -> Option<MachineConfig> {
    if let Some(rest) = name.strip_prefix("superscalar:") {
        return rest.parse().ok().map(presets::ideal_superscalar);
    }
    if let Some(rest) = name.strip_prefix("superpipelined:") {
        return rest.parse().ok().map(presets::superpipelined);
    }
    if let Some(rest) = name.strip_prefix("conflicts:") {
        return rest
            .parse()
            .ok()
            .map(presets::superscalar_with_class_conflicts);
    }
    if let Some(rest) = name.strip_prefix("ssp:") {
        let (n, m) = rest.split_once(':')?;
        return Some(presets::superpipelined_superscalar(
            n.parse().ok()?,
            m.parse().ok()?,
        ));
    }
    match name {
        "base" => Some(presets::base()),
        "multititan" => Some(presets::multititan()),
        "cray1" => Some(presets::cray1()),
        "underpipelined" => Some(presets::underpipelined_half_issue()),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        source_path: None,
        machine: None,
        opt: OptLevel::O4,
        unroll: None,
        dump: false,
        cache: false,
        list_machines: false,
        lint: false,
        analyze: false,
        verify: false,
        oracle: OracleKind::default(),
    };
    let mut iter = std::env::args().skip(1).peekable();
    match iter.peek().map(String::as_str) {
        Some("lint") => {
            args.lint = true;
            iter.next();
        }
        Some("analyze") => {
            args.analyze = true;
            iter.next();
        }
        _ => {}
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--machines" => args.list_machines = true,
            "--dump" => args.dump = true,
            "--cache" => args.cache = true,
            "--verify" => args.verify = true,
            "-m" | "--machine" => {
                args.machine = Some(iter.next().ok_or("missing machine name")?);
            }
            "--oracle" => {
                args.oracle = match iter.next().ok_or("missing oracle kind")?.as_str() {
                    "symbolic" => OracleKind::Symbolic,
                    "conservative" => OracleKind::Conservative,
                    other => return Err(format!("unknown oracle `{other}`")),
                };
            }
            "--unroll" => {
                let spec = iter.next().ok_or("missing unroll spec")?;
                let (kind, factor) = spec
                    .split_once(':')
                    .ok_or("unroll spec must be kind:factor")?;
                let factor: usize = factor.parse().map_err(|_| "bad unroll factor")?;
                args.unroll = Some(match kind {
                    "naive" => UnrollOptions::naive(factor),
                    "careful" => UnrollOptions::careful(factor),
                    other => return Err(format!("unknown unroll kind `{other}`")),
                });
            }
            level if level.starts_with("-O") => {
                args.opt = match &level[2..] {
                    "0" => OptLevel::O0,
                    "1" => OptLevel::O1,
                    "2" => OptLevel::O2,
                    "3" => OptLevel::O3,
                    "4" | "" => OptLevel::O4,
                    other => return Err(format!("unknown optimization level `{other}`")),
                };
            }
            path if !path.starts_with('-') => args.source_path = Some(path.to_string()),
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Runs the front end and lowers to IR, reporting errors titalc-style.
fn lower_tital(path: &str, source: &str) -> Result<supersym::ir::Module, ExitCode> {
    let fail = |error: &dyn std::fmt::Display| {
        eprintln!("titalc: {path}: {error}");
        Err(ExitCode::FAILURE)
    };
    let ast = match supersym::lang::parse(source) {
        Ok(ast) => ast,
        Err(error) => return fail(&error),
    };
    if let Err(error) = supersym::lang::check(&ast) {
        return fail(&error);
    }
    match supersym::ir::lower(&ast) {
        Ok(module) => Ok(module),
        Err(error) => fail(&error),
    }
}

/// Prints diagnostics and converts the batch to an exit code.
fn report(path: &str, diagnostics: &[supersym::verify::Diagnostic]) -> ExitCode {
    for diagnostic in diagnostics {
        println!("{diagnostic}");
    }
    let errors = error_count(diagnostics);
    if errors > 0 {
        eprintln!("titalc: {path}: {errors} error(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `titalc analyze`: lower a Tital file to IR, dump every block's dataflow
/// facts, then run the dataflow lints. Exits nonzero on lint errors.
fn run_analyze(path: &str, source: &str) -> ExitCode {
    let module = match lower_tital(path, source) {
        Ok(module) => module,
        Err(code) => return code,
    };
    print!("{}", dump_module(&module));
    report(path, &lint_module(&module))
}

/// `titalc lint`: statically check a machine description (`.machine`), a
/// Tital source file (`.tital`, via the dataflow lints) or an assembly
/// program (anything else), printing every diagnostic. Exits nonzero when
/// the file cannot be parsed or any diagnostic is an error.
fn run_lint(path: &str, source: &str, machine_name: Option<&str>) -> ExitCode {
    let diagnostics = if path.ends_with(".machine") {
        match parse_machine_spec(source) {
            Ok(spec) => spec.diagnose(),
            Err(error) => {
                eprintln!("titalc: {path}: {error}");
                return ExitCode::FAILURE;
            }
        }
    } else if path.ends_with(".tital") {
        match lower_tital(path, source) {
            Ok(module) => lint_module(&module),
            Err(code) => return code,
        }
    } else {
        let program = match supersym::isa::parse_program(source) {
            Ok(program) => program,
            Err(error) => {
                eprintln!("titalc: {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let machine = match machine_name {
            Some(name) => match parse_machine(name) {
                Some(machine) => Some(machine),
                None => {
                    eprintln!("titalc: unknown machine `{name}` (try --machines)");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        lint_program(&program, machine.as_ref())
    };
    report(path, &diagnostics)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.list_machines {
        println!("machine presets:");
        println!("  base                  one instruction/cycle, unit latencies");
        println!("  multititan            MultiTitan latency model (avg superpipelining 1.7)");
        println!("  cray1                 CRAY-1 latency model (avg superpipelining 4.4)");
        println!("  underpipelined        issues every other cycle");
        println!("  superscalar:<n>       ideal degree-n superscalar");
        println!("  superpipelined:<m>    degree-m superpipelined");
        println!("  ssp:<n>:<m>           superpipelined superscalar");
        println!("  conflicts:<n>         degree-n superscalar with shared functional units");
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.source_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(source) => source,
        Err(error) => {
            eprintln!("titalc: cannot read `{path}`: {error}");
            return ExitCode::FAILURE;
        }
    };
    if args.lint {
        return run_lint(&path, &source, args.machine.as_deref());
    }
    if args.analyze {
        return run_analyze(&path, &source);
    }
    let machine_name = args.machine.as_deref().unwrap_or("base");
    let Some(machine) = parse_machine(machine_name) else {
        eprintln!("titalc: unknown machine `{machine_name}` (try --machines)");
        return ExitCode::FAILURE;
    };
    let mut options = CompileOptions::new(args.opt, &machine).with_oracle(args.oracle);
    if args.verify {
        options = options.with_verify(true);
    }
    if let Some(unroll) = args.unroll {
        options = options.with_unroll(unroll);
    }
    let program = match compile(&source, &options) {
        Ok(program) => program,
        Err(error) => {
            eprintln!("titalc: {error}");
            return ExitCode::FAILURE;
        }
    };
    if args.dump {
        print!("{program}");
        return ExitCode::SUCCESS;
    }
    let report = match simulate(&program, &machine, SimOptions::default()) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("titalc: runtime error: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!("machine:        {}", machine.name());
    println!("optimization:   {}", args.opt);
    println!("static size:    {} instructions", program.static_size());
    println!("dynamic count:  {} instructions", report.instructions());
    println!("time:           {:.1} base cycles", report.base_cycles());
    println!(
        "rate:           {:.3} instructions/cycle",
        report.available_parallelism()
    );
    if args.cache {
        let (_, caches) = simulate_with_cache(
            &program,
            &machine,
            SimOptions::default(),
            CacheConfig::small_direct(),
            CacheConfig::small_direct(),
        )
        .expect("program already ran once");
        println!(
            "caches (8KiB):  I-miss {:.2}%  D-miss {:.2}%  ({:.4} misses/instr)",
            caches.icache.miss_rate() * 100.0,
            caches.dcache.miss_rate() * 100.0,
            caches.misses_per_instruction
        );
    }
    ExitCode::SUCCESS
}
