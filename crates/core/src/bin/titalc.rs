//! `titalc` — the supersym command-line driver.
//!
//! Compiles a Tital source file under a chosen machine description and
//! optimization level, then (by default) simulates it and reports cycle
//! counts, or disassembles the scheduled machine code.
//!
//! ```text
//! titalc program.tital                      # compile + run on the base machine
//! titalc -m superscalar:4 -O2 program.tital # degree-4 ideal superscalar, local opt
//! titalc -m cray1 --dump program.tital      # show scheduled assembly
//! titalc -m multititan --unroll careful:4 program.tital
//! titalc --verify program.tital             # verify the compiler's own output
//! titalc --oracle conservative program.tital# schedule without symbolic aliasing
//! titalc lint machine.machine               # lint a machine description
//! titalc lint program.s                     # lint an assembly program
//! titalc lint program.tital                 # dataflow lints on Tital source
//! titalc analyze program.tital              # dump per-block dataflow facts
//! titalc analyze --loops program.tital      # loop forest + scalar evolution
//! titalc bound program.tital                # static ILP ceiling vs measured
//! titalc bound -m superscalar:2             # suite sweep on one preset
//! titalc profile program.tital              # per-phase + per-cycle accounting
//! titalc profile --json program.tital       # the same, machine-readable
//! titalc torture --seed 7 --iters 1000      # mutation-robustness campaign
//! titalc torture --replay tests/corpus      # replay the crash corpus
//! titalc certify -m cray1 program.tital     # re-prove every optimizer pass
//! titalc synth                              # regenerate the rewrite-rule table
//! titalc synth --check                      # CI: table must match checked-in
//! titalc --machines                         # list machine presets
//! ```
//!
//! Exit codes distinguish *where* an input was rejected (see `EXIT CODES`
//! in `--help`): scripts can tell a syntax error from a verifier
//! diagnostic from a runtime trap without parsing stderr.

use std::collections::HashSet;
use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::sync::Mutex;
use supersym::analyze::{
    dump_module, function_scev, lint_module, program_loop_statics, static_bound, Distance,
    LoopCount, OracleKind, Subscript,
};
use supersym::experiments::measure_bound;
use supersym::isa::{ClassCensus, InstrClass};
use supersym::machine::GridSpec;
use supersym::machine::{parse_machine_spec, presets, MachineConfig};
use supersym::opt::UnrollOptions;
use supersym::rules::{synthesize, SynthConfig, DEFAULT_TABLE_TEXT};
use supersym::sim::{
    simulate, simulate_with_cache, simulate_with_sink, CacheConfig, CycleAccount, MetricsSink,
    SimOptions, SimReport, StallCause,
};
use supersym::sweep::{PipelineCellRunner, DEFAULT_CELL_FUEL};
use supersym::torture::{replay_torture_corpus, run_torture};
use supersym::trace::{
    parse_json, validate_timeline, IssueEvent, JsonLinesSink, JsonObject, JsonValue, LoopCountSink,
    MemorySink, MetricsRegistry, PhaseRecord, SweepItem, TimelineSink, TraceSink, METRICS_SCHEMA,
};
use supersym::verify::{error_count, lint_program, CertMethod};
use supersym::workloads::{suite, Size};
use supersym::{
    compile, compile_certified, compile_with_trace, phase_metrics, CompileOptions, OptLevel,
};
use supersym_sweep::{
    aggregate_cells, cache_from_records, frontier_json, load_checkpoint, pareto_frontier,
    run_sweep_observed, CellRecord, CellStatus, FaultInjection, SweepConfig, SweepObserver,
    SweepPlan, SCHEMA,
};
use supersym_torture::{write_corpus, Layer};

/// Exit code for usage and I/O errors.
const EXIT_USAGE: u8 = 1;
/// Exit code for front-end rejections: the input file failed to lex,
/// parse, type-check or lower.
const EXIT_PARSE: u8 = 2;
/// Exit code for static-check failures: lint/verify diagnostics, IR
/// validation, machine-description or register-split problems — and for
/// torture-campaign findings.
const EXIT_VERIFY: u8 = 3;
/// Exit code for simulation (runtime) errors.
const EXIT_SIM: u8 = 4;

struct Args {
    source_path: Option<String>,
    machine: Option<String>,
    opt: OptLevel,
    unroll: Option<UnrollOptions>,
    dump: bool,
    cache: bool,
    list_machines: bool,
    lint: bool,
    analyze: bool,
    certify: bool,
    profile: bool,
    stats: bool,
    bound: bool,
    loops: bool,
    json: bool,
    trace: Option<String>,
    timeline: Option<String>,
    verify: bool,
    oracle: OracleKind,
}

const USAGE: &str = "\
titalc — compile and simulate Tital programs (supersym)

USAGE:
    titalc [OPTIONS] <FILE>
    titalc lint [OPTIONS] <FILE>
    titalc analyze [--loops] [--json] <FILE>
    titalc certify [OPTIONS] <FILE>
    titalc profile [OPTIONS] <FILE>
    titalc stats [OPTIONS] <FILE>
    titalc bound [OPTIONS] [FILE]
    titalc torture [TORTURE OPTIONS]
    titalc synth [--check]
    titalc sweep --grid <SPEC> [SWEEP OPTIONS]
    titalc bench-diff [--threshold <PCT>] [--only <PREFIX>] <OLD.json> <NEW.json>

OPTIONS:
    -m, --machine <NAME>     machine preset (default: base); see --machines
    -O<N>                    optimization level 0..4 (default: 4)
        --unroll <KIND:N>    loop unrolling: naive:N or careful:N
        --dump               print the scheduled assembly instead of running
        --cache              also simulate 8KiB split I/D caches
        --verify             run the static verifier on the compiled output
        --oracle <KIND>      memory disambiguation for scheduling:
                             symbolic (default) or conservative
        --trace <FILE>       stream one JSON line per compile phase and per
                             dynamic instruction to FILE (run and profile)
        --machines           list machine presets and exit
    -h, --help               show this help

PROFILE:
    `titalc profile` compiles and runs like plain `titalc`, but reports
    where the time went instead of just how much there was: per-phase
    compile telemetry (wall time, IR sizes, dependence-edge counts under
    both oracles, scheduler movement) and the run's cycle account (every
    cycle charged to issue, one stall cause, or pipeline drain — the sum
    is exactly the machine cycles), with per-class and per-functional-unit
    wait rollups and the most-waited-on producer instructions.
        --json               emit one JSON document (schema
                             supersym.profile/v1) instead of tables
        --timeline <FILE>    write a Chrome trace_event timeline (schema
                             supersym.timeline/v1, loadable in Perfetto):
                             compile-phase spans, one span per dynamic
                             instruction on its functional unit's lane,
                             and ipc/inflight counter tracks
    Uses the same compile/run exit codes as plain `titalc`.

STATS:
    `titalc stats` compiles and runs like `titalc profile`, but emits one
    deterministic JSON document (schema supersym.metrics/v1): a metrics
    registry of counters, gauges and log2-bucket histograms — compile
    phase counters, the stall-run-length and per-block ILP distributions,
    and the run's headline numbers — plus the per-phase wall times.
    Accepts the same options as plain `titalc`.

LINT:
    `titalc lint` statically checks a file and exits nonzero on errors.
    Files ending in `.machine` are parsed as machine descriptions; files
    ending in `.tital` are lowered to IR and checked with the dataflow
    lints (dead stores, provable out-of-bounds accesses, constant branch
    conditions); files ending in `.json` are validated as timeline
    documents (trace_event invariants: monotone timestamps per lane,
    matched begin/end pairs, stable lane naming); anything else is parsed
    as assembly and checked with the program lint (pass -m to also check
    register-split conformance).

ANALYZE:
    `titalc analyze` lowers a Tital source file to IR, prints every
    block's dataflow facts (reachability, constants, value ranges,
    reaching definitions, branch verdicts), then runs the dataflow lints.
    Exits nonzero on lint errors.
        --loops              instead of the dataflow dump, print the
                             natural-loop forest and scalar-evolution
                             facts per loop: induction variables with
                             steps, classified array subscripts, and
                             ZIV/SIV dependence distance vectors
        --json               with --loops, emit one JSON document
                             (schema supersym.loops/v1) instead of text

BOUND:
    `titalc bound` reports sound static ILP ceilings next to measured
    parallelism. With a FILE, it compiles the program for the chosen -m
    preset, analyzes its innermost machine loops (critical path, minimum
    iteration spacing, recurrence- and resource-bound MinII), runs it,
    and checks the soundness invariant: measured ILP never exceeds the
    static bound. Without a FILE, it sweeps the whole benchmark suite on
    every machine preset (or just the -m one). A violated invariant is
    an internal-consistency failure and exits with code 3.
        --json               emit one JSON document (schema
                             supersym.bound/v1) instead of tables

CERTIFY:
    `titalc certify` compiles with per-pass translation validation: the
    IR is snapshotted before and after every optimizer pass and each pair
    is re-proven equivalent, structurally (symbolic per-block summaries)
    or differentially (a fuel-bounded IR executor compares return value,
    final global state and call count). Prints one line per pass run and
    exits with code 3 if any pass cannot be certified. Accepts the same
    -m/-O/--unroll/--oracle options as plain `titalc`.

SYNTH:
    `titalc synth` re-runs verified rewrite-rule synthesis (enumerate,
    fingerprint on characteristic vectors, prove with sound certifiers)
    and prints the resulting rule table to stdout — the exact format of
    the checked-in `crates/rules/src/rules.tital-rules`.
        --check              do not print; exit 3 unless the regenerated
                             table is byte-identical to the shipped one

SWEEP:
    `titalc sweep` explores the whole machine-design space the paper's
    presets sample: a grid spec like
    `issue=1,2,4,8 pipe=1,2,4 lat=unit,titan fu=ideal,shared` is
    enumerated into cells, each workload's machine-independent front half
    is compiled once, and worker threads schedule + simulate every
    (workload × cell) item. Cells run under a panic trap and a fuel
    watchdog: failures are classified (panic / timeout / reject) and
    quarantined as records, never lost. The summary (one JSON document,
    schema supersym.sweep/v1) ends with the speedup-vs-hardware-cost
    Pareto frontier. Exits 3 when any cell was quarantined.
        --grid <SPEC>        axes: issue= pipe= lat= fu= split= (required)
        --workloads <CSV>    workload names, or `all` (default)
        --jobs <N>           worker threads (default: 1)
        --fuel <N>           simulator steps per cell before the watchdog
                             quarantines it as a timeout
        --checkpoint <FILE>  append one record per finished item to FILE
        --resume <FILE>      resume from FILE (same as --checkpoint, but
                             completed items are not re-run; the final
                             output is byte-identical to an uninterrupted
                             sweep). The header must match this sweep's
                             grid, workloads and programs.
        --out <FILE>         write the complete record set, in canonical
                             cell order, to FILE
        --cache <FILE>       reuse deterministic results across sweeps,
                             keyed by (program hash, machine hash)
        --deadline-ms <N>    also quarantine cells slower than N ms of
                             wall clock (off by default: wall deadlines
                             trade byte-determinism for protection)
        --inject <SPEC>      self-test fault injection: `panic:K` and/or
                             `timeout:J` (comma-separated) fail every
                             K-th/J-th item
        --timeline <FILE>    write a Chrome trace_event timeline with one
                             lane per worker: a span per executed cell,
                             instant markers for cache hits and
                             quarantines (schema supersym.timeline/v1)
    Also accepts -O<N>, --oracle and --verify with their usual meanings.

BENCH-DIFF:
    `titalc bench-diff OLD.json NEW.json` compares two supersym.bench/v1
    snapshots row by row and prints the percent delta of every row's
    mean (the min when the snapshot records one). Exits 3 when any row
    common to both snapshots regressed (got slower) by more than the
    threshold.
        --threshold <PCT>    regression tolerance in percent (default: 10)
        --only <PREFIX>      gate only rows whose name starts with PREFIX
                             (all rows still print; others never fail)

TORTURE OPTIONS:
    `titalc torture` runs a deterministic fault-injection campaign
    against the whole pipeline: seeded mutants at five layers (source,
    ast, asm, machine, grid) must each produce a typed error or a correct,
    reproducible run — never a panic, hang or verifier disagreement.
        --seed <N>           campaign seed (default: 0; same seed, same mutants)
        --iters <K>          mutants per layer (default: 500)
        --layer <L>          restrict to a layer (repeatable):
                             source | ast | asm | machine | grid (default: all)
        --corpus <DIR>       write minimized reproducers for findings to DIR
        --replay <DIR>       instead of mutating, replay every corpus file
                             in DIR and check the panic/determinism contract

EXIT CODES:
    0    success
    1    usage or I/O error
    2    the input failed to parse, type-check or lower (front end)
    3    static checks failed: lint/verify diagnostics, IR validation,
         machine-description or register-split errors, torture findings,
         bench-diff regressions beyond the threshold
    4    simulation (runtime) error, or an I/O error writing a requested
         output file (--trace, --timeline, --out, --checkpoint, --cache)
";

fn parse_machine(name: &str) -> Option<MachineConfig> {
    if let Some(rest) = name.strip_prefix("superscalar:") {
        return rest.parse().ok().map(presets::ideal_superscalar);
    }
    if let Some(rest) = name.strip_prefix("superpipelined:") {
        return rest.parse().ok().map(presets::superpipelined);
    }
    if let Some(rest) = name.strip_prefix("conflicts:") {
        return rest
            .parse()
            .ok()
            .map(presets::superscalar_with_class_conflicts);
    }
    if let Some(rest) = name.strip_prefix("ssp:") {
        let (n, m) = rest.split_once(':')?;
        return Some(presets::superpipelined_superscalar(
            n.parse().ok()?,
            m.parse().ok()?,
        ));
    }
    if let Some(rest) = name.strip_prefix("vliw:") {
        return rest.parse().ok().map(presets::vliw);
    }
    match name {
        "base" => Some(presets::base()),
        "multititan" => Some(presets::multititan()),
        "cray1" => Some(presets::cray1()),
        "underpipelined" => Some(presets::underpipelined_half_issue()),
        "slowcycle" => Some(presets::underpipelined_slow_cycle()),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        source_path: None,
        machine: None,
        opt: OptLevel::O4,
        unroll: None,
        dump: false,
        cache: false,
        list_machines: false,
        lint: false,
        analyze: false,
        certify: false,
        profile: false,
        stats: false,
        bound: false,
        loops: false,
        json: false,
        trace: None,
        timeline: None,
        verify: false,
        oracle: OracleKind::default(),
    };
    let mut iter = std::env::args().skip(1).peekable();
    match iter.peek().map(String::as_str) {
        Some("lint") => {
            args.lint = true;
            iter.next();
        }
        Some("analyze") => {
            args.analyze = true;
            iter.next();
        }
        Some("certify") => {
            args.certify = true;
            iter.next();
        }
        Some("profile") => {
            args.profile = true;
            iter.next();
        }
        Some("stats") => {
            args.stats = true;
            iter.next();
        }
        Some("bound") => {
            args.bound = true;
            iter.next();
        }
        _ => {}
    }
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--machines" => args.list_machines = true,
            "--dump" => args.dump = true,
            "--loops" => args.loops = true,
            "--cache" => args.cache = true,
            "--verify" => args.verify = true,
            "--json" => args.json = true,
            "--trace" => {
                args.trace = Some(iter.next().ok_or("missing trace file path")?);
            }
            "--timeline" => {
                args.timeline = Some(iter.next().ok_or("missing timeline file path")?);
            }
            "-m" | "--machine" => {
                args.machine = Some(iter.next().ok_or("missing machine name")?);
            }
            "--oracle" => {
                args.oracle = match iter.next().ok_or("missing oracle kind")?.as_str() {
                    "symbolic" => OracleKind::Symbolic,
                    "conservative" => OracleKind::Conservative,
                    other => return Err(format!("unknown oracle `{other}`")),
                };
            }
            "--unroll" => {
                let spec = iter.next().ok_or("missing unroll spec")?;
                let (kind, factor) = spec
                    .split_once(':')
                    .ok_or("unroll spec must be kind:factor")?;
                let factor: usize = factor.parse().map_err(|_| "bad unroll factor")?;
                args.unroll = Some(match kind {
                    "naive" => UnrollOptions::naive(factor),
                    "careful" => UnrollOptions::careful(factor),
                    other => return Err(format!("unknown unroll kind `{other}`")),
                });
            }
            level if level.starts_with("-O") => {
                args.opt = match &level[2..] {
                    "0" => OptLevel::O0,
                    "1" => OptLevel::O1,
                    "2" => OptLevel::O2,
                    "3" => OptLevel::O3,
                    "4" | "" => OptLevel::O4,
                    other => return Err(format!("unknown optimization level `{other}`")),
                };
            }
            path if !path.starts_with('-') => args.source_path = Some(path.to_string()),
            other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// `titalc torture`: parse the subcommand's own flags and run a campaign
/// (or a corpus replay). Exits 0 when the robustness contract held,
/// `EXIT_VERIFY` when any mutant produced a finding.
fn run_torture_cmd(argv: &[String]) -> ExitCode {
    let mut seed = 0_u64;
    let mut iters = 500_u64;
    let mut layers: Vec<Layer> = Vec::new();
    let mut corpus: Option<String> = None;
    let mut replay: Option<String> = None;
    let usage = |message: String| -> ExitCode {
        eprintln!("titalc torture: {message}\n\n{USAGE}");
        ExitCode::from(EXIT_USAGE)
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seed" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = v,
                _ => return usage("--seed needs an unsigned integer".to_string()),
            },
            "--iters" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => iters = v,
                _ => return usage("--iters needs an unsigned integer".to_string()),
            },
            "--layer" => match iter.next().map(|v| Layer::parse(v)) {
                Some(Some(layer)) => layers.push(layer),
                _ => return usage("--layer must be source|ast|asm|machine|grid".to_string()),
            },
            "--corpus" => match iter.next() {
                Some(dir) => corpus = Some(dir.clone()),
                None => return usage("--corpus needs a directory".to_string()),
            },
            "--replay" => match iter.next() {
                Some(dir) => replay = Some(dir.clone()),
                None => return usage("--replay needs a directory".to_string()),
            },
            other => return usage(format!("unknown option `{other}`")),
        }
    }
    if let Some(dir) = replay {
        let report = match replay_torture_corpus(std::path::Path::new(&dir)) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("titalc torture: cannot replay `{dir}`: {error}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        let replayed = report.layers.iter().map(|l| l.mutants).sum::<u64>();
        print!("{report}");
        println!("corpus replay: {replayed} file(s)");
        return if report.finding_count() == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_VERIFY)
        };
    }
    if layers.is_empty() {
        layers = Layer::ALL.to_vec();
    }
    let report = run_torture(seed, iters, layers);
    print!("{report}");
    if let Some(dir) = corpus {
        if report.finding_count() > 0 {
            match write_corpus(std::path::Path::new(&dir), &report) {
                Ok(paths) => {
                    for path in paths {
                        println!("wrote {}", path.display());
                    }
                }
                Err(error) => {
                    eprintln!("titalc torture: cannot write corpus to `{dir}`: {error}");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
    }
    if report.finding_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_VERIFY)
    }
}

/// `titalc synth`: re-run rewrite-rule synthesis and print the verified
/// table (the exact checked-in format), or with `--check` compare the
/// regeneration byte-for-byte against the shipped table — the CI
/// determinism gate. A mismatch exits `EXIT_VERIFY`.
fn run_synth_cmd(argv: &[String]) -> ExitCode {
    let mut check = false;
    for arg in argv {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--check" => check = true,
            other => {
                eprintln!("titalc synth: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let report = synthesize(&SynthConfig::default());
    let text = report.table.to_text();
    eprintln!(
        "synth: {} term(s) enumerated, {} candidate identity(ies), \
         {} unproven candidate(s) dropped, {} rule(s) verified",
        report.terms_enumerated,
        report.candidates,
        report.rejected,
        report.table.rules().len()
    );
    if !check {
        print!("{text}");
        return ExitCode::SUCCESS;
    }
    if text == DEFAULT_TABLE_TEXT {
        println!(
            "synth check: regenerated table is byte-identical to the shipped one \
             ({} rule(s))",
            report.table.rules().len()
        );
        return ExitCode::SUCCESS;
    }
    let diverging = text
        .lines()
        .zip(DEFAULT_TABLE_TEXT.lines())
        .position(|(fresh, shipped)| fresh != shipped);
    match diverging {
        Some(index) => eprintln!(
            "titalc synth: line {} differs from the shipped table:\n  regenerated: {}\n  shipped:     {}",
            index + 1,
            text.lines().nth(index).unwrap_or(""),
            DEFAULT_TABLE_TEXT.lines().nth(index).unwrap_or("")
        ),
        None => eprintln!(
            "titalc synth: regenerated table has {} line(s), the shipped one {}",
            text.lines().count(),
            DEFAULT_TABLE_TEXT.lines().count()
        ),
    }
    ExitCode::from(EXIT_VERIFY)
}

/// Parses `--inject panic:K,timeout:J`.
fn parse_inject(spec: &str) -> Result<FaultInjection, String> {
    let mut inject = FaultInjection::default();
    for part in spec.split(',') {
        let (kind, every) = part
            .split_once(':')
            .ok_or_else(|| format!("inject spec `{part}` must be kind:N"))?;
        let every: u64 = every
            .parse()
            .map_err(|_| format!("bad inject period `{every}`"))?;
        match kind {
            "panic" => inject.panic_every = Some(every),
            "timeout" => inject.timeout_every = Some(every),
            other => return Err(format!("unknown inject kind `{other}`")),
        }
    }
    Ok(inject)
}

/// Whether a record may seed the cross-sweep result cache: only
/// deterministic outcomes (completions and typed rejects) qualify —
/// panics and timeouts are exactly the outcomes worth retrying.
fn cacheable(record: &CellRecord) -> bool {
    matches!(record.status, CellStatus::Ok(_) | CellStatus::Reject { .. })
}

/// Bridges engine observer callbacks onto a worker-lane timeline: one
/// sweep-process thread per worker, each item rendered by
/// [`TimelineSink::sweep_item`].
struct SweepTimeline {
    sink: TimelineSink<BufWriter<std::fs::File>>,
}

impl SweepObserver for SweepTimeline {
    fn item(
        &mut self,
        worker: usize,
        start_us: u64,
        end_us: u64,
        cached: bool,
        record: &CellRecord,
    ) {
        self.sink.sweep_item(&SweepItem {
            worker,
            start_us,
            end_us,
            cached,
            cell: &record.cell,
            workload: &record.workload,
            status: record.status.label(),
        });
    }
}

/// `titalc sweep`: enumerate a machine grid, compile each workload's
/// front half once, fan scheduling + simulation out across workers with
/// fault quarantine, and print a `supersym.sweep/v1` summary ending in
/// the speedup-vs-cost Pareto frontier. Exits `EXIT_VERIFY` when any
/// item was quarantined, `EXIT_SIM` on output I/O errors.
#[allow(clippy::too_many_lines)]
fn run_sweep_cmd(argv: &[String]) -> ExitCode {
    let mut grid_text: Option<String> = None;
    let mut workload_filter: Option<Vec<String>> = None;
    let mut opt = OptLevel::O4;
    let mut oracle = OracleKind::default();
    let mut jobs = 1_usize;
    let mut fuel = DEFAULT_CELL_FUEL;
    let mut checkpoint: Option<String> = None;
    let mut resuming = false;
    let mut out: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut timeline: Option<String> = None;
    let mut inject = FaultInjection::default();
    let mut deadline_ms: Option<u64> = None;
    let mut verify = false;
    let usage = |message: String| -> ExitCode {
        eprintln!("titalc sweep: {message}\n\n{USAGE}");
        ExitCode::from(EXIT_USAGE)
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--grid" => match iter.next() {
                Some(spec) => grid_text = Some(spec.clone()),
                None => return usage("--grid needs a spec".to_string()),
            },
            "--workloads" => match iter.next() {
                Some(csv) => {
                    workload_filter = Some(csv.split(',').map(str::to_string).collect());
                }
                None => return usage("--workloads needs a name list".to_string()),
            },
            "--jobs" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v > 0 => jobs = v,
                _ => return usage("--jobs needs a positive integer".to_string()),
            },
            "--fuel" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => fuel = v,
                _ => return usage("--fuel needs a positive integer".to_string()),
            },
            "--checkpoint" => match iter.next() {
                Some(path) => checkpoint = Some(path.clone()),
                None => return usage("--checkpoint needs a file path".to_string()),
            },
            "--resume" => match iter.next() {
                Some(path) => {
                    checkpoint = Some(path.clone());
                    resuming = true;
                }
                None => return usage("--resume needs a file path".to_string()),
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => return usage("--out needs a file path".to_string()),
            },
            "--cache" => match iter.next() {
                Some(path) => cache_path = Some(path.clone()),
                None => return usage("--cache needs a file path".to_string()),
            },
            "--timeline" => match iter.next() {
                Some(path) => timeline = Some(path.clone()),
                None => return usage("--timeline needs a file path".to_string()),
            },
            "--deadline-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => deadline_ms = Some(v),
                _ => return usage("--deadline-ms needs a positive integer".to_string()),
            },
            "--inject" => match iter.next().map(|spec| parse_inject(spec)) {
                Some(Ok(v)) => inject = v,
                Some(Err(message)) => return usage(message),
                None => return usage("--inject needs a spec".to_string()),
            },
            "--oracle" => match iter.next().map(String::as_str) {
                Some("symbolic") => oracle = OracleKind::Symbolic,
                Some("conservative") => oracle = OracleKind::Conservative,
                _ => return usage("--oracle must be symbolic|conservative".to_string()),
            },
            "--verify" => verify = true,
            level if level.starts_with("-O") => match level[2..].parse::<usize>() {
                Ok(n) if n < OptLevel::ALL.len() => opt = OptLevel::ALL[n],
                _ => return usage(format!("bad optimization level `{level}`")),
            },
            other => return usage(format!("unknown option `{other}`")),
        }
    }
    let Some(grid_text) = grid_text else {
        return usage("--grid is required".to_string());
    };
    let grid = match GridSpec::parse(&grid_text) {
        Ok(grid) => grid,
        Err(error) => return usage(format!("bad grid: {error}")),
    };
    let mut workloads = suite(Size::Small);
    if let Some(filter) = workload_filter.filter(|f| f != &["all".to_string()]) {
        for name in &filter {
            if !workloads.iter().any(|w| w.name == name) {
                return usage(format!("unknown workload `{name}`"));
            }
        }
        workloads.retain(|w| filter.iter().any(|name| name == w.name));
    }
    let runner = PipelineCellRunner::new(&workloads, opt, oracle, fuel, verify);
    let plan = SweepPlan {
        workload_names: runner.names().to_vec(),
        fuel,
        identity: runner.identity(&grid.canonical(), opt, oracle),
        grid,
    };
    let header = plan.header();

    // Checkpoint: on resume, recover every intact record and rewrite the
    // journal (header + intact records) so a torn tail line from a kill
    // cannot corrupt the first appended record.
    let mut resume_state = None;
    let mut journal_file = None;
    if let Some(path) = &checkpoint {
        if resuming {
            if let Ok(text) = std::fs::read_to_string(path) {
                match load_checkpoint(&text, &header) {
                    Ok(state) => resume_state = Some(state),
                    Err(error) => {
                        eprintln!("titalc sweep: cannot resume `{path}`: {error}");
                        return ExitCode::from(EXIT_USAGE);
                    }
                }
            }
        }
        let rewrite = || -> std::io::Result<std::fs::File> {
            let mut file = std::fs::File::create(path)?;
            writeln!(file, "{}", header.render())?;
            if let Some(state) = &resume_state {
                for record in state.done.iter().flatten() {
                    writeln!(file, "{}", record.render())?;
                }
            }
            Ok(file)
        };
        match rewrite() {
            Ok(file) => journal_file = Some(file),
            Err(error) => {
                eprintln!("titalc sweep: cannot write checkpoint `{path}`: {error}");
                return ExitCode::from(EXIT_SIM);
            }
        }
    }

    // Result cache: prior records, keyed by (program hash, machine hash).
    let mut cache_records: Vec<CellRecord> = Vec::new();
    if let Some(path) = &cache_path {
        if let Ok(text) = std::fs::read_to_string(path) {
            cache_records.extend(text.lines().filter_map(CellRecord::parse));
        }
    }
    let cache = cache_from_records(cache_records.iter());

    let config = SweepConfig {
        jobs,
        deadline_ms,
        inject,
        quiet: true,
    };
    let timeline_observer = match &timeline {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => Some(Mutex::new(SweepTimeline {
                sink: TimelineSink::new(BufWriter::new(file)),
            })),
            Err(error) => {
                eprintln!("titalc sweep: cannot write timeline `{path}`: {error}");
                return ExitCode::from(EXIT_SIM);
            }
        },
        None => None,
    };
    let outcome = match run_sweep_observed(
        &plan,
        &runner,
        &config,
        resume_state,
        &cache,
        journal_file.as_mut().map(|f| f as &mut (dyn Write + Send)),
        timeline_observer
            .as_ref()
            .map(|m| m as &Mutex<dyn SweepObserver>),
    ) {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("titalc sweep: error writing checkpoint: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    };

    if let Some(observer) = timeline_observer {
        let finish = observer
            .into_inner()
            .unwrap()
            .sink
            .finish()
            .and_then(|mut out| out.flush());
        if let Err(error) = finish {
            let path = timeline.as_deref().unwrap_or_default();
            eprintln!("titalc sweep: error writing timeline `{path}`: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    }

    if let Some(path) = &cache_path {
        let mut seen: HashSet<(u64, u64)> = cache.keys().copied().collect();
        for record in &outcome.records {
            if cacheable(record) && seen.insert((record.program_hash, record.machine_hash)) {
                cache_records.push(record.clone());
            }
        }
        let mut text = String::new();
        for record in &cache_records {
            text.push_str(&record.render());
            text.push('\n');
        }
        if let Err(error) = std::fs::write(path, text) {
            eprintln!("titalc sweep: cannot write cache `{path}`: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    }

    if let Some(path) = &out {
        let mut text = header.render();
        text.push('\n');
        for record in &outcome.records {
            text.push_str(&record.render());
            text.push('\n');
        }
        if let Err(error) = std::fs::write(path, text) {
            eprintln!("titalc sweep: cannot write output `{path}`: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    }

    let cells = plan.grid.cells();
    let summaries = aggregate_cells(&outcome.records, &cells);
    let frontier = pareto_frontier(&summaries);
    let summary = JsonObject::new()
        .field("schema", JsonValue::str(SCHEMA))
        .field("grid", JsonValue::str(plan.grid.canonical()))
        .field("cells", JsonValue::UInt(cells.len() as u64))
        .field(
            "workloads",
            JsonValue::UInt(plan.workload_names.len() as u64),
        )
        .field("records", JsonValue::UInt(outcome.records.len() as u64))
        .field("executed", JsonValue::UInt(outcome.executed as u64))
        .field("cached", JsonValue::UInt(outcome.cached as u64))
        .field("resumed", JsonValue::UInt(outcome.resumed as u64))
        .field("quarantined", JsonValue::UInt(outcome.quarantined as u64))
        .field("resumable", JsonValue::Bool(checkpoint.is_some()))
        .field("metrics", {
            let mut registry = MetricsRegistry::new();
            outcome.metrics.register(&mut registry);
            registry.to_json()
        })
        .field("pareto", frontier_json(&frontier))
        .build();
    println!("{}", summary.pretty());
    if outcome.quarantined > 0 {
        ExitCode::from(EXIT_VERIFY)
    } else {
        ExitCode::SUCCESS
    }
}

/// Loads a `supersym.bench/v1` snapshot as `(name, ns)` rows in file
/// order, preferring the noise-resistant `min_ns` statistic and falling
/// back to `mean_ns` for snapshots taken before minimums were recorded.
/// `Err` carries the exit code: `EXIT_USAGE` for unreadable files,
/// `EXIT_PARSE` for malformed or wrong-schema documents.
fn load_bench_rows(path: &str) -> Result<Vec<(String, u64)>, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("titalc bench-diff: cannot read `{path}`: {error}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
    };
    let malformed = |message: &str| {
        eprintln!("titalc bench-diff: {path}: {message}");
        Err(ExitCode::from(EXIT_PARSE))
    };
    let doc = match parse_json(&text) {
        Ok(doc) => doc,
        Err(error) => return malformed(&error.to_string()),
    };
    if doc.get("schema").and_then(JsonValue::as_str) != Some("supersym.bench/v1") {
        return malformed("not a supersym.bench/v1 snapshot");
    }
    let Some(rows) = doc.get("rows").and_then(JsonValue::as_array) else {
        return malformed("missing rows array");
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let name = row.get("name").and_then(JsonValue::as_str);
        let mean_ns = row.get("mean_ns").and_then(JsonValue::as_u64);
        let min_ns = row.get("min_ns").and_then(JsonValue::as_u64);
        match (name, min_ns.or(mean_ns)) {
            (Some(name), Some(ns)) => out.push((name.to_string(), ns)),
            _ => return malformed("row without name/mean_ns"),
        }
    }
    Ok(out)
}

/// `titalc bench-diff OLD.json NEW.json`: per-row percent deltas between
/// two bench snapshots. Rows present in only one snapshot are reported but
/// never counted as regressions. Exits `EXIT_VERIFY` when any common row
/// got slower by more than the threshold (default 10%). With `--only`,
/// rows outside the prefix are still printed but never fail the diff —
/// the shape of a gate that blocks on one subsystem while the rest of the
/// snapshot stays informational.
fn run_bench_diff(argv: &[String]) -> ExitCode {
    let mut threshold = 10.0_f64;
    let mut only: Option<&String> = None;
    let mut paths: Vec<&String> = Vec::new();
    let usage = |message: String| -> ExitCode {
        eprintln!("titalc bench-diff: {message}\n\n{USAGE}");
        ExitCode::from(EXIT_USAGE)
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--threshold" => match iter.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v > 0.0 => threshold = v,
                _ => return usage("--threshold needs a positive number".to_string()),
            },
            "--only" => match iter.next() {
                Some(prefix) => only = Some(prefix),
                None => return usage("--only needs a row-name prefix".to_string()),
            },
            path if !path.starts_with('-') => paths.push(arg),
            other => return usage(format!("unknown option `{other}`")),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("expected exactly two snapshot files".to_string());
    };
    let old_rows = match load_bench_rows(old_path) {
        Ok(rows) => rows,
        Err(code) => return code,
    };
    let new_rows = match load_bench_rows(new_path) {
        Ok(rows) => rows,
        Err(code) => return code,
    };
    println!("bench diff: {old_path} -> {new_path} (threshold {threshold}%)");
    println!(
        "  {:<44} {:>12} {:>12} {:>9}",
        "row", "old ns", "new ns", "delta"
    );
    let mut regressions = 0_usize;
    for (name, new_ns) in &new_rows {
        let Some(&(_, old_ns)) = old_rows.iter().find(|(n, _)| n == name) else {
            println!("  {name:<44} {:>12} {:>12} {:>9}", "-", new_ns, "new");
            continue;
        };
        let delta = if old_ns == 0 {
            0.0
        } else {
            100.0 * (*new_ns as f64 - old_ns as f64) / old_ns as f64
        };
        let gated = only.is_none_or(|prefix| name.starts_with(prefix.as_str()));
        let flag = if delta > threshold && gated {
            regressions += 1;
            "  REGRESSION"
        } else {
            ""
        };
        println!("  {name:<44} {old_ns:>12} {new_ns:>12} {delta:>+8.1}%{flag}");
    }
    for (name, old_ns) in &old_rows {
        if !new_rows.iter().any(|(n, _)| n == name) {
            println!("  {name:<44} {old_ns:>12} {:>12} {:>9}", "-", "removed");
        }
    }
    if regressions > 0 {
        eprintln!("titalc bench-diff: {regressions} row(s) regressed beyond {threshold}%");
        ExitCode::from(EXIT_VERIFY)
    } else {
        ExitCode::SUCCESS
    }
}

/// `titalc certify`: compile with per-pass translation validation and
/// print one line per optimizer pass stating how its before/after IR
/// snapshots were proven equivalent. Certification failures exit with
/// `EXIT_VERIFY` via the pipeline taxonomy.
fn run_certify(path: &str, source: &str, options: &CompileOptions) -> ExitCode {
    let (program, certificates) = match compile_certified(source, options) {
        Ok(pair) => pair,
        Err(error) => {
            eprintln!("titalc: {path}: {error}");
            return ExitCode::from(error.exit_code());
        }
    };
    let mut structural = 0_usize;
    let mut differential = 0_usize;
    println!(
        "translation validation: ({} optimizer pass runs)",
        certificates.len()
    );
    for cert in &certificates {
        let method = match cert.method {
            Some(CertMethod::Structural) => {
                structural += 1;
                "structural"
            }
            Some(CertMethod::Differential) => {
                differential += 1;
                "differential"
            }
            None => "inconclusive",
        };
        println!("  {:<18} {method}", cert.pass);
        for diagnostic in &cert.diagnostics {
            println!("    {diagnostic}");
        }
    }
    println!(
        "certified: {structural} structural, {differential} differential; \
         {} scheduled instruction(s)",
        program.static_size()
    );
    ExitCode::SUCCESS
}

/// Runs the front end and lowers to IR, reporting errors titalc-style.
/// Front-end rejections exit with `EXIT_PARSE`.
fn lower_tital(path: &str, source: &str) -> Result<supersym::ir::Module, ExitCode> {
    let fail = |error: &dyn std::fmt::Display| {
        eprintln!("titalc: {path}: {error}");
        Err(ExitCode::from(EXIT_PARSE))
    };
    let ast = match supersym::lang::parse(source) {
        Ok(ast) => ast,
        Err(error) => return fail(&error),
    };
    if let Err(error) = supersym::lang::check(&ast) {
        return fail(&error);
    }
    match supersym::ir::lower(&ast) {
        Ok(module) => Ok(module),
        Err(error) => fail(&error),
    }
}

/// Prints diagnostics and converts the batch to an exit code
/// (`EXIT_VERIFY` when any diagnostic is an error).
fn report(path: &str, diagnostics: &[supersym::verify::Diagnostic]) -> ExitCode {
    for diagnostic in diagnostics {
        println!("{diagnostic}");
    }
    let errors = error_count(diagnostics);
    if errors > 0 {
        eprintln!("titalc: {path}: {errors} error(s)");
        ExitCode::from(EXIT_VERIFY)
    } else {
        ExitCode::SUCCESS
    }
}

/// `titalc analyze`: lower a Tital file to IR, dump every block's dataflow
/// facts, then run the dataflow lints. Exits nonzero on lint errors. With
/// `--loops`, print the natural-loop forest and scalar-evolution facts
/// instead of the dataflow dump (`--json` for `supersym.loops/v1`).
fn run_analyze(path: &str, source: &str, args: &Args) -> ExitCode {
    let module = match lower_tital(path, source) {
        Ok(module) => module,
        Err(code) => return code,
    };
    if args.loops {
        if args.json {
            print!("{}", loops_json(path, &module).pretty());
            return ExitCode::SUCCESS;
        }
        print_loops(&module);
        return ExitCode::SUCCESS;
    }
    print!("{}", dump_module(&module));
    report(path, &lint_module(&module))
}

/// Resolves a [`supersym::ir::VarRef`] to its source-level name.
fn var_name(module: &supersym::ir::Module, func: &supersym::ir::Function, var: &str) -> String {
    // `VarRef` displays as `@g<n>` / `@l<n>`; map back to source names.
    if let Some(n) = var.strip_prefix("@g").and_then(|n| n.parse::<usize>().ok()) {
        if let Some(global) = module.globals.get(n) {
            return global.name.clone();
        }
    }
    if let Some(n) = var.strip_prefix("@l").and_then(|n| n.parse::<usize>().ok()) {
        if let Some(local) = func.vars.get(n) {
            return local.name.clone();
        }
    }
    var.to_string()
}

/// Renders a classified subscript with source-level variable names.
fn subscript_text(
    module: &supersym::ir::Module,
    func: &supersym::ir::Function,
    subscript: Subscript,
) -> String {
    match subscript {
        Subscript::Linear {
            var,
            stride,
            offset,
        } => format!(
            "[{}{offset:+} ; +{stride}/iter]",
            var_name(module, func, &var.to_string())
        ),
        other => other.to_string(),
    }
}

/// `titalc analyze --loops` (text): the loop forest and per-loop
/// scalar-evolution facts of every function that has loops.
fn print_loops(module: &supersym::ir::Module) {
    let mut total = 0usize;
    for func in &module.funcs {
        let scev = function_scev(func);
        total += scev.forest.loops.len();
    }
    println!(
        "loop forest: {total} loop(s) across {} function(s)",
        module.funcs.len()
    );
    for func in &module.funcs {
        let scev = function_scev(func);
        if scev.forest.loops.is_empty() {
            continue;
        }
        println!("fn {}:", func.name);
        for (index, info) in scev.forest.loops.iter().enumerate() {
            let body: Vec<String> = info.body.iter().map(|b| b.to_string()).collect();
            let latches: Vec<String> = info.latches.iter().map(|b| b.to_string()).collect();
            println!(
                "  loop {index}: header {} depth {} body [{}] latches [{}]{}",
                info.header,
                info.depth,
                body.join(" "),
                latches.join(" "),
                if info.is_innermost() {
                    " innermost"
                } else {
                    ""
                }
            );
            let facts = &scev.loops[index];
            for iv in &facts.inductions {
                println!(
                    "    iv {} step {:+}",
                    var_name(module, func, &iv.var.to_string()),
                    iv.step
                );
            }
            for (a, access) in facts.accesses.iter().enumerate() {
                println!(
                    "    access {a}: {} {}{} @ {}:{}",
                    if access.is_write { "write" } else { "read" },
                    module
                        .globals
                        .get(access.arr.0 as usize)
                        .map_or("?", |g| g.name.as_str()),
                    subscript_text(module, func, access.subscript),
                    access.block,
                    access.inst
                );
            }
            for dep in &facts.deps {
                println!(
                    "    dep {} -> {}: {} {}",
                    dep.src, dep.dst, dep.kind, dep.distance
                );
            }
        }
    }
}

/// Builds the `supersym.loops/v1` JSON document for `analyze --loops`.
fn loops_json(path: &str, module: &supersym::ir::Module) -> JsonValue {
    let functions = module
        .funcs
        .iter()
        .map(|func| {
            let scev = function_scev(func);
            let loops = scev
                .forest
                .loops
                .iter()
                .enumerate()
                .map(|(index, info)| {
                    let facts = &scev.loops[index];
                    let inductions = facts
                        .inductions
                        .iter()
                        .map(|iv| {
                            JsonObject::new()
                                .field(
                                    "var",
                                    JsonValue::str(var_name(module, func, &iv.var.to_string())),
                                )
                                .field("step", JsonValue::Int(iv.step))
                                .build()
                        })
                        .collect();
                    let accesses = facts
                        .accesses
                        .iter()
                        .map(|access| {
                            JsonObject::new()
                                .field("block", JsonValue::UInt(access.block.index() as u64))
                                .field("inst", JsonValue::UInt(access.inst as u64))
                                .field(
                                    "array",
                                    JsonValue::str(
                                        module
                                            .globals
                                            .get(access.arr.0 as usize)
                                            .map_or("?", |g| g.name.as_str()),
                                    ),
                                )
                                .field(
                                    "kind",
                                    JsonValue::str(if access.is_write { "write" } else { "read" }),
                                )
                                .field(
                                    "subscript",
                                    JsonValue::str(subscript_text(module, func, access.subscript)),
                                )
                                .build()
                        })
                        .collect();
                    let deps = facts
                        .deps
                        .iter()
                        .map(|dep| {
                            JsonObject::new()
                                .field("src", JsonValue::UInt(dep.src as u64))
                                .field("dst", JsonValue::UInt(dep.dst as u64))
                                .field("kind", JsonValue::str(dep.kind.to_string()))
                                .field(
                                    "distance",
                                    match dep.distance {
                                        Distance::Exact(d) => JsonValue::UInt(d),
                                        Distance::Any => JsonValue::Null,
                                    },
                                )
                                .build()
                        })
                        .collect();
                    JsonObject::new()
                        .field("index", JsonValue::UInt(index as u64))
                        .field("header", JsonValue::UInt(info.header.index() as u64))
                        .field("depth", JsonValue::UInt(info.depth as u64))
                        .field("innermost", JsonValue::Bool(info.is_innermost()))
                        .field(
                            "body",
                            JsonValue::Array(
                                info.body
                                    .iter()
                                    .map(|b| JsonValue::UInt(b.index() as u64))
                                    .collect(),
                            ),
                        )
                        .field(
                            "latches",
                            JsonValue::Array(
                                info.latches
                                    .iter()
                                    .map(|b| JsonValue::UInt(b.index() as u64))
                                    .collect(),
                            ),
                        )
                        .field("inductions", JsonValue::Array(inductions))
                        .field("accesses", JsonValue::Array(accesses))
                        .field("deps", JsonValue::Array(deps))
                        .build()
                })
                .collect();
            JsonObject::new()
                .field("name", JsonValue::str(func.name.clone()))
                .field("loops", JsonValue::Array(loops))
                .build()
        })
        .collect();
    JsonObject::new()
        .field("schema", JsonValue::str("supersym.loops/v1"))
        .field("source", JsonValue::str(path))
        .field("functions", JsonValue::Array(functions))
        .build()
}

/// `titalc lint`: statically check a machine description (`.machine`), a
/// Tital source file (`.tital`, via the dataflow lints), an emitted
/// timeline document (`.json`, via the trace_event validator) or an
/// assembly program (anything else), printing every diagnostic. Parse
/// failures exit with `EXIT_PARSE`; diagnostic errors with `EXIT_VERIFY`.
fn run_lint(path: &str, source: &str, machine_name: Option<&str>) -> ExitCode {
    let diagnostics = if path.ends_with(".machine") {
        match parse_machine_spec(source) {
            Ok(spec) => spec.diagnose(),
            Err(error) => {
                eprintln!("titalc: {path}: {error}");
                return ExitCode::from(EXIT_PARSE);
            }
        }
    } else if path.ends_with(".tital") {
        match lower_tital(path, source) {
            Ok(module) => lint_module(&module),
            Err(code) => return code,
        }
    } else if path.ends_with(".json") {
        return match validate_timeline(source) {
            Ok(report) => {
                println!(
                    "{path}: valid timeline ({} event(s), {} lane(s))",
                    report.events, report.lanes
                );
                ExitCode::SUCCESS
            }
            Err(supersym::trace::TimelineError::Parse(error)) => {
                eprintln!("titalc: {path}: {error}");
                ExitCode::from(EXIT_PARSE)
            }
            Err(error) => {
                eprintln!("titalc: {path}: {error}");
                ExitCode::from(EXIT_VERIFY)
            }
        };
    } else {
        let program = match supersym::isa::parse_program(source) {
            Ok(program) => program,
            Err(error) => {
                eprintln!("titalc: {path}: {error}");
                return ExitCode::from(EXIT_PARSE);
            }
        };
        let machine = match machine_name {
            Some(name) => match parse_machine(name) {
                Some(machine) => Some(machine),
                None => {
                    eprintln!("titalc: unknown machine `{name}` (try --machines)");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            None => None,
        };
        lint_program(&program, machine.as_ref())
    };
    report(path, &diagnostics)
}

/// Records compile phases in memory for the profile report while
/// optionally forwarding every phase *and* issue event to a JSON-lines
/// trace file. Issue events are never buffered in memory — a long run
/// emits one per dynamic instruction.
struct ProfileSink {
    memory: MemorySink,
    file: Option<JsonLinesSink<BufWriter<std::fs::File>>>,
    timeline: Option<TimelineSink<BufWriter<std::fs::File>>>,
}

impl TraceSink for ProfileSink {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        self.memory.phase(record);
        if let Some(file) = &mut self.file {
            file.phase(record);
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.phase(record);
        }
    }

    fn issue(&mut self, event: &IssueEvent) {
        if let Some(file) = &mut self.file {
            file.issue(event);
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.issue(event);
        }
    }
}

/// Opens `--trace <FILE>` for JSON-lines streaming.
fn open_trace(path: &str) -> Result<JsonLinesSink<BufWriter<std::fs::File>>, ExitCode> {
    match std::fs::File::create(path) {
        Ok(file) => Ok(JsonLinesSink::new(BufWriter::new(file))),
        Err(error) => {
            eprintln!("titalc: cannot write trace to `{path}`: {error}");
            Err(ExitCode::from(EXIT_SIM))
        }
    }
}

/// Flushes a trace sink, surfacing any write error that occurred while the
/// sink was quietly swallowing them mid-run.
fn close_trace(sink: JsonLinesSink<BufWriter<std::fs::File>>, path: &str) -> Result<(), ExitCode> {
    let flushed = sink.finish().and_then(|mut writer| writer.flush());
    match flushed {
        Ok(()) => Ok(()),
        Err(error) => {
            eprintln!("titalc: error writing trace `{path}`: {error}");
            Err(ExitCode::from(EXIT_SIM))
        }
    }
}

/// Opens `--timeline <FILE>` with its simulate lanes named after
/// `machine`'s functional units. Failures exit `EXIT_SIM`, like every
/// other requested-output writer.
fn open_timeline(
    path: &str,
    machine: &MachineConfig,
) -> Result<TimelineSink<BufWriter<std::fs::File>>, ExitCode> {
    match std::fs::File::create(path) {
        Ok(file) => {
            let lanes = machine
                .functional_units()
                .iter()
                .map(|unit| unit.name().to_string())
                .collect();
            let class_lane = InstrClass::ALL
                .iter()
                .map(|&class| (class.mnemonic().to_string(), machine.unit_of(class)))
                .collect();
            Ok(TimelineSink::new(BufWriter::new(file)).with_pipeline_lanes(lanes, class_lane))
        }
        Err(error) => {
            eprintln!("titalc: cannot write timeline to `{path}`: {error}");
            Err(ExitCode::from(EXIT_SIM))
        }
    }
}

/// Closes a timeline document, surfacing any swallowed write error.
fn close_timeline(
    sink: TimelineSink<BufWriter<std::fs::File>>,
    path: &str,
) -> Result<(), ExitCode> {
    let flushed = sink.finish().and_then(|mut writer| writer.flush());
    match flushed {
        Ok(_) => Ok(()),
        Err(error) => {
            eprintln!("titalc: error writing timeline `{path}`: {error}");
            Err(ExitCode::from(EXIT_SIM))
        }
    }
}

/// Prints the cycle account: every machine cycle charged to issue, one
/// stall cause, or pipeline drain (the rows sum exactly to the total).
fn print_cycle_account(account: &CycleAccount) {
    let total = account.machine_cycles().max(1);
    let pct = |cycles: u64| 100.0 * cycles as f64 / total as f64;
    println!(
        "cycle account:  ({} machine cycles; rows sum exactly)",
        account.machine_cycles()
    );
    println!(
        "  {:<22} {:>12} {:>7.1}%",
        "issue",
        account.issue_cycles(),
        pct(account.issue_cycles())
    );
    for (index, name) in StallCause::NAMES.iter().enumerate() {
        let cycles = account.stall_cycles(index);
        if cycles > 0 {
            println!("  {name:<22} {cycles:>12} {:>7.1}%", pct(cycles));
        }
    }
    if account.drain_cycles() > 0 {
        println!(
            "  {:<22} {:>12} {:>7.1}%",
            "drain",
            account.drain_cycles(),
            pct(account.drain_cycles())
        );
    }
}

/// Prints the dynamic class census folded together with the per-class wait
/// rollup: one aligned table instead of two disjoint ones.
fn print_class_table(census: &ClassCensus, account: &CycleAccount) {
    let total = census.total().max(1);
    println!("class mix:      (dynamic count · share · cycles spent waiting to issue)");
    println!(
        "  {:<10} {:>12} {:>7} {:>12}",
        "class", "count", "share", "wait cycles"
    );
    for class in InstrClass::ALL {
        let count = census.count(class);
        let wait = account.class_wait_cycles(class);
        if count == 0 && wait == 0 {
            continue;
        }
        println!(
            "  {:<10} {count:>12} {:>6.1}% {wait:>12}",
            class.mnemonic(),
            100.0 * count as f64 / total as f64
        );
    }
    println!(
        "  {:<10} {:>12} {:>6.1}% {:>12}",
        "total",
        census.total(),
        100.0,
        account.total_wait_cycles()
    );
}

/// Prints per-functional-unit wait pressure (FU-busy waits only).
fn print_fu_waits(account: &CycleAccount) {
    let rows: Vec<(&str, u64)> = account.fu_wait_cycles().filter(|&(_, w)| w > 0).collect();
    if rows.is_empty() {
        return;
    }
    println!("functional-unit pressure: (cycles instructions waited on a busy unit)");
    for (name, wait) in rows {
        println!("  {name:<22} {wait:>12}");
    }
}

/// Prints the most-waited-on producer instructions.
fn print_producers(report: &SimReport) {
    let producers = report.critical_producers();
    if producers.is_empty() {
        return;
    }
    println!("critical producers: (result latency most waited on)");
    for p in producers {
        println!(
            "  {:>8} cycles  {}:{:<4} {}",
            p.wait_cycles, p.function, p.pc, p.instr
        );
    }
}

/// Rounds to four decimals so the JSON report is stable to read and diff.
fn round4(value: f64) -> f64 {
    (value * 10_000.0).round() / 10_000.0
}

/// Builds the `supersym.profile/v1` JSON document.
fn profile_json(
    path: &str,
    opt: OptLevel,
    oracle: OracleKind,
    report: &SimReport,
    static_size: usize,
    phases: &[supersym::trace::OwnedPhase],
) -> JsonValue {
    let account = report.cycle_account();
    let phase_array = phases
        .iter()
        .map(|phase| {
            let mut counters = JsonObject::new();
            for (key, value) in &phase.counters {
                counters = counters.field(key.clone(), JsonValue::UInt(*value));
            }
            JsonObject::new()
                .field("name", JsonValue::str(phase.name.clone()))
                .field(
                    "wall_ns",
                    JsonValue::UInt(u64::try_from(phase.wall_ns).unwrap_or(u64::MAX)),
                )
                .field("counters", counters.build())
                .build()
        })
        .collect();
    let mut stalls = JsonObject::new();
    let mut waits = JsonObject::new();
    for (index, label) in StallCause::LABELS.iter().enumerate() {
        stalls = stalls.field(*label, JsonValue::UInt(account.stall_cycles(index)));
        waits = waits.field(*label, JsonValue::UInt(account.wait_cycles(index)));
    }
    let classes = InstrClass::ALL
        .iter()
        .filter(|class| {
            report.census().count(**class) > 0 || account.class_wait_cycles(**class) > 0
        })
        .map(|class| {
            JsonObject::new()
                .field("class", JsonValue::str(class.mnemonic()))
                .field("count", JsonValue::UInt(report.census().count(*class)))
                .field(
                    "wait_cycles",
                    JsonValue::UInt(account.class_wait_cycles(*class)),
                )
                .build()
        })
        .collect();
    let units = account
        .fu_wait_cycles()
        .map(|(name, wait)| {
            JsonObject::new()
                .field("name", JsonValue::str(name))
                .field("wait_cycles", JsonValue::UInt(wait))
                .build()
        })
        .collect();
    let producers = report
        .critical_producers()
        .iter()
        .map(|p| {
            JsonObject::new()
                .field("function", JsonValue::str(p.function.clone()))
                .field("pc", JsonValue::UInt(p.pc as u64))
                .field("instr", JsonValue::str(p.instr.clone()))
                .field("wait_cycles", JsonValue::UInt(p.wait_cycles))
                .build()
        })
        .collect();
    let cycles = JsonObject::new()
        .field("total", JsonValue::UInt(account.machine_cycles()))
        .field("issue", JsonValue::UInt(account.issue_cycles()))
        .field("stalls", stalls.build())
        .field("drain", JsonValue::UInt(account.drain_cycles()))
        .field("conserved", JsonValue::Bool(account.conserved()))
        .build();
    let run = JsonObject::new()
        .field("instructions", JsonValue::UInt(report.instructions()))
        .field("machine_cycles", JsonValue::UInt(report.machine_cycles()))
        .field(
            "base_cycles",
            JsonValue::Float(round4(report.base_cycles())),
        )
        .field(
            "rate",
            JsonValue::Float(round4(report.available_parallelism())),
        )
        .field("cycles", cycles)
        .field("waits", waits.build())
        .field("classes", JsonValue::Array(classes))
        .field("functional_units", JsonValue::Array(units))
        .field("critical_producers", JsonValue::Array(producers))
        .build();
    JsonObject::new()
        .field("schema", JsonValue::str("supersym.profile/v1"))
        .field("source", JsonValue::str(path))
        .field("machine", JsonValue::str(report.machine()))
        .field("optimization", JsonValue::str(opt.label()))
        .field(
            "oracle",
            JsonValue::str(match oracle {
                OracleKind::Symbolic => "symbolic",
                OracleKind::Conservative => "conservative",
            }),
        )
        .field("static_size", JsonValue::UInt(static_size as u64))
        .field(
            "compile",
            JsonObject::new()
                .field("phases", JsonValue::Array(phase_array))
                .build(),
        )
        .field("run", run)
        .build()
}

/// `titalc profile`: compile with phase telemetry, run with the cycle
/// account, and report both — as tables, or as one JSON document with
/// `--json`. `--trace <FILE>` additionally streams raw events.
fn run_profile(
    path: &str,
    source: &str,
    args: &Args,
    machine: &MachineConfig,
    options: &CompileOptions,
) -> ExitCode {
    let file = match &args.trace {
        Some(trace_path) => match open_trace(trace_path) {
            Ok(sink) => Some(sink),
            Err(code) => return code,
        },
        None => None,
    };
    let timeline = match &args.timeline {
        Some(timeline_path) => match open_timeline(timeline_path, machine) {
            Ok(sink) => Some(sink),
            Err(code) => return code,
        },
        None => None,
    };
    let mut sink = ProfileSink {
        memory: MemorySink::new(),
        file,
        timeline,
    };
    let program = match compile_with_trace(source, options, &mut sink) {
        Ok(program) => program,
        Err(error) => {
            eprintln!("titalc: {error}");
            return ExitCode::from(error.exit_code());
        }
    };
    let report = match simulate_with_sink(&program, machine, SimOptions::default(), &mut sink) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("titalc: runtime error: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    };
    if let Some(file) = sink.file.take() {
        if let Err(code) = close_trace(file, args.trace.as_deref().unwrap_or("")) {
            return code;
        }
    }
    if let Some(timeline) = sink.timeline.take() {
        if let Err(code) = close_timeline(timeline, args.timeline.as_deref().unwrap_or("")) {
            return code;
        }
    }
    let account = report.cycle_account();
    if !account.conserved() {
        eprintln!(
            "titalc: internal error: cycle account does not balance on `{}`",
            machine.name()
        );
        return ExitCode::from(EXIT_SIM);
    }
    if args.json {
        print!(
            "{}",
            profile_json(
                path,
                args.opt,
                args.oracle,
                &report,
                program.static_size(),
                &sink.memory.phases
            )
            .pretty()
        );
        return ExitCode::SUCCESS;
    }
    println!("machine:        {}", machine.name());
    println!("optimization:   {}", args.opt);
    println!("static size:    {} instructions", program.static_size());
    println!("dynamic count:  {} instructions", report.instructions());
    println!("time:           {:.1} base cycles", report.base_cycles());
    println!(
        "rate:           {:.3} instructions/cycle",
        report.available_parallelism()
    );
    println!("compile phases:");
    for phase in &sink.memory.phases {
        let mut counters = String::new();
        for (key, value) in &phase.counters {
            counters.push_str(&format!("  {key}={value}"));
        }
        println!(
            "  {:<16} {:>9.3}ms{counters}",
            phase.name,
            phase.wall_ns as f64 / 1e6
        );
    }
    print_cycle_account(account);
    print_class_table(report.census(), account);
    print_fu_waits(account);
    print_producers(&report);
    ExitCode::SUCCESS
}

/// Captures what `titalc stats` needs from one compile+run: phases in
/// memory for the wall-time block, issue events folded straight into the
/// distribution histograms (never buffered).
struct StatsSink {
    memory: MemorySink,
    metrics: MetricsSink,
}

impl TraceSink for StatsSink {
    fn phase(&mut self, record: &PhaseRecord<'_>) {
        self.memory.phase(record);
    }

    fn issue(&mut self, event: &IssueEvent) {
        self.metrics.issue(event);
    }
}

/// `titalc stats`: compile and run like `titalc profile`, then emit one
/// `supersym.metrics/v1` document — the metrics registry (compile phase
/// counters, run counters/gauges, stall-run-length and per-block ILP
/// histograms) plus the per-phase wall times. Everything in `metrics` is
/// deterministic; wall time lives only in `compile.phases`.
fn run_stats(
    path: &str,
    source: &str,
    args: &Args,
    machine: &MachineConfig,
    options: &CompileOptions,
) -> ExitCode {
    let mut sink = StatsSink {
        memory: MemorySink::new(),
        metrics: MetricsSink::new(),
    };
    let program = match compile_with_trace(source, options, &mut sink) {
        Ok(program) => program,
        Err(error) => {
            eprintln!("titalc: {error}");
            return ExitCode::from(error.exit_code());
        }
    };
    let report = match simulate_with_sink(&program, machine, SimOptions::default(), &mut sink) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("titalc: runtime error: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    };
    let account = report.cycle_account();
    if !account.conserved() {
        eprintln!(
            "titalc: internal error: cycle account does not balance on `{}`",
            machine.name()
        );
        return ExitCode::from(EXIT_SIM);
    }
    let mut registry = phase_metrics(&sink.memory.phases);
    registry.counter("sim.static_size", program.static_size() as u64);
    registry.counter("sim.instructions", report.instructions());
    registry.counter("sim.machine_cycles", report.machine_cycles());
    registry.counter("sim.issue_cycles", account.issue_cycles());
    registry.counter("sim.stall_cycles", account.total_stall_cycles());
    registry.counter("sim.drain_cycles", account.drain_cycles());
    registry.gauge("sim.ilp", round4(report.available_parallelism()));
    report.block_cache_stats().register(&mut registry);
    sink.metrics.register(&mut registry);
    let phase_array = sink
        .memory
        .phases
        .iter()
        .map(|phase| {
            JsonObject::new()
                .field("name", JsonValue::str(phase.name.clone()))
                .field(
                    "wall_ns",
                    JsonValue::UInt(u64::try_from(phase.wall_ns).unwrap_or(u64::MAX)),
                )
                .build()
        })
        .collect();
    let doc = JsonObject::new()
        .field("schema", JsonValue::str(METRICS_SCHEMA))
        .field("source", JsonValue::str(path))
        .field("machine", JsonValue::str(machine.name()))
        .field("optimization", JsonValue::str(args.opt.label()))
        .field(
            "compile",
            JsonObject::new()
                .field("phases", JsonValue::Array(phase_array))
                .build(),
        )
        .field("metrics", registry.to_json())
        .build();
    print!("{}", doc.pretty());
    ExitCode::SUCCESS
}

/// One workload × machine cell of the bound report as JSON
/// (a row of `supersym.bound/v1`).
fn bound_cell_json(cell: &supersym::experiments::BoundCell) -> JsonValue {
    JsonObject::new()
        .field("benchmark", JsonValue::str(cell.benchmark.clone()))
        .field("loops", JsonValue::UInt(cell.loops as u64))
        .field(
            "lower_bound_cycles",
            JsonValue::UInt(cell.lower_bound_cycles),
        )
        .field("machine_cycles", JsonValue::UInt(cell.machine_cycles))
        .field("bound_ilp", JsonValue::Float(round4(cell.bound_ilp)))
        .field("measured_ilp", JsonValue::Float(round4(cell.measured_ilp)))
        .field("rec_min_ii", JsonValue::Float(round4(cell.rec_min_ii)))
        .field("res_min_ii", JsonValue::Float(round4(cell.res_min_ii)))
        .field("sound", JsonValue::Bool(cell.sound))
        .build()
}

/// The CLI spellings of the paper's eleven machine presets, study order.
const PRESET_SPECS: [&str; 11] = [
    "base",
    "multititan",
    "cray1",
    "vliw:4",
    "superscalar:2",
    "superscalar:8",
    "superpipelined:4",
    "ssp:2:2",
    "conflicts:4",
    "slowcycle",
    "underpipelined",
];

/// `titalc bound` without a FILE: sweep the benchmark suite over every
/// machine preset (or just the `-m` one) and report the static ILP
/// ceiling next to measured parallelism per cell. Any unsound cell —
/// measured ILP above the static ceiling — exits `EXIT_VERIFY`.
fn run_bound_suite(args: &Args) -> ExitCode {
    let machines: Vec<MachineConfig> = match args.machine.as_deref() {
        Some(name) => match parse_machine(name) {
            Some(machine) => vec![machine],
            None => {
                eprintln!("titalc: unknown machine `{name}` (try --machines)");
                return ExitCode::from(EXIT_USAGE);
            }
        },
        None => PRESET_SPECS
            .iter()
            .map(|spec| parse_machine(spec).expect("preset spec parses"))
            .collect(),
    };
    let workloads = suite(Size::Small);
    let mut all_sound = true;
    let mut rows: Vec<(String, Vec<supersym::experiments::BoundCell>)> = Vec::new();
    for machine in &machines {
        let mut cells = Vec::new();
        for workload in &workloads {
            let options = CompileOptions::new(args.opt, machine).with_oracle(args.oracle);
            let program = match compile(&workload.source, &options) {
                Ok(program) => program,
                Err(error) => {
                    eprintln!("titalc: {}: {error}", workload.name);
                    return ExitCode::from(error.exit_code());
                }
            };
            let cell = measure_bound(workload.name, &program, machine);
            all_sound &= cell.sound;
            cells.push(cell);
        }
        rows.push((machine.name().to_string(), cells));
    }
    if args.json {
        let machines_json = rows
            .iter()
            .map(|(name, cells)| {
                JsonObject::new()
                    .field("machine", JsonValue::str(name.clone()))
                    .field(
                        "cells",
                        JsonValue::Array(cells.iter().map(bound_cell_json).collect()),
                    )
                    .build()
            })
            .collect();
        let doc = JsonObject::new()
            .field("schema", JsonValue::str("supersym.bound/v1"))
            .field("optimization", JsonValue::str(args.opt.label()))
            .field("suite", JsonValue::str("small"))
            .field("machines", JsonValue::Array(machines_json))
            .field("sound", JsonValue::Bool(all_sound))
            .build();
        print!("{}", doc.pretty());
    } else {
        println!(
            "bound study: static ILP ceiling vs measured parallelism (suite, {})",
            args.opt
        );
        for (name, cells) in &rows {
            println!("  {name}");
            println!(
                "    {:10} {:>5} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6}",
                "benchmark",
                "loops",
                "lb-cycles",
                "cycles",
                "bound",
                "ilp",
                "rec-ii",
                "res-ii",
                "sound"
            );
            for c in cells {
                println!(
                    "    {:10} {:>5} {:>12} {:>12} {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>6}",
                    c.benchmark,
                    c.loops,
                    c.lower_bound_cycles,
                    c.machine_cycles,
                    c.bound_ilp,
                    c.measured_ilp,
                    c.rec_min_ii,
                    c.res_min_ii,
                    c.sound
                );
            }
        }
    }
    if all_sound {
        ExitCode::SUCCESS
    } else {
        eprintln!("titalc: bound soundness violated: measured ILP exceeds a static ceiling");
        ExitCode::from(EXIT_VERIFY)
    }
}

/// `titalc bound FILE`: compile one program for the chosen preset, report
/// its innermost machine loops with their static facts, and check the
/// soundness invariant against a counted run.
fn run_bound_file(
    path: &str,
    source: &str,
    args: &Args,
    machine: &MachineConfig,
    options: &CompileOptions,
) -> ExitCode {
    let program = match compile(source, options) {
        Ok(program) => program,
        Err(error) => {
            eprintln!("titalc: {error}");
            return ExitCode::from(error.exit_code());
        }
    };
    let oracle = args.oracle.as_loop_oracle();
    let statics = program_loop_statics(&program, machine, oracle);
    let watches: Vec<(u32, u64, u64)> = statics
        .iter()
        .map(|s| (s.func as u32, s.header as u64, s.latch as u64))
        .collect();
    let mut sink = LoopCountSink::new(&watches);
    let report = match simulate_with_sink(&program, machine, SimOptions::default(), &mut sink) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("titalc: runtime error: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    };
    let counts: Vec<LoopCount> = sink
        .counts()
        .into_iter()
        .map(|(iterations, visits)| LoopCount { iterations, visits })
        .collect();
    let bound = static_bound(
        machine,
        &statics,
        &counts,
        report.instructions(),
        report.census(),
    );
    let measured = report.available_parallelism();
    let sound = measured <= bound.bound_ilp * (1.0 + 1e-9);
    let func_name = |index: usize| {
        program
            .functions()
            .get(index)
            .map_or("?", |f| f.name())
            .to_string()
    };
    if args.json {
        let loops = statics
            .iter()
            .zip(&counts)
            .map(|(s, c)| {
                JsonObject::new()
                    .field("func", JsonValue::str(func_name(s.func)))
                    .field("header", JsonValue::UInt(s.header as u64))
                    .field("latch", JsonValue::UInt(s.latch as u64))
                    .field("body_len", JsonValue::UInt(s.body_len as u64))
                    .field("critical_path", JsonValue::UInt(s.critical_path))
                    .field("delta", JsonValue::UInt(s.delta))
                    .field("rec_min_ii", JsonValue::Float(round4(s.rec_min_ii)))
                    .field("res_min_ii", JsonValue::Float(round4(s.res_min_ii)))
                    .field("iterations", JsonValue::UInt(c.iterations))
                    .field("visits", JsonValue::UInt(c.visits))
                    .build()
            })
            .collect();
        let doc = JsonObject::new()
            .field("schema", JsonValue::str("supersym.bound/v1"))
            .field("source", JsonValue::str(path))
            .field("machine", JsonValue::str(machine.name()))
            .field("optimization", JsonValue::str(args.opt.label()))
            .field("loops", JsonValue::Array(loops))
            .field(
                "bound",
                JsonObject::new()
                    .field(
                        "lower_bound_cycles",
                        JsonValue::UInt(bound.lower_bound_cycles),
                    )
                    .field("bound_ilp", JsonValue::Float(round4(bound.bound_ilp)))
                    .field("rec_min_ii", JsonValue::Float(round4(bound.rec_min_ii)))
                    .field("res_min_ii", JsonValue::Float(round4(bound.res_min_ii)))
                    .build(),
            )
            .field(
                "run",
                JsonObject::new()
                    .field("instructions", JsonValue::UInt(report.instructions()))
                    .field("machine_cycles", JsonValue::UInt(report.machine_cycles()))
                    .field("measured_ilp", JsonValue::Float(round4(measured)))
                    .build(),
            )
            .field("sound", JsonValue::Bool(sound))
            .build();
        print!("{}", doc.pretty());
    } else {
        println!("machine:        {}", machine.name());
        println!("optimization:   {}", args.opt);
        println!(
            "loops:          {} innermost machine loop(s)",
            statics.len()
        );
        if !statics.is_empty() {
            println!(
                "  {:<14} {:>6} {:>6} {:>5} {:>5} {:>6} {:>7} {:>7} {:>9} {:>7}",
                "func",
                "header",
                "latch",
                "body",
                "path",
                "delta",
                "rec-ii",
                "res-ii",
                "iters",
                "visits"
            );
            for (s, c) in statics.iter().zip(&counts) {
                println!(
                    "  {:<14} {:>6} {:>6} {:>5} {:>5} {:>6} {:>7.2} {:>7.2} {:>9} {:>7}",
                    func_name(s.func),
                    s.header,
                    s.latch,
                    s.body_len,
                    s.critical_path,
                    s.delta,
                    s.rec_min_ii,
                    s.res_min_ii,
                    c.iterations,
                    c.visits
                );
            }
        }
        println!(
            "bound:          {} machine cycle(s) lower bound -> ILP ceiling {:.3}",
            bound.lower_bound_cycles, bound.bound_ilp
        );
        println!(
            "measured:       {} machine cycle(s), ILP {:.3}",
            report.machine_cycles(),
            measured
        );
        println!("sound:          {sound}");
    }
    if sound {
        ExitCode::SUCCESS
    } else {
        eprintln!("titalc: bound soundness violated: measured ILP exceeds the static ceiling");
        ExitCode::from(EXIT_VERIFY)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("torture") {
        return run_torture_cmd(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("synth") {
        return run_synth_cmd(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("sweep") {
        return run_sweep_cmd(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bench-diff") {
        return run_bench_diff(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if args.list_machines {
        println!("machine presets:");
        println!("  base                  one instruction/cycle, unit latencies");
        println!("  multititan            MultiTitan latency model (avg superpipelining 1.7)");
        println!("  cray1                 CRAY-1 latency model (avg superpipelining 4.4)");
        println!("  underpipelined        issues every other cycle");
        println!("  superscalar:<n>       ideal degree-n superscalar");
        println!("  superpipelined:<m>    degree-m superpipelined");
        println!("  ssp:<n>:<m>           superpipelined superscalar");
        println!("  conflicts:<n>         degree-n superscalar with shared functional units");
        println!("  vliw:<n>              n-wide VLIW (taken branches break the issue group)");
        println!("  slowcycle             underpipelined: doubled latencies, slower clock");
        return ExitCode::SUCCESS;
    }
    if args.bound && args.source_path.is_none() {
        return run_bound_suite(&args);
    }
    let Some(path) = args.source_path.clone() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(source) => source,
        Err(error) => {
            eprintln!("titalc: cannot read `{path}`: {error}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if args.lint {
        return run_lint(&path, &source, args.machine.as_deref());
    }
    if args.analyze {
        return run_analyze(&path, &source, &args);
    }
    let machine_name = args.machine.as_deref().unwrap_or("base");
    let Some(machine) = parse_machine(machine_name) else {
        eprintln!("titalc: unknown machine `{machine_name}` (try --machines)");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut options = CompileOptions::new(args.opt, &machine).with_oracle(args.oracle);
    if args.verify {
        options = options.with_verify(true);
    }
    if let Some(unroll) = args.unroll {
        options = options.with_unroll(unroll);
    }
    if args.certify {
        return run_certify(&path, &source, &options);
    }
    if args.profile {
        return run_profile(&path, &source, &args, &machine, &options);
    }
    if args.stats {
        return run_stats(&path, &source, &args, &machine, &options);
    }
    if args.bound {
        return run_bound_file(&path, &source, &args, &machine, &options);
    }
    if args.timeline.is_some() {
        eprintln!("titalc: --timeline only applies to `profile` and `sweep`\n\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let program = match compile(&source, &options) {
        Ok(program) => program,
        Err(error) => {
            eprintln!("titalc: {error}");
            return ExitCode::from(error.exit_code());
        }
    };
    if args.dump {
        print!("{program}");
        return ExitCode::SUCCESS;
    }
    let mut trace_sink = match &args.trace {
        Some(trace_path) => match open_trace(trace_path) {
            Ok(sink) => Some(sink),
            Err(code) => return code,
        },
        None => None,
    };
    let report = match trace_sink.as_mut().map_or_else(
        || simulate(&program, &machine, SimOptions::default()),
        |sink| simulate_with_sink(&program, &machine, SimOptions::default(), sink),
    ) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("titalc: runtime error: {error}");
            return ExitCode::from(EXIT_SIM);
        }
    };
    if let Some(sink) = trace_sink {
        if let Err(code) = close_trace(sink, args.trace.as_deref().unwrap_or("")) {
            return code;
        }
    }
    println!("machine:        {}", machine.name());
    println!("optimization:   {}", args.opt);
    println!("static size:    {} instructions", program.static_size());
    println!("dynamic count:  {} instructions", report.instructions());
    println!("time:           {:.1} base cycles", report.base_cycles());
    println!(
        "rate:           {:.3} instructions/cycle",
        report.available_parallelism()
    );
    print_cycle_account(report.cycle_account());
    print_class_table(report.census(), report.cycle_account());
    if args.cache {
        let (_, caches) = match simulate_with_cache(
            &program,
            &machine,
            SimOptions::default(),
            CacheConfig::small_direct(),
            CacheConfig::small_direct(),
        ) {
            Ok(run) => run,
            Err(error) => {
                // The cached rerun replays a program that already ran
                // clean, but a runtime error here must not panic the CLI.
                eprintln!("titalc: cache simulation failed: {error}");
                return ExitCode::from(EXIT_SIM);
            }
        };
        println!(
            "caches (8KiB):  I-miss {:.2}%  D-miss {:.2}%  ({:.4} misses/instr)",
            caches.icache.miss_rate() * 100.0,
            caches.dcache.miss_rate() * 100.0,
            caches.misses_per_instruction
        );
    }
    ExitCode::SUCCESS
}
