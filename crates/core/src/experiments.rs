//! Experiment drivers: one per table and figure of the paper.
//!
//! Each function regenerates the data behind a figure or table of
//! *Available Instruction-Level Parallelism for Superscalar and
//! Superpipelined Machines* and returns a typed result whose `Display`
//! prints the same rows/series the paper reports. Absolute values depend on
//! our substituted benchmarks; the *shapes* — who wins, by what factor,
//! where the ceilings sit — are the reproduction targets (see
//! EXPERIMENTS.md).

use crate::{compile, CompileOptions, OptLevel};
use std::fmt;
use supersym_analyze::{program_loop_statics, static_bound, LoopCount, OracleKind};
use supersym_isa::{AsmBuilder, ClassCensus, IntReg, Program};
use supersym_machine::{presets, MachineConfig, RegisterSplit};
use supersym_opt::UnrollOptions;
use supersym_sim::{
    diagram, issue_speedup_with_miss_burden, simulate, simulate_with_cache, simulate_with_sink,
    CacheConfig, CycleAccount, MissCostRow, SimOptions, SimReport, StallCause, NUM_STALL_KINDS,
};
use supersym_trace::LoopCountSink;
use supersym_workloads::{numeric_suite, suite, Size, Workload};

/// Harmonic mean (the paper's aggregate for speedups).
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    n / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Compiles a workload for `machine` at `level` and simulates it there.
///
/// # Panics
///
/// Panics if the workload fails to compile or run — the suite is tested.
#[must_use]
pub fn run_workload(
    workload: &Workload,
    level: OptLevel,
    machine: &MachineConfig,
    unroll: Option<UnrollOptions>,
    split: Option<RegisterSplit>,
) -> SimReport {
    let mut options = CompileOptions::new(level, machine);
    if let Some(unroll) = unroll {
        options = options.with_unroll(unroll);
    }
    if let Some(split) = split {
        options = options.with_split(split);
    }
    let program = compile(&workload.source, &options)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name));
    simulate(&program, machine, SimOptions::default())
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", workload.name))
}

// ---------------------------------------------------------------------------
// Figure 1-1
// ---------------------------------------------------------------------------

/// Figure 1-1: instruction-level parallelism of the two introductory code
/// fragments. Fragment (a) is three independent instructions
/// (parallelism 3); fragment (b) is a serial chain (parallelism 1).
#[derive(Debug, Clone)]
pub struct Fig1_1 {
    /// Measured parallelism of fragment (a).
    pub independent: f64,
    /// Measured parallelism of fragment (b).
    pub dependent: f64,
}

/// Runs the Figure 1-1 measurement on a wide ideal machine.
#[must_use]
pub fn fig1_1() -> Fig1_1 {
    fn measure(program: &Program) -> f64 {
        let report = simulate(
            program,
            &presets::ideal_superscalar(8),
            SimOptions::default(),
        )
        .expect("fragments run");
        // The halt issues alongside the last operation and does not extend
        // the critical path on a wide machine.
        (report.instructions() - 1) as f64 / report.base_cycles()
    }
    let r = |i: u8| IntReg::new(i).unwrap();
    // (a) Load C1<-23(R2); Add R3<-R3+1; FPAdd C4<-C4+C3 — independent.
    let mut a = AsmBuilder::new("fragment_a");
    let f3 = supersym_isa::FpReg::new(3).unwrap();
    let f4 = supersym_isa::FpReg::new(4).unwrap();
    a.load(r(1), r(2), 23);
    a.add(r(3), r(3), 1.into());
    a.fadd(f4, f4, f3);
    a.halt();
    // (b) Add R3<-R3+1; Add R4<-R3+R2; Store 0[R4]<-R0 — serial.
    let mut b = AsmBuilder::new("fragment_b");
    b.add(r(3), r(3), 1.into());
    b.add(r(4), r(3), r(2).into());
    b.store(IntReg::ZERO, r(4), 0);
    b.halt();
    Fig1_1 {
        independent: measure(&a.finish_program()),
        dependent: measure(&b.finish_program()),
    }
}

impl fmt::Display for Fig1_1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 1-1: instruction-level parallelism")?;
        writeln!(
            f,
            "  (a) independent fragment: parallelism = {:.2}",
            self.independent
        )?;
        writeln!(
            f,
            "  (b) dependent fragment:   parallelism = {:.2}",
            self.dependent
        )
    }
}

// ---------------------------------------------------------------------------
// Figures 2-1 .. 2-8
// ---------------------------------------------------------------------------

/// Renders the taxonomy pipeline diagrams (Figures 2-1 through 2-8) from
/// the timing model.
#[must_use]
pub fn fig2_diagrams() -> String {
    let mut out = String::new();
    let n = 8;
    out.push_str("Figure 2-1: base machine\n");
    out.push_str(&diagram::pipeline_diagram(&presets::base(), n));
    out.push_str("\nFigure 2-2: underpipelined (cycle > operation latency)\n");
    out.push_str(&diagram::pipeline_diagram(
        &presets::underpipelined_slow_cycle(),
        n,
    ));
    out.push_str("\nFigure 2-3: underpipelined (issues < 1 instruction per cycle)\n");
    out.push_str(&diagram::pipeline_diagram(
        &presets::underpipelined_half_issue(),
        n,
    ));
    out.push_str("\nFigure 2-4: superscalar (n=3)\n");
    out.push_str(&diagram::pipeline_diagram(
        &presets::ideal_superscalar(3),
        n,
    ));
    out.push_str("\nFigure 2-5: VLIW (equivalent timing to superscalar)\n");
    out.push_str(&diagram::pipeline_diagram(&presets::vliw(3), n));
    out.push_str("\nFigure 2-6: superpipelined (m=3)\n");
    out.push_str(&diagram::pipeline_diagram(&presets::superpipelined(3), n));
    out.push_str("\nFigure 2-7: superpipelined superscalar (n=3, m=3)\n");
    out.push_str(&diagram::pipeline_diagram(
        &presets::superpipelined_superscalar(3, 3),
        n,
    ));
    out.push_str("\nFigure 2-8: vector machine (length-6 vectors)\n");
    out.push_str(&diagram::vector_diagram(6, 4));
    out
}

// ---------------------------------------------------------------------------
// Table 2-1
// ---------------------------------------------------------------------------

/// Table 2-1: the average degree of superpipelining.
#[derive(Debug, Clone)]
pub struct Table2_1 {
    /// MultiTitan under the paper's frequency mix (paper: 1.7).
    pub multititan_paper: f64,
    /// CRAY-1 under the paper's frequency mix (paper: 4.4).
    pub cray1_paper: f64,
    /// MultiTitan under the measured benchmark mix.
    pub multititan_measured: f64,
    /// CRAY-1 under the measured benchmark mix.
    pub cray1_measured: f64,
}

/// Computes Table 2-1: the paper's frequency table exactly, plus the same
/// metric under the dynamic instruction mix of our benchmark suite.
#[must_use]
pub fn table2_1(size: Size) -> Table2_1 {
    let paper = supersym_machine::paper_frequencies();
    let mut census = ClassCensus::new();
    let machine = presets::base();
    for workload in suite(size) {
        let report = run_workload(&workload, OptLevel::O4, &machine, None, None);
        census.merge(report.census());
    }
    let measured = census.frequencies();
    Table2_1 {
        multititan_paper: supersym_machine::average_degree_of_superpipelining(
            presets::multititan().latencies(),
            &paper,
        ),
        cray1_paper: supersym_machine::average_degree_of_superpipelining(
            presets::cray1().latencies(),
            &paper,
        ),
        multititan_measured: supersym_machine::average_degree_of_superpipelining(
            presets::multititan().latencies(),
            &measured,
        ),
        cray1_measured: supersym_machine::average_degree_of_superpipelining(
            presets::cray1().latencies(),
            &measured,
        ),
    }
}

impl fmt::Display for Table2_1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2-1: average degree of superpipelining")?;
        writeln!(f, "  {:28} {:>10} {:>10}", "", "MultiTitan", "CRAY-1")?;
        writeln!(
            f,
            "  {:28} {:>10.1} {:>10.1}   (paper: 1.7, 4.4)",
            "paper frequency mix", self.multititan_paper, self.cray1_paper
        )?;
        writeln!(
            f,
            "  {:28} {:>10.1} {:>10.1}",
            "measured benchmark mix", self.multititan_measured, self.cray1_measured
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 4-1
// ---------------------------------------------------------------------------

/// Figure 4-1 ("Supersymmetry"): harmonic-mean speedup over the base
/// machine for ideal superscalar and superpipelined machines of degree
/// 1 through 8.
#[derive(Debug, Clone)]
pub struct Fig4_1 {
    /// Degrees (x axis).
    pub degrees: Vec<u32>,
    /// Superscalar speedups.
    pub superscalar: Vec<f64>,
    /// Superpipelined speedups.
    pub superpipelined: Vec<f64>,
}

/// Runs the Figure 4-1 sweep.
#[must_use]
pub fn fig4_1(size: Size) -> Fig4_1 {
    let workloads = suite(size);
    let base_reports: Vec<SimReport> = workloads
        .iter()
        .map(|w| run_workload(w, OptLevel::O4, &presets::base(), None, None))
        .collect();
    let mut result = Fig4_1 {
        degrees: (1..=8).collect(),
        superscalar: Vec::new(),
        superpipelined: Vec::new(),
    };
    for degree in 1..=8 {
        for (vec, machine) in [
            (&mut result.superscalar, presets::ideal_superscalar(degree)),
            (&mut result.superpipelined, presets::superpipelined(degree)),
        ] {
            let speedups: Vec<f64> = workloads
                .iter()
                .zip(&base_reports)
                .map(|(w, base)| {
                    run_workload(w, OptLevel::O4, &machine, None, None).speedup_over(base)
                })
                .collect();
            vec.push(harmonic_mean(&speedups));
        }
    }
    result
}

impl fmt::Display for Fig4_1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4-1: supersymmetry (harmonic-mean speedup over base)"
        )?;
        writeln!(
            f,
            "  {:>6} {:>12} {:>14}",
            "degree", "superscalar", "superpipelined"
        )?;
        for (i, degree) in self.degrees.iter().enumerate() {
            writeln!(
                f,
                "  {:>6} {:>12.2} {:>14.2}",
                degree, self.superscalar[i], self.superpipelined[i]
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4-2
// ---------------------------------------------------------------------------

/// Figure 4-2: the startup transient. Completion times (in base cycles) of
/// a basic block of six independent instructions on degree-3 superscalar vs
/// superpipelined machines.
#[derive(Debug, Clone)]
pub struct Fig4_2 {
    /// Base cycle at which the superscalar machine completed the block.
    pub superscalar_done: f64,
    /// Base cycle at which the superpipelined machine completed the block.
    pub superpipelined_done: f64,
    /// Rendered timing diagrams.
    pub diagrams: String,
}

/// Runs the Figure 4-2 comparison.
#[must_use]
pub fn fig4_2() -> Fig4_2 {
    fn block_completion(machine: &MachineConfig) -> f64 {
        use supersym_sim::{ControlEvent, StepInfo, TimingModel};
        let mut timing = TimingModel::new(machine, 16);
        let mut last = 0_u64;
        for i in 0..6 {
            let info = StepInfo {
                func: supersym_isa::FuncId::new(0),
                pc: i,
                class: supersym_isa::InstrClass::IntAdd,
                uses: Default::default(),
                def: Some(supersym_isa::Reg::Int(IntReg::new_unchecked(i as u8 + 1))),
                mem: None,
                vlen: 0,
                control: ControlEvent::None,
            };
            last = timing.issue(&info).complete;
        }
        last as f64 / f64::from(machine.pipe_degree())
    }
    let ss = presets::ideal_superscalar(3);
    let sp = presets::superpipelined(3);
    let mut diagrams = String::new();
    diagrams.push_str(&diagram::pipeline_diagram(&ss, 6));
    diagrams.push('\n');
    diagrams.push_str(&diagram::pipeline_diagram(&sp, 6));
    Fig4_2 {
        superscalar_done: block_completion(&ss),
        superpipelined_done: block_completion(&sp),
        diagrams,
    }
}

impl fmt::Display for Fig4_2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4-2: start-up in superscalar vs superpipelined (6-instruction block)"
        )?;
        writeln!(
            f,
            "  superscalar(3) completes at base cycle   {:.2}",
            self.superscalar_done
        )?;
        writeln!(
            f,
            "  superpipelined(3) completes at base cycle {:.2}",
            self.superpipelined_done
        )?;
        f.write_str(&self.diagrams)
    }
}

// ---------------------------------------------------------------------------
// Figure 4-3
// ---------------------------------------------------------------------------

/// Figure 4-3: the n×m utilization grid, with the MultiTitan and CRAY-1
/// placed on the superpipelining axis.
#[derive(Debug, Clone)]
pub struct Fig4_3 {
    /// The grid cells.
    pub grid: Vec<supersym_machine::UtilizationCell>,
    /// MultiTitan's position on the superpipelining axis (paper: 1.7).
    pub multititan_axis: f64,
    /// CRAY-1's position (paper: 4.4).
    pub cray1_axis: f64,
}

/// Builds the Figure 4-3 grid.
#[must_use]
pub fn fig4_3() -> Fig4_3 {
    let freqs = supersym_machine::paper_frequencies();
    Fig4_3 {
        grid: supersym_machine::utilization_grid(5, 5),
        multititan_axis: supersym_machine::superpipelining_axis_position(
            &presets::multititan(),
            &freqs,
        ),
        cray1_axis: supersym_machine::superpipelining_axis_position(&presets::cray1(), &freqs),
    }
}

impl fmt::Display for Fig4_3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4-3: parallelism required for full utilization (n x m)"
        )?;
        writeln!(f, "  cycles/op (m)")?;
        for m in (1..=5).rev() {
            write!(f, "  {m} |")?;
            for cell in self.grid.iter().filter(|c| c.pipe_degree == m) {
                write!(f, " {:>3}", cell.required_parallelism)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "     +{}", "----".repeat(5))?;
        writeln!(
            f,
            "      {}",
            (1..=5).map(|n| format!(" {n:>3}")).collect::<String>()
        )?;
        writeln!(f, "      instructions issued per cycle (n)")?;
        writeln!(f, "  MultiTitan axis position: {:.1}", self.multititan_axis)?;
        writeln!(f, "  CRAY-1 axis position:     {:.1}", self.cray1_axis)
    }
}

// ---------------------------------------------------------------------------
// Figure 4-4
// ---------------------------------------------------------------------------

/// Figure 4-4: speedup (%) from multi-issue on the CRAY-1 under unit
/// latencies vs actual latencies.
#[derive(Debug, Clone)]
pub struct Fig4_4 {
    /// Issue widths (x axis).
    pub widths: Vec<u32>,
    /// Percent improvement with all latencies = 1.
    pub unit_latencies: Vec<f64>,
    /// Percent improvement with actual CRAY-1 latencies.
    pub actual_latencies: Vec<f64>,
}

/// Runs the Figure 4-4 sweep.
#[must_use]
pub fn fig4_4(size: Size) -> Fig4_4 {
    let workloads = suite(size);
    let cray = presets::cray1();
    let unit = cray.with_unit_latencies();
    let mut result = Fig4_4 {
        widths: (1..=8).collect(),
        unit_latencies: Vec::new(),
        actual_latencies: Vec::new(),
    };
    for (vec, base_machine) in [
        (&mut result.unit_latencies, &unit),
        (&mut result.actual_latencies, &cray),
    ] {
        let width1 = base_machine.with_issue_width(1);
        let base_reports: Vec<SimReport> = workloads
            .iter()
            .map(|w| run_workload(w, OptLevel::O4, &width1, None, None))
            .collect();
        for width in 1..=8 {
            let machine = base_machine.with_issue_width(width);
            let speedups: Vec<f64> = workloads
                .iter()
                .zip(&base_reports)
                .map(|(w, base)| {
                    run_workload(w, OptLevel::O4, &machine, None, None).speedup_over(base)
                })
                .collect();
            vec.push((harmonic_mean(&speedups) - 1.0) * 100.0);
        }
    }
    result
}

impl fmt::Display for Fig4_4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4-4: CRAY-1 parallel issue, unit vs real latencies (% speedup)"
        )?;
        writeln!(
            f,
            "  {:>6} {:>16} {:>18}",
            "width", "all latencies=1", "actual latencies"
        )?;
        for (i, width) in self.widths.iter().enumerate() {
            writeln!(
                f,
                "  {:>6} {:>15.0}% {:>17.0}%",
                width, self.unit_latencies[i], self.actual_latencies[i]
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4-5
// ---------------------------------------------------------------------------

/// Figure 4-5: per-benchmark parallelism vs instruction issue multiplicity.
#[derive(Debug, Clone)]
pub struct Fig4_5 {
    /// Issue widths (x axis).
    pub widths: Vec<u32>,
    /// Per-benchmark speedup curves (name, speedups over width 1).
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Runs the Figure 4-5 sweep. `linpack` is compiled with the official 4x
/// careful unrolling, as in the paper ("unrolled 4x unless noted
/// otherwise").
#[must_use]
pub fn fig4_5(size: Size) -> Fig4_5 {
    let workloads = suite(size);
    let mut curves = Vec::new();
    for workload in &workloads {
        let unroll = if workload.name == "linpack" {
            Some(UnrollOptions::careful(4))
        } else {
            None
        };
        let base = run_workload(workload, OptLevel::O4, &presets::base(), unroll, None);
        let mut speedups = Vec::new();
        for width in 1..=8 {
            let machine = presets::ideal_superscalar(width);
            let report = run_workload(workload, OptLevel::O4, &machine, unroll, None);
            speedups.push(report.speedup_over(&base));
        }
        curves.push((workload.name.to_string(), speedups));
    }
    Fig4_5 {
        widths: (1..=8).collect(),
        curves,
    }
}

impl fmt::Display for Fig4_5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4-5: instruction-level parallelism by benchmark")?;
        write!(f, "  {:10}", "width")?;
        for width in &self.widths {
            write!(f, " {width:>6}")?;
        }
        writeln!(f)?;
        for (name, speedups) in &self.curves {
            write!(f, "  {name:10}")?;
            for s in speedups {
                write!(f, " {s:>6.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4-6
// ---------------------------------------------------------------------------

/// Figure 4-6: parallelism vs loop unrolling, naive and careful.
#[derive(Debug, Clone)]
pub struct Fig4_6 {
    /// Unroll factors (x axis; 1 = not unrolled).
    pub factors: Vec<usize>,
    /// (benchmark, naive parallelism per factor, careful parallelism per factor).
    pub curves: Vec<(String, Vec<f64>, Vec<f64>)>,
}

/// Runs the Figure 4-6 sweep on the numeric benchmarks with the
/// forty-temporary register split.
#[must_use]
pub fn fig4_6(size: Size) -> Fig4_6 {
    let machine = presets::ideal_superscalar(8);
    let split = RegisterSplit::unrolling_study();
    let factors = vec![1, 2, 4, 10];
    let mut curves = Vec::new();
    for workload in numeric_suite(size) {
        let mut naive = Vec::new();
        let mut careful = Vec::new();
        for &factor in &factors {
            for (vec, is_careful) in [(&mut naive, false), (&mut careful, true)] {
                let unroll = (factor > 1).then_some(UnrollOptions {
                    factor,
                    careful: is_careful,
                });
                let report = run_workload(&workload, OptLevel::O4, &machine, unroll, Some(split));
                vec.push(report.available_parallelism());
            }
        }
        curves.push((workload.name.to_string(), naive, careful));
    }
    Fig4_6 { factors, curves }
}

impl fmt::Display for Fig4_6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4-6: parallelism vs loop unrolling")?;
        writeln!(
            f,
            "  {:24} {}",
            "benchmark",
            self.factors
                .iter()
                .map(|x| format!("{x:>6}"))
                .collect::<String>()
        )?;
        for (name, naive, careful) in &self.curves {
            write!(f, "  {:24}", format!("{name} (naive)"))?;
            for v in naive {
                write!(f, "{v:>6.2}")?;
            }
            writeln!(f)?;
            write!(f, "  {:24}", format!("{name} (careful)"))?;
            for v in careful {
                write!(f, "{v:>6.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Figure 4-7
// ---------------------------------------------------------------------------

/// Figure 4-7: how optimizing different parts of an expression graph moves
/// its parallelism (ops / critical-path length).
#[derive(Debug, Clone)]
pub struct Fig4_7 {
    /// The original graph (paper: 1.67).
    pub original: f64,
    /// After optimizing a parallel branch away (paper: 1.33).
    pub branch_optimized: f64,
    /// After optimizing the bottleneck (paper: 1.50).
    pub bottleneck_optimized: f64,
}

/// Measures the three Figure 4-7 expression graphs on a wide ideal machine.
#[must_use]
pub fn fig4_7() -> Fig4_7 {
    let r = |i: u8| IntReg::new(i).unwrap();
    fn measure(asm: AsmBuilder, ops: u64) -> f64 {
        let program = asm.finish_program();
        let report = simulate(
            &program,
            &presets::ideal_superscalar(8),
            SimOptions::default(),
        )
        .expect("fragment runs");
        // parallelism = ops / depth (the halt overlaps the last level).
        ops as f64 / report.base_cycles()
    }
    // Original: the paper's 5-node depth-3 graph:
    // t1=a+b; t2=c+d; t3=t1+t2; t4=e+f; t5=t3+t4.
    let mut original = AsmBuilder::new("original");
    original.add(r(10), r(1), r(2).into());
    original.add(r(11), r(3), r(4).into());
    original.add(r(12), r(10), r(11).into());
    original.add(r(13), r(5), r(6).into());
    original.add(r(14), r(12), r(13).into());
    original.halt();
    // One parallel branch optimized away: t4 gone, t5 = t3 + e.
    let mut branch = AsmBuilder::new("branch_optimized");
    branch.add(r(10), r(1), r(2).into());
    branch.add(r(11), r(3), r(4).into());
    branch.add(r(12), r(10), r(11).into());
    branch.add(r(14), r(12), r(5).into());
    branch.halt();
    // Bottleneck optimized: 3 nodes, depth 2.
    let mut bottleneck = AsmBuilder::new("bottleneck_optimized");
    bottleneck.add(r(10), r(1), r(2).into());
    bottleneck.add(r(11), r(3), r(4).into());
    bottleneck.add(r(12), r(10), r(11).into());
    bottleneck.halt();
    Fig4_7 {
        original: measure(original, 5),
        branch_optimized: measure(branch, 4),
        bottleneck_optimized: measure(bottleneck, 3),
    }
}

impl fmt::Display for Fig4_7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4-7: parallelism vs compiler optimizations (expression graphs)"
        )?;
        writeln!(
            f,
            "  original graph:        {:.2}  (paper: 1.67)",
            self.original
        )?;
        writeln!(
            f,
            "  branch optimized:      {:.2}  (paper: 1.33)",
            self.branch_optimized
        )?;
        writeln!(
            f,
            "  bottleneck optimized:  {:.2}  (paper: 1.50)",
            self.bottleneck_optimized
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 4-8
// ---------------------------------------------------------------------------

/// Figure 4-8: available parallelism at each optimization level.
#[derive(Debug, Clone)]
pub struct Fig4_8 {
    /// Level labels (x axis).
    pub levels: Vec<&'static str>,
    /// Per-benchmark parallelism at each level.
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Runs the Figure 4-8 sweep on an ideal degree-8 superscalar with the
/// paper's 16-temporary / 26-global register split.
#[must_use]
pub fn fig4_8(size: Size) -> Fig4_8 {
    let machine = presets::ideal_superscalar(8);
    let mut curves = Vec::new();
    for workload in suite(size) {
        let mut values = Vec::new();
        for level in OptLevel::ALL {
            let report = run_workload(&workload, level, &machine, None, None);
            values.push(report.available_parallelism());
        }
        curves.push((workload.name.to_string(), values));
    }
    Fig4_8 {
        levels: OptLevel::ALL.iter().map(|l| l.label()).collect(),
        curves,
    }
}

impl fmt::Display for Fig4_8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4-8: effect of optimization on parallelism")?;
        write!(f, "  {:10}", "benchmark")?;
        for level in &self.levels {
            write!(f, " {level:>18}")?;
        }
        writeln!(f)?;
        for (name, values) in &self.curves {
            write!(f, "  {name:10}")?;
            for v in values {
                write!(f, " {v:>18.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Table 5-1 and §5.1
// ---------------------------------------------------------------------------

/// Table 5-1 plus measured cache behaviour.
#[derive(Debug, Clone)]
pub struct Table5_1 {
    /// The paper's analytic rows.
    pub rows: Vec<MissCostRow>,
    /// Measured I-cache miss rate over the suite (small split caches).
    pub icache_miss_rate: f64,
    /// Measured D-cache miss rate.
    pub dcache_miss_rate: f64,
    /// Effective CPI on a base machine charging the Titan-row miss cost.
    pub effective_cpi: f64,
}

/// Computes Table 5-1 and runs the suite through the cache simulator.
#[must_use]
pub fn table5_1(size: Size) -> Table5_1 {
    let machine = presets::base();
    let mut i_acc = 0_u64;
    let mut i_miss = 0_u64;
    let mut d_acc = 0_u64;
    let mut d_miss = 0_u64;
    let mut instructions = 0_u64;
    let mut cycles = 0_f64;
    let mut misses_weighted = 0_f64;
    for workload in suite(size) {
        let options = CompileOptions::new(OptLevel::O4, &machine);
        let program = compile(&workload.source, &options).expect("suite compiles");
        let (report, caches) = simulate_with_cache(
            &program,
            &machine,
            SimOptions::default(),
            CacheConfig::small_direct(),
            CacheConfig::small_direct(),
        )
        .expect("suite runs");
        i_acc += caches.icache.accesses;
        i_miss += caches.icache.misses;
        d_acc += caches.dcache.accesses;
        d_miss += caches.dcache.misses;
        instructions += report.instructions();
        cycles += report.base_cycles();
        misses_weighted += caches.misses_per_instruction * report.instructions() as f64;
    }
    let titan = &MissCostRow::table_5_1()[1];
    let base_cpi = cycles / instructions as f64;
    let misses_per_instr = misses_weighted / instructions as f64;
    Table5_1 {
        rows: MissCostRow::table_5_1(),
        icache_miss_rate: i_miss as f64 / i_acc as f64,
        dcache_miss_rate: d_miss as f64 / d_acc as f64,
        effective_cpi: base_cpi + misses_per_instr * titan.miss_cost_cycles(),
    }
}

impl fmt::Display for Table5_1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 5-1: the cost of cache misses")?;
        writeln!(
            f,
            "  {:26} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "machine", "cpi", "cycle ns", "mem ns", "miss cyc", "miss instr"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:26} {:>9.1} {:>9.0} {:>9.0} {:>11.0} {:>11.1}",
                row.machine(),
                row.cycles_per_instr(),
                row.cycle_ns(),
                row.mem_ns(),
                row.miss_cost_cycles(),
                row.miss_cost_instructions()
            )?;
        }
        writeln!(
            f,
            "  measured (8KiB split direct-mapped caches over the suite):"
        )?;
        writeln!(
            f,
            "    I-cache miss rate {:.2}%, D-cache miss rate {:.2}%",
            self.icache_miss_rate * 100.0,
            self.dcache_miss_rate * 100.0
        )?;
        writeln!(
            f,
            "    effective CPI at Titan miss cost: {:.2}",
            self.effective_cpi
        )
    }
}

/// §5.1: the cache-miss dilution argument.
#[derive(Debug, Clone)]
pub struct Sec5_1 {
    /// Speedup from 1.0 to 0.5 issue CPI without misses (paper: 2.0).
    pub speedup_without_misses: f64,
    /// The same with 1.0 CPI of miss burden (paper: 1.33).
    pub speedup_with_misses: f64,
}

/// Computes the §5.1 example.
#[must_use]
pub fn sec5_1() -> Sec5_1 {
    let (without, with) = issue_speedup_with_miss_burden(1.0, 0.5, 1.0);
    Sec5_1 {
        speedup_without_misses: without,
        speedup_with_misses: with,
    }
}

impl fmt::Display for Sec5_1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Section 5.1: miss burden dilutes multi-issue gains")?;
        writeln!(
            f,
            "  without misses: {:.0}% improvement (paper: 100%)",
            (self.speedup_without_misses - 1.0) * 100.0
        )?;
        writeln!(
            f,
            "  with 1.0 cpi of misses: {:.0}% improvement (paper: 33%)",
            (self.speedup_with_misses - 1.0) * 100.0
        )
    }
}

// ---------------------------------------------------------------------------
// Headline numbers
// ---------------------------------------------------------------------------

/// §4/§6 headline: available parallelism per benchmark after normal
/// optimization (paper: 1.6 for yacc up to 3.2 for unrolled linpack).
#[derive(Debug, Clone)]
pub struct Headline {
    /// (benchmark, available parallelism).
    pub parallelism: Vec<(String, f64)>,
}

/// Measures available parallelism per benchmark on an ideal degree-8
/// machine at full optimization (linpack with official 4x unrolling).
#[must_use]
pub fn headline(size: Size) -> Headline {
    let machine = presets::ideal_superscalar(8);
    let mut parallelism = Vec::new();
    for workload in suite(size) {
        let unroll = (workload.name == "linpack").then_some(UnrollOptions::careful(4));
        let report = run_workload(&workload, OptLevel::O4, &machine, unroll, None);
        parallelism.push((workload.name.to_string(), report.available_parallelism()));
    }
    Headline { parallelism }
}

impl fmt::Display for Headline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Available instruction-level parallelism (degree-8 ideal machine):"
        )?;
        for (name, value) in &self.parallelism {
            writeln!(f, "  {name:10} {value:>6.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_1_shapes() {
        let result = fig1_1();
        assert!(
            result.independent > 2.0,
            "independent {}",
            result.independent
        );
        assert!(result.dependent <= 1.2, "dependent {}", result.dependent);
    }

    #[test]
    fn fig4_2_transient() {
        let result = fig4_2();
        assert!(result.superpipelined_done > result.superscalar_done);
    }

    #[test]
    fn fig4_3_grid() {
        let result = fig4_3();
        assert_eq!(result.grid.len(), 25);
        assert!((result.multititan_axis - 1.7).abs() < 1e-9);
        assert!((result.cray1_axis - 4.4).abs() < 1e-9);
    }

    #[test]
    fn fig4_7_expression_graphs() {
        let result = fig4_7();
        assert!((result.original - 5.0 / 3.0).abs() < 0.01, "{result:?}");
        assert!(
            (result.branch_optimized - 4.0 / 3.0).abs() < 0.01,
            "{result:?}"
        );
        assert!(
            (result.bottleneck_optimized - 1.5).abs() < 0.01,
            "{result:?}"
        );
    }

    #[test]
    fn sec5_1_dilution() {
        let result = sec5_1();
        assert!((result.speedup_without_misses - 2.0).abs() < 1e-12);
        assert!((result.speedup_with_misses - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagrams_render() {
        let text = fig2_diagrams();
        assert!(text.contains("Figure 2-1"));
        assert!(text.contains("Figure 2-8"));
        assert!(text.contains('E'));
    }

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(harmonic_mean(&[1.0, 4.0]) < 2.5); // below arithmetic mean
    }
}

// ---------------------------------------------------------------------------
// Extensions: the ablations §2.3.2 and §6 leave to future work
// ---------------------------------------------------------------------------

/// Class-conflict ablation (§2.3.2 / §6: "class conflicts and the extra
/// complexity of parallel over pipelined instruction decode could easily
/// negate this advantage. These tradeoffs merit investigation in future
/// work"): ideal superscalar vs a superscalar that duplicates only decode
/// and register ports, across degrees.
#[derive(Debug, Clone)]
pub struct ClassConflictAblation {
    /// Degrees (x axis).
    pub degrees: Vec<u32>,
    /// Harmonic-mean speedup over base, all units duplicated.
    pub ideal: Vec<f64>,
    /// Harmonic-mean speedup over base, shared functional units.
    pub conflicted: Vec<f64>,
}

/// Runs the class-conflict ablation.
#[must_use]
pub fn ablation_class_conflicts(size: Size) -> ClassConflictAblation {
    let workloads = suite(size);
    let base_reports: Vec<SimReport> = workloads
        .iter()
        .map(|w| run_workload(w, OptLevel::O4, &presets::base(), None, None))
        .collect();
    let mut result = ClassConflictAblation {
        degrees: vec![2, 3, 4, 6, 8],
        ideal: Vec::new(),
        conflicted: Vec::new(),
    };
    for &degree in &result.degrees.clone() {
        for (vec, machine) in [
            (&mut result.ideal, presets::ideal_superscalar(degree)),
            (
                &mut result.conflicted,
                presets::superscalar_with_class_conflicts(degree),
            ),
        ] {
            let speedups: Vec<f64> = workloads
                .iter()
                .zip(&base_reports)
                .map(|(w, base)| {
                    run_workload(w, OptLevel::O4, &machine, None, None).speedup_over(base)
                })
                .collect();
            vec.push(harmonic_mean(&speedups));
        }
    }
    result
}

impl fmt::Display for ClassConflictAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation (paper future work): class conflicts (§2.3.2)")?;
        writeln!(
            f,
            "  {:>6} {:>12} {:>16}",
            "degree", "ideal", "shared units"
        )?;
        for (i, degree) in self.degrees.iter().enumerate() {
            writeln!(
                f,
                "  {:>6} {:>12.2} {:>16.2}",
                degree, self.ideal[i], self.conflicted[i]
            )?;
        }
        Ok(())
    }
}

/// Branch-prediction ablation: the paper assumes perfect prediction /
/// branch-slot filling (§2.1); this measures what that assumption is worth
/// on machines with real control latencies.
#[derive(Debug, Clone)]
pub struct BranchPredictionAblation {
    /// (machine name, harmonic-mean slowdown of no-prediction vs perfect).
    pub slowdowns: Vec<(String, f64)>,
}

/// Runs the branch-prediction ablation.
#[must_use]
pub fn ablation_branch_prediction(size: Size) -> BranchPredictionAblation {
    let workloads = suite(size);
    let mut slowdowns = Vec::new();
    for machine in [presets::multititan(), presets::cray1()] {
        // Rebuild with prediction off (same latencies, default units).
        let mut builder = MachineConfig::builder(format!("{} (no prediction)", machine.name()));
        builder
            .latencies(*machine.latencies())
            .issue_width(machine.issue_width())
            .pipe_degree(machine.pipe_degree())
            .perfect_branch_prediction(false);
        let imperfect = builder.build().expect("ablated machine is valid");
        let ratios: Vec<f64> = workloads
            .iter()
            .map(|w| {
                let perfect = run_workload(w, OptLevel::O4, &machine, None, None);
                let stalled = run_workload(w, OptLevel::O4, &imperfect, None, None);
                stalled.base_cycles() / perfect.base_cycles()
            })
            .collect();
        slowdowns.push((machine.name().to_string(), harmonic_mean(&ratios)));
    }
    BranchPredictionAblation { slowdowns }
}

impl fmt::Display for BranchPredictionAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation: cost of removing the perfect-branch-prediction assumption (§2.1)"
        )?;
        for (name, slowdown) in &self.slowdowns {
            writeln!(f, "  {name:12} {slowdown:>6.2}x slower without prediction")?;
        }
        Ok(())
    }
}

/// Empirical companion to Figure 4-3: measured speedup of superpipelined
/// superscalar machines over the (n, m) grid — showing that `n*m` quickly
/// exceeds the available parallelism.
#[derive(Debug, Clone)]
pub struct GridMeasurement {
    /// (issue width n, pipe degree m, harmonic-mean speedup over base).
    pub cells: Vec<(u32, u32, f64)>,
}

/// Measures the (n, m) grid up to 4×4.
#[must_use]
pub fn grid_measurement(size: Size) -> GridMeasurement {
    let workloads = suite(size);
    let base_reports: Vec<SimReport> = workloads
        .iter()
        .map(|w| run_workload(w, OptLevel::O4, &presets::base(), None, None))
        .collect();
    let mut cells = Vec::new();
    for m in 1..=4 {
        for n in 1..=4 {
            let machine = presets::superpipelined_superscalar(n, m);
            let speedups: Vec<f64> = workloads
                .iter()
                .zip(&base_reports)
                .map(|(w, base)| {
                    run_workload(w, OptLevel::O4, &machine, None, None).speedup_over(base)
                })
                .collect();
            cells.push((n, m, harmonic_mean(&speedups)));
        }
    }
    GridMeasurement { cells }
}

impl fmt::Display for GridMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Measured speedup over the (n, m) grid (companion to Figure 4-3)"
        )?;
        writeln!(f, "  m\\n {:>6} {:>6} {:>6} {:>6}", 1, 2, 3, 4)?;
        for m in 1..=4 {
            write!(f, "  {m}  ")?;
            for n in 1..=4 {
                let cell = self
                    .cells
                    .iter()
                    .find(|&&(cn, cm, _)| cn == n && cm == m)
                    .expect("grid is complete");
                write!(f, " {:>6.2}", cell.2)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// §4.4's instruction-cache caveat: "In all cases, cache effects were
/// ignored. If limited instruction caches were present, the actual
/// performance would decline for large degrees of unrolling." Measures
/// code growth, I-cache miss rate, and miss-adjusted performance across
/// unroll factors on a small instruction cache.
#[derive(Debug, Clone)]
pub struct UnrollingICache {
    /// Unroll factors.
    pub factors: Vec<usize>,
    /// Static code size (instructions) per factor.
    pub static_size: Vec<usize>,
    /// I-cache miss rate per factor (tiny 1 KiW cache).
    pub imiss_rate: Vec<f64>,
    /// Ideal IPC (no cache) per factor.
    pub ideal_ipc: Vec<f64>,
    /// Miss-adjusted IPC, charging the Titan-row 12-cycle miss cost.
    pub adjusted_ipc: Vec<f64>,
}

/// Runs the unrolling-vs-I-cache study on livermore.
#[must_use]
pub fn unrolling_icache(size: Size) -> UnrollingICache {
    let machine = presets::ideal_superscalar(8);
    let split = RegisterSplit::unrolling_study();
    let workload = match size {
        Size::Small => supersym_workloads::livermore(40, 2),
        Size::Standard => supersym_workloads::livermore(100, 10),
    };
    // A deliberately small I-cache (1 KiW = 256 four-word lines) so the
    // unrolled footprint spills out of it, as §4.4 anticipates.
    let icache = CacheConfig {
        lines: 256,
        words_per_line: 4,
        associativity: 1,
    };
    let mut result = UnrollingICache {
        factors: vec![1, 2, 4, 10],
        static_size: Vec::new(),
        imiss_rate: Vec::new(),
        ideal_ipc: Vec::new(),
        adjusted_ipc: Vec::new(),
    };
    for &factor in &result.factors.clone() {
        let mut options = CompileOptions::new(OptLevel::O4, &machine).with_split(split);
        if factor > 1 {
            options = options.with_unroll(UnrollOptions::careful(factor));
        }
        let program = compile(&workload.source, &options).expect("workload compiles");
        let (report, caches) = simulate_with_cache(
            &program,
            &machine,
            SimOptions::default(),
            icache,
            CacheConfig::large_two_way(),
        )
        .expect("workload runs");
        let ideal_cpi = report.base_cycles() / report.instructions() as f64;
        let miss_cpi = caches.icache.miss_rate() * 12.0; // Titan miss cost
        result.static_size.push(program.static_size());
        result.imiss_rate.push(caches.icache.miss_rate());
        result.ideal_ipc.push(report.available_parallelism());
        result.adjusted_ipc.push(1.0 / (ideal_cpi + miss_cpi));
    }
    result
}

impl fmt::Display for UnrollingICache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Unrolling vs a small instruction cache (§4.4's caveat, measured)"
        )?;
        writeln!(
            f,
            "  {:>7} {:>12} {:>10} {:>10} {:>14}",
            "unroll", "static size", "I-miss", "ideal IPC", "adjusted IPC"
        )?;
        for (i, factor) in self.factors.iter().enumerate() {
            writeln!(
                f,
                "  {:>7} {:>12} {:>9.2}% {:>10.2} {:>14.2}",
                factor,
                self.static_size[i],
                self.imiss_rate[i] * 100.0,
                self.ideal_ipc[i],
                self.adjusted_ipc[i]
            )?;
        }
        Ok(())
    }
}

/// §2.3's vector-equivalence claim, measured: "A superscalar machine that
/// can issue a fixed-point, floating-point, load, and a branch all in one
/// cycle achieves the same effective parallelism" as a vector machine
/// executing a chained load/add at one element per cycle.
#[derive(Debug, Clone)]
pub struct VectorEquivalence {
    /// Elements processed.
    pub elements: u64,
    /// Cycles per element, scalar loop on the base machine.
    pub scalar_base: f64,
    /// Cycles per element, scalar loop on a superscalar able to issue the
    /// whole loop body each cycle.
    pub scalar_superscalar: f64,
    /// Cycles per element, chained vector code on the base machine.
    pub vector: f64,
}

/// Builds and measures the three §2.3 variants of `acc += x[i]` over
/// `strips * 64` elements.
#[must_use]
pub fn vector_equivalence() -> VectorEquivalence {
    use supersym_isa::{FpOp, FpReg, VecReg, MAX_VLEN};
    let strips: i64 = 64;
    let n = strips * MAX_VLEN as i64;
    let r = |i: u8| IntReg::new(i).unwrap();
    let data = |program: &mut Program| {
        program.alloc_globals(n as usize);
        for addr in 0..n as usize {
            program.add_data(addr, (addr as f64 * 0.001).to_bits() as i64);
        }
    };

    // Scalar loop: ldf; cmp (on the pre-increment index); add i; fadd; br —
    // five instructions per element, software-pipelined so every iteration
    // issues in one cycle on a wide machine (the paper counts
    // compare-and-branch as one operation, so its "degree four" machine is
    // our width five).
    let scalar_program = {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        let f1 = FpReg::new(1).unwrap();
        let f2 = FpReg::new(2).unwrap();
        asm.movi(r(9), 0);
        asm.bind(top);
        asm.loadf(f2, r(9), 0);
        asm.cmp_lt(r(10), r(9), (n - 1).into());
        asm.add(r(9), r(9), 1.into());
        asm.fadd(f1, f1, f2);
        asm.br_true(r(10), top);
        asm.halt();
        let mut program = asm.finish_program();
        data(&mut program);
        program
    };

    // Vector loop: setvl; vload; vadd (chained); add i; cmp; br per strip.
    let vector_program = {
        let mut asm = AsmBuilder::new("main");
        let top = asm.new_label();
        let v1 = VecReg::new(1).unwrap();
        let v2 = VecReg::new(2).unwrap();
        asm.movi(r(9), 0);
        asm.movi(r(11), MAX_VLEN as i64);
        asm.setvl(r(11));
        asm.bind(top);
        asm.vload(v2, r(9), 0);
        asm.vop(FpOp::FAdd, v1, v1, v2);
        asm.add(r(9), r(9), (MAX_VLEN as i64).into());
        asm.cmp_lt(r(10), r(9), n.into());
        asm.br_true(r(10), top);
        asm.halt();
        let mut program = asm.finish_program();
        data(&mut program);
        program
    };

    let cycles = |program: &Program, machine: &MachineConfig| -> f64 {
        simulate(program, machine, SimOptions::default())
            .expect("kernel runs")
            .base_cycles()
            / n as f64
    };
    VectorEquivalence {
        elements: n as u64,
        scalar_base: cycles(&scalar_program, &presets::base()),
        scalar_superscalar: cycles(&scalar_program, &presets::ideal_superscalar(5)),
        vector: cycles(&vector_program, &presets::base()),
    }
}

impl fmt::Display for VectorEquivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Vector equivalence (§2.3), {} elements of chained load+add:",
            self.elements
        )?;
        writeln!(
            f,
            "  scalar loop, base machine:        {:.2} cycles/element",
            self.scalar_base
        )?;
        writeln!(
            f,
            "  scalar loop, wide superscalar:    {:.2} cycles/element",
            self.scalar_superscalar
        )?;
        writeln!(
            f,
            "  chained vector, base machine:     {:.2} cycles/element",
            self.vector
        )
    }
}

#[cfg(test)]
mod vector_tests {
    use super::*;

    #[test]
    fn vector_equivalence_shape() {
        let result = vector_equivalence();
        // The superscalar and vector variants both approach one element
        // per cycle and sit within 20% of each other; the base scalar loop
        // is several times slower.
        assert!(
            (result.scalar_superscalar - result.vector).abs()
                < 0.2 * result.scalar_superscalar.max(result.vector),
            "{result:?}"
        );
        assert!(result.scalar_base > 3.0 * result.vector, "{result:?}");
        assert!(result.vector < 1.3, "{result:?}");
    }
}

/// §5.2 quantified: "care must be taken not to slow down the machine cycle
/// time (as a result of adding the complexity) more than the speedup
/// derived from the increased parallelism." Applies a per-degree cycle-time
/// tax to the ideal superscalar speedups and reports where each tax level
/// makes wider issue a net loss.
#[derive(Debug, Clone)]
pub struct ComplexityTax {
    /// Cycle-time tax per additional issue slot (fractional).
    pub taxes: Vec<f64>,
    /// For each tax: speedups at degrees 1..=8 after the tax.
    pub taxed_speedups: Vec<Vec<f64>>,
    /// For each tax: the degree with the best net speedup.
    pub best_degree: Vec<u32>,
}

/// Runs the §5.2 complexity-tax study.
#[must_use]
pub fn complexity_tax(size: Size) -> ComplexityTax {
    let raw = fig4_1(size);
    let taxes = vec![0.0, 0.02, 0.05, 0.10];
    let mut taxed_speedups = Vec::new();
    let mut best_degree = Vec::new();
    for &tax in &taxes {
        let taxed: Vec<f64> = raw
            .degrees
            .iter()
            .zip(&raw.superscalar)
            .map(|(&degree, &speedup)| speedup / (1.0 + tax * f64::from(degree - 1)))
            .collect();
        let best = raw.degrees[taxed
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty")
            .0];
        taxed_speedups.push(taxed);
        best_degree.push(best);
    }
    ComplexityTax {
        taxes,
        taxed_speedups,
        best_degree,
    }
}

impl fmt::Display for ComplexityTax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Design-complexity tax (§5.2): net speedup when each extra issue slot"
        )?;
        writeln!(f, "stretches the cycle time")?;
        write!(f, "  {:>10}", "tax/slot")?;
        for degree in 1..=8 {
            write!(f, " {degree:>6}")?;
        }
        writeln!(f, " {:>6}", "best")?;
        for (i, &tax) in self.taxes.iter().enumerate() {
            write!(f, "  {:>9.0}%", tax * 100.0)?;
            for s in &self.taxed_speedups[i] {
                write!(f, " {s:>6.2}")?;
            }
            writeln!(f, " {:>6}", self.best_degree[i])?;
        }
        Ok(())
    }
}

/// The limit studies behind §4.2's opening sentence ("Studies dating from
/// the late 1960's and early 1970's [14, 15] ... have observed average
/// instruction-level parallelism of around 2"): each benchmark measured on
/// (a) our in-order degree-8 machine, (b) an oracle with unlimited
/// resources and renaming but conditional branches as barriers (Riseman &
/// Foster's regime), and (c) the same oracle with perfect branch
/// speculation (their "unlimited jump resolution" regime, which exposed
/// order-of-magnitude-larger parallelism).
#[derive(Debug, Clone)]
pub struct LimitStudy {
    /// (benchmark, in-order ILP, branch-barrier limit, speculative limit).
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Runs the limit study.
#[must_use]
pub fn limit_study(size: Size) -> LimitStudy {
    use supersym_sim::{measure_limit, ExecOptions, LimitOptions};
    let machine = presets::ideal_superscalar(8);
    let mut rows = Vec::new();
    for workload in suite(size) {
        let options = CompileOptions::new(OptLevel::O4, &machine);
        let program = compile(&workload.source, &options).expect("suite compiles");
        let in_order = simulate(&program, &machine, SimOptions::default())
            .expect("suite runs")
            .available_parallelism();
        let barriers = measure_limit(
            &program,
            LimitOptions::with_branch_barriers(),
            ExecOptions::default(),
        )
        .expect("suite runs")
        .parallelism();
        let speculative = measure_limit(
            &program,
            LimitOptions::speculative(),
            ExecOptions::default(),
        )
        .expect("suite runs")
        .parallelism();
        rows.push((workload.name.to_string(), in_order, barriers, speculative));
    }
    LimitStudy { rows }
}

impl fmt::Display for LimitStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ILP limit study (the [14, 15] regimes behind §4.2)")?;
        writeln!(
            f,
            "  {:10} {:>14} {:>16} {:>18}",
            "benchmark", "in-order x8", "branch barriers", "perfect speculation"
        )?;
        for (name, in_order, barriers, speculative) in &self.rows {
            writeln!(
                f,
                "  {name:10} {in_order:>14.2} {barriers:>16.2} {speculative:>18.1}"
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Alias-oracle ablation (the dependence oracle behind the scheduler)
// ---------------------------------------------------------------------------

/// The alias-oracle ablation: schedulable parallelism under the
/// conservative (annotation-only) dependence oracle versus the symbolic
/// base+offset oracle that `supersym-analyze` adds, per paper preset.
#[derive(Debug, Clone)]
pub struct AliasOracleStudy {
    /// `(machine, benchmark, conservative, symbolic)` rows.
    pub rows: Vec<(String, String, f64, f64)>,
}

/// Runs the oracle ablation in the regime where alias precision is the
/// binding constraint: the numeric suite, *naively* unrolled 4x with the
/// forty-temporary split. Careful unrolling renames indices so the front
/// end's own annotations already separate the copies; naive unrolling
/// reuses one induction variable with an increment between copies —
/// exactly the "false conflicts between the different copies" §4.4
/// blames for naive unrolling's flat curve, and exactly the pattern the
/// symbolic oracle's value-numbering chain sees through. Each benchmark
/// is compiled once per [`OracleKind`] and
/// simulated on each paper preset.
///
/// The symbolic oracle only ever *removes* dependence edges, so every
/// schedule it produces is legal under the conservative edge set too; the
/// measured parallelism can still dip a hair on conflict-limited machines
/// because the list scheduler is greedy and extra freedom occasionally
/// steers it into a structural-hazard pattern.
#[must_use]
pub fn alias_oracle_study(size: Size) -> AliasOracleStudy {
    use supersym_analyze::OracleKind;
    let machines = [
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::ideal_superscalar(2),
        presets::ideal_superscalar(8),
        presets::superpipelined(4),
        presets::superpipelined_superscalar(2, 2),
        presets::superscalar_with_class_conflicts(4),
        presets::underpipelined_half_issue(),
    ];
    let workloads = numeric_suite(size);
    let mut rows = Vec::new();
    for machine in &machines {
        for workload in &workloads {
            let mut measured = [0.0, 0.0];
            for (slot, oracle) in [(0, OracleKind::Conservative), (1, OracleKind::Symbolic)] {
                let options = CompileOptions::new(OptLevel::O4, machine)
                    .with_unroll(UnrollOptions::naive(4))
                    .with_split(RegisterSplit::unrolling_study())
                    .with_oracle(oracle);
                let program = compile(&workload.source, &options)
                    .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name));
                let report = simulate(&program, machine, SimOptions::default())
                    .unwrap_or_else(|e| panic!("{} failed to run: {e}", workload.name));
                measured[slot] = report.available_parallelism();
            }
            rows.push((
                machine.name().to_string(),
                workload.name.to_string(),
                measured[0],
                measured[1],
            ));
        }
    }
    AliasOracleStudy { rows }
}

impl fmt::Display for AliasOracleStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Alias-oracle study: parallelism by dependence oracle (naive 4x unrolling)"
        )?;
        writeln!(
            f,
            "  {:38} {:10} {:>12} {:>10} {:>8}",
            "machine", "benchmark", "conservative", "symbolic", "delta"
        )?;
        for (machine, benchmark, conservative, symbolic) in &self.rows {
            writeln!(
                f,
                "  {machine:38} {benchmark:10} {conservative:>12.3} {symbolic:>10.3} {:>+7.2}%",
                (symbolic / conservative - 1.0) * 100.0
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stall breakdown (where each preset's cycles actually go)
// ---------------------------------------------------------------------------

/// The stall-breakdown study: the whole suite's cycle account aggregated
/// per machine preset. Where Figure 4-x reports *how fast* each machine
/// is, this reports *why it is no faster*: every machine cycle charged to
/// issue, one stall cause, or pipeline drain (the rows sum exactly), plus
/// the dominant cause from the per-instruction wait view — which, unlike
/// the cycle view, also sees deferrals that hide inside busy cycles
/// (issue-width pressure on wide machines).
#[derive(Debug, Clone)]
pub struct StallBreakdownStudy {
    /// `(machine, aggregate account, dominant wait cause)` rows.
    pub rows: Vec<(String, CycleAccount, &'static str)>,
}

/// Runs the stall-breakdown study: the full suite at `OptLevel::O4` on
/// every paper preset.
///
/// # Panics
///
/// Panics if any workload fails to compile or run, or if any account
/// fails its conservation invariant — both indicate a simulator bug.
#[must_use]
pub fn stall_breakdown(size: Size) -> StallBreakdownStudy {
    let machines = [
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::vliw(4),
        presets::ideal_superscalar(2),
        presets::ideal_superscalar(8),
        presets::superpipelined(4),
        presets::superpipelined_superscalar(2, 2),
        presets::superscalar_with_class_conflicts(4),
        presets::underpipelined_slow_cycle(),
        presets::underpipelined_half_issue(),
    ];
    let workloads = suite(size);
    let mut rows = Vec::new();
    for machine in &machines {
        let mut aggregate: Option<CycleAccount> = None;
        for workload in &workloads {
            let report = run_workload(workload, OptLevel::O4, machine, None, None);
            let account = report.cycle_account();
            assert!(
                account.conserved(),
                "{} on {}: cycle account does not balance",
                workload.name,
                machine.name()
            );
            match &mut aggregate {
                Some(total) => total.merge(account),
                None => aggregate = Some(account.clone()),
            }
        }
        let aggregate = aggregate.expect("non-empty suite");
        let dominant = (0..NUM_STALL_KINDS)
            .max_by_key(|&index| aggregate.wait_cycles(index))
            .expect("non-empty cause set");
        rows.push((
            machine.name().to_string(),
            aggregate,
            StallCause::LABELS[dominant],
        ));
    }
    StallBreakdownStudy { rows }
}

// ---------------------------------------------------------------------------
// Rules study (the verified rewrite-rule table: on vs off)
// ---------------------------------------------------------------------------

/// One workload measured with the synthesized rewrite-rule table disabled
/// and enabled (everything else — opt level, machine, unrolling — held
/// fixed).
#[derive(Debug, Clone)]
pub struct RulesRow {
    /// Workload name.
    pub benchmark: String,
    /// Static instructions without / with the rule table.
    pub static_insts: [usize; 2],
    /// Dynamic instructions without / with the rule table.
    pub dynamic_insts: [u64; 2],
    /// Available parallelism without / with the rule table.
    pub parallelism: [f64; 2],
}

/// The rules study: what the machine-verified rewrite-rule table buys on
/// each workload, measured on the degree-4 ideal superscalar at `O4`.
///
/// The table only ever *collapses* expressions (each rule's right-hand
/// side is a variable or a constant), and it competes with passes that
/// already exist: constant folding, CSE and strength reduction catch most
/// of the suite's redundancy on their own, so the honest result is rows
/// of zeros with isolated wins where an identity pattern (`x & x`,
/// `x + 0` fed by a variable, not a constant) survives to LVN. The wins
/// shorten the instruction stream without hurting the issue rate.
#[derive(Debug, Clone)]
pub struct RulesStudy {
    /// One row per workload.
    pub rows: Vec<RulesRow>,
}

/// Runs the rules study over the whole suite.
///
/// # Panics
///
/// Panics if any workload fails to compile or run in either
/// configuration — the suite is tested in both.
#[must_use]
pub fn rules_study(size: Size) -> RulesStudy {
    let machine = presets::ideal_superscalar(4);
    let mut rows = Vec::new();
    for workload in &suite(size) {
        let mut row = RulesRow {
            benchmark: workload.name.to_string(),
            static_insts: [0; 2],
            dynamic_insts: [0; 2],
            parallelism: [0.0; 2],
        };
        for (slot, rules) in [(0, false), (1, true)] {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_rules(rules);
            let program = compile(&workload.source, &options)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name));
            let report = simulate(&program, &machine, SimOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", workload.name));
            row.static_insts[slot] = program.static_size();
            row.dynamic_insts[slot] = report.instructions();
            row.parallelism[slot] = report.available_parallelism();
        }
        rows.push(row);
    }
    RulesStudy { rows }
}

impl fmt::Display for RulesStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Rules study: verified rewrite-rule table off vs on (ideal superscalar:4, O4)"
        )?;
        writeln!(
            f,
            "  {:10} {:>8} {:>8} {:>7} {:>10} {:>10} {:>7} {:>8} {:>8}",
            "benchmark",
            "stat-off",
            "stat-on",
            "delta",
            "dyn-off",
            "dyn-on",
            "delta",
            "ilp-off",
            "ilp-on"
        )?;
        for row in &self.rows {
            let pct = |off: f64, on: f64| (on / off - 1.0) * 100.0;
            writeln!(
                f,
                "  {:10} {:>8} {:>8} {:>+6.1}% {:>10} {:>10} {:>+6.1}% {:>8.3} {:>8.3}",
                row.benchmark,
                row.static_insts[0],
                row.static_insts[1],
                pct(row.static_insts[0] as f64, row.static_insts[1] as f64),
                row.dynamic_insts[0],
                row.dynamic_insts[1],
                pct(row.dynamic_insts[0] as f64, row.dynamic_insts[1] as f64),
                row.parallelism[0],
                row.parallelism[1],
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bound study (static ILP ceilings vs measured parallelism)
// ---------------------------------------------------------------------------

/// One workload × machine cell of the bound study: the static ILP ceiling
/// next to the parallelism the simulator actually measured.
#[derive(Debug, Clone)]
pub struct BoundCell {
    /// Workload name.
    pub benchmark: String,
    /// Innermost machine loops the static analysis recognized.
    pub loops: usize,
    /// Sound static lower bound on machine cycles.
    pub lower_bound_cycles: u64,
    /// Machine cycles the simulator measured.
    pub machine_cycles: u64,
    /// Static ILP ceiling (`instructions · pipe_degree / lower bound`).
    pub bound_ilp: f64,
    /// Measured available parallelism.
    pub measured_ilp: f64,
    /// Recurrence-bound MinII (largest over the program's loops).
    pub rec_min_ii: f64,
    /// Resource-bound MinII (largest over the program's loops).
    pub res_min_ii: f64,
    /// The soundness invariant: measured ILP never exceeds the bound.
    pub sound: bool,
}

/// Computes one [`BoundCell`]: static loop analysis, a counted simulation,
/// and the combined ceiling for `program` on `machine`.
///
/// # Panics
///
/// Panics if the program fails to run — callers hand in compiled,
/// validated programs.
#[must_use]
pub fn measure_bound(benchmark: &str, program: &Program, machine: &MachineConfig) -> BoundCell {
    let oracle = OracleKind::default().as_loop_oracle();
    let statics = program_loop_statics(program, machine, oracle);
    let watches: Vec<(u32, u64, u64)> = statics
        .iter()
        .map(|s| (s.func as u32, s.header as u64, s.latch as u64))
        .collect();
    let mut sink = LoopCountSink::new(&watches);
    let report = simulate_with_sink(program, machine, SimOptions::default(), &mut sink)
        .unwrap_or_else(|e| panic!("{benchmark} failed to run: {e}"));
    let counts: Vec<LoopCount> = sink
        .counts()
        .into_iter()
        .map(|(iterations, visits)| LoopCount { iterations, visits })
        .collect();
    let bound = static_bound(
        machine,
        &statics,
        &counts,
        report.instructions(),
        report.census(),
    );
    let measured = report.available_parallelism();
    BoundCell {
        benchmark: benchmark.to_string(),
        loops: statics.len(),
        lower_bound_cycles: bound.lower_bound_cycles,
        machine_cycles: report.machine_cycles(),
        bound_ilp: bound.bound_ilp,
        measured_ilp: measured,
        rec_min_ii: bound.rec_min_ii,
        res_min_ii: bound.res_min_ii,
        sound: measured <= bound.bound_ilp * (1.0 + 1e-9),
    }
}

/// The bound study: static ILP ceilings against measured parallelism for
/// the full suite on every paper preset.
#[derive(Debug, Clone)]
pub struct BoundStudy {
    /// `(machine, cells)` — one cell per workload, suite order.
    pub rows: Vec<(String, Vec<BoundCell>)>,
}

/// Runs the bound study at `OptLevel::O4` over all presets × workloads.
///
/// # Panics
///
/// Panics if any workload fails to compile or run, or if any cell violates
/// the soundness invariant — the latter would mean the static bound or the
/// timing model is wrong.
#[must_use]
pub fn bound_study(size: Size) -> BoundStudy {
    let machines = [
        presets::base(),
        presets::multititan(),
        presets::cray1(),
        presets::vliw(4),
        presets::ideal_superscalar(2),
        presets::ideal_superscalar(8),
        presets::superpipelined(4),
        presets::superpipelined_superscalar(2, 2),
        presets::superscalar_with_class_conflicts(4),
        presets::underpipelined_slow_cycle(),
        presets::underpipelined_half_issue(),
    ];
    let workloads = suite(size);
    let mut rows = Vec::new();
    for machine in &machines {
        let mut cells = Vec::new();
        for workload in &workloads {
            let options = CompileOptions::new(OptLevel::O4, machine);
            let program = compile(&workload.source, &options)
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name));
            let cell = measure_bound(workload.name, &program, machine);
            assert!(
                cell.sound,
                "{} on {}: measured ILP {:.4} exceeds static bound {:.4}",
                workload.name,
                machine.name(),
                cell.measured_ilp,
                cell.bound_ilp
            );
            cells.push(cell);
        }
        rows.push((machine.name().to_string(), cells));
    }
    BoundStudy { rows }
}

impl fmt::Display for BoundStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Bound study: static ILP ceiling vs measured parallelism (suite, O4)"
        )?;
        for (machine, cells) in &self.rows {
            writeln!(f, "  {machine}")?;
            writeln!(
                f,
                "    {:10} {:>5} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6}",
                "benchmark",
                "loops",
                "lb-cycles",
                "cycles",
                "bound",
                "ilp",
                "rec-ii",
                "res-ii",
                "sound"
            )?;
            for c in cells {
                writeln!(
                    f,
                    "    {:10} {:>5} {:>12} {:>12} {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>6}",
                    c.benchmark,
                    c.loops,
                    c.lower_bound_cycles,
                    c.machine_cycles,
                    c.bound_ilp,
                    c.measured_ilp,
                    c.rec_min_ii,
                    c.res_min_ii,
                    c.sound
                )?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for StallBreakdownStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Stall breakdown: % of machine cycles by cause (suite aggregate, O4)"
        )?;
        write!(f, "  {:38} {:>10}", "machine", "cycles")?;
        for short in ["issue", "raw", "waw", "fu", "mem", "ctl"] {
            write!(f, " {short:>6}")?;
        }
        writeln!(f, " {:>6} dominant wait", "drain")?;
        for (machine, account, dominant) in &self.rows {
            let total = account.machine_cycles().max(1) as f64;
            let pct = |cycles: u64| 100.0 * cycles as f64 / total;
            write!(
                f,
                "  {machine:38} {:>10} {:>5.1}%",
                account.machine_cycles(),
                pct(account.issue_cycles())
            )?;
            // The issue-width column is provably all zeros in the cycle
            // view (a width deferral issues next cycle), so it is omitted.
            for index in 0..NUM_STALL_KINDS - 1 {
                write!(f, " {:>5.1}%", pct(account.stall_cycles(index)))?;
            }
            writeln!(f, " {:>5.1}% {dominant}", pct(account.drain_cycles()))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sweep study (companion to Figure 4-3: the measured map, not the model)
// ---------------------------------------------------------------------------

/// The sweep study: speedup-vs-cost Pareto frontier over a machine grid.
///
/// Figure 4-3 models how much parallelism each `(n, m)` point *requires*;
/// this study measures what the suite actually *delivers* on every cell of
/// a grid containing those presets, then keeps the hardware-efficient
/// frontier: the cells no cheaper cell matches.
#[derive(Debug, Clone)]
pub struct SweepStudy {
    /// The grid's canonical spec text.
    pub grid: String,
    /// Cells enumerated.
    pub cells: usize,
    /// Work items quarantined (must be 0 on a healthy pipeline).
    pub quarantined: usize,
    /// Per-cell aggregates (harmonic-mean speedup, hardware cost).
    pub summaries: Vec<crate::sweep::CellSummary>,
    /// The Pareto frontier, by rising cost.
    pub frontier: Vec<crate::sweep::ParetoPoint>,
}

/// Runs the sweep study: a 48-cell grid spanning the paper's superscalar
/// and superpipelined presets under unit and MultiTitan latencies.
#[must_use]
pub fn sweep_study(size: Size) -> SweepStudy {
    use crate::sweep::{
        aggregate_cells, pareto_frontier, run_sweep, PipelineCellRunner, ResultCache, SweepConfig,
        SweepPlan, DEFAULT_CELL_FUEL,
    };
    let workloads = suite(size);
    let runner = PipelineCellRunner::new(
        &workloads,
        OptLevel::O4,
        OracleKind::Symbolic,
        DEFAULT_CELL_FUEL,
        false,
    );
    let grid = supersym_machine::GridSpec::parse(
        "issue=1,2,4,8 pipe=1,2,4 lat=unit,titan fu=ideal,shared",
    )
    .unwrap_or_else(|_| unreachable!("static grid spec parses"));
    let plan = SweepPlan {
        workload_names: runner.names().to_vec(),
        fuel: DEFAULT_CELL_FUEL,
        identity: runner.identity(&grid.canonical(), OptLevel::O4, OracleKind::Symbolic),
        grid,
    };
    let config = SweepConfig {
        jobs: 4,
        quiet: true,
        ..SweepConfig::default()
    };
    let outcome = run_sweep(&plan, &runner, &config, None, &ResultCache::new(), None)
        .unwrap_or_else(|_| unreachable!("no journal, no I/O"));
    let cells = plan.grid.cells();
    let summaries = aggregate_cells(&outcome.records, &cells);
    let frontier = pareto_frontier(&summaries);
    SweepStudy {
        grid: plan.grid.canonical(),
        cells: cells.len(),
        quarantined: outcome.quarantined,
        summaries,
        frontier,
    }
}

impl fmt::Display for SweepStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Sweep study: measured Pareto frontier over `{}`",
            self.grid
        )?;
        writeln!(
            f,
            "  {} cells, {} quarantined; frontier ({} points, by rising cost):",
            self.cells,
            self.quarantined,
            self.frontier.len()
        )?;
        writeln!(f, "  {:30} {:>6} {:>9}", "cell", "cost", "speedup")?;
        for point in &self.frontier {
            writeln!(
                f,
                "  {:30} {:>6} {:>9.2}",
                point.cell, point.cost, point.speedup
            )?;
        }
        Ok(())
    }
}
