//! Glue between the compilation pipeline and the sweep engine.
//!
//! The sweep engine (`supersym-sweep`) is deliberately pipeline-blind: it
//! fans work items out, contains faults and keeps the checkpoint journal,
//! but runs cells through the [`supersym_sweep::CellRunner`] trait. This
//! module is the pipeline side of that trait: it compiles each workload's
//! machine-independent front half **once per register-split model** (the
//! only grid axis the front half can see) and then, per cell, runs only
//! the machine-dependent back half — scheduling plus lockstep simulation.

use crate::compile::{compile_front, CompileOptions, FrontArtifact, OptLevel};
use supersym_analyze::OracleKind;
use supersym_machine::{presets, GridCell, SplitModel};
use supersym_sim::{simulate, ExecOptions, SimError, SimOptions};
use supersym_workloads::Workload;

/// Re-export: the pipeline-blind engine (`supersym-sweep`), so drivers can
/// reach the whole sweep surface through `supersym::sweep`.
pub use supersym_sweep::{
    aggregate_cells, cache_from_records, frontier_json, load_checkpoint, pareto_frontier,
    run_sweep, run_sweep_observed, CellFailure, CellMetrics, CellRecord, CellRunner, CellStatus,
    CellSummary, CheckpointError, FaultInjection, ParetoPoint, ResultCache, ResumeState,
    SweepConfig, SweepHeader, SweepMetrics, SweepObserver, SweepOutcome, SweepPlan, SCHEMA,
};

/// Fuel given to each cell when the caller does not override it: enough
/// for every small-size workload on every preset with an order of
/// magnitude to spare, small enough that a runaway cell quarantines fast.
pub const DEFAULT_CELL_FUEL: u64 = 20_000_000;

fn split_index(split: SplitModel) -> usize {
    match split {
        SplitModel::Default => 0,
        SplitModel::Wide => 1,
    }
}

const SPLIT_MODELS: [SplitModel; 2] = [SplitModel::Default, SplitModel::Wide];

/// A compiled workload set, ready to schedule and simulate on any cell.
pub struct PipelineCellRunner {
    /// `fronts[workload][split_index]`: the front half, or the pipeline
    /// error that rejected it (rare — a workload the wide split cannot
    /// register-allocate, say). Errors are replayed as per-cell rejects.
    fronts: Vec<[Result<FrontArtifact, String>; 2]>,
    names: Vec<String>,
    fuel: u64,
    verify: bool,
}

impl PipelineCellRunner {
    /// Compiles the front half of every workload under both split models.
    #[must_use]
    pub fn new(
        workloads: &[Workload],
        opt: OptLevel,
        oracle: OracleKind,
        fuel: u64,
        verify: bool,
    ) -> Self {
        let fronts = workloads
            .iter()
            .map(|workload| {
                SPLIT_MODELS.map(|split| {
                    let options = CompileOptions::new(opt, &presets::base())
                        .with_split(split.split())
                        .with_oracle(oracle)
                        .with_verify(verify);
                    compile_front(&workload.source, &options).map_err(|e| e.to_string())
                })
            })
            .collect();
        PipelineCellRunner {
            fronts,
            names: workloads.iter().map(|w| w.name.to_string()).collect(),
            fuel,
            verify,
        }
    }

    /// Workload names, index-aligned with the runner.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The identity string the checkpoint header hashes: options plus
    /// every program fingerprint, so a resumed sweep refuses a journal
    /// written for different code.
    #[must_use]
    pub fn identity(&self, grid_canonical: &str, opt: OptLevel, oracle: OracleKind) -> String {
        let mut identity = format!(
            "grid={grid_canonical};opt={opt};oracle={oracle:?};fuel={};verify={};",
            self.fuel, self.verify
        );
        for (name, fronts) in self.names.iter().zip(&self.fronts) {
            for (split, front) in SPLIT_MODELS.iter().zip(fronts) {
                let hash = match front {
                    Ok(artifact) => artifact.fingerprint(),
                    Err(message) => supersym_rng::fnv1a_64(message.as_bytes()),
                };
                identity.push_str(&format!("{name}.{}={hash:016x};", split.name()));
            }
        }
        identity
    }
}

impl CellRunner for PipelineCellRunner {
    fn program_hash(&self, workload: usize, cell: &GridCell) -> u64 {
        match &self.fronts[workload][split_index(cell.split)] {
            Ok(artifact) => artifact.fingerprint(),
            Err(message) => supersym_rng::fnv1a_64(message.as_bytes()),
        }
    }

    fn run_cell(&self, workload: usize, cell: &GridCell) -> Result<CellMetrics, CellFailure> {
        let front = self.fronts[workload][split_index(cell.split)]
            .as_ref()
            .map_err(|message| CellFailure::Reject {
                stage: "front".to_string(),
                message: message.clone(),
            })?;
        let machine = cell.config();
        let program =
            front
                .schedule_for(&machine, self.verify)
                .map_err(|e| CellFailure::Reject {
                    stage: e.stage().to_string(),
                    message: e.to_string(),
                })?;
        let options = SimOptions {
            exec: ExecOptions {
                max_steps: self.fuel,
                ..ExecOptions::default()
            },
            ..SimOptions::default()
        };
        match simulate(&program, &machine, options) {
            Ok(report) => Ok(CellMetrics {
                instructions: report.instructions(),
                machine_cycles: report.machine_cycles(),
                base_cycles: report.base_cycles(),
            }),
            Err(SimError::StepLimitExceeded { limit }) => Err(CellFailure::Fuel { limit }),
            Err(e) => Err(CellFailure::Reject {
                stage: "sim".to_string(),
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_machine::GridSpec;
    use supersym_sweep::{run_sweep, ResultCache, SweepConfig, SweepPlan};
    use supersym_workloads::Size;

    fn runner() -> PipelineCellRunner {
        let workloads = vec![supersym_workloads::whet(1)];
        PipelineCellRunner::new(
            &workloads,
            OptLevel::O4,
            OracleKind::Symbolic,
            DEFAULT_CELL_FUEL,
            false,
        )
    }

    #[test]
    fn pipeline_cells_complete_and_speed_up() {
        let runner = runner();
        let grid = GridSpec::parse("issue=1,4 pipe=1 lat=unit").unwrap();
        let plan = SweepPlan {
            workload_names: runner.names().to_vec(),
            fuel: DEFAULT_CELL_FUEL,
            identity: runner.identity(&grid.canonical(), OptLevel::O4, OracleKind::Symbolic),
            grid,
        };
        let outcome = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.quarantined, 0, "{:?}", outcome.records);
        let speedup = |i: usize| match &outcome.records[i].status {
            supersym_sweep::CellStatus::Ok(m) => m.speedup(),
            other => panic!("cell {i} not ok: {other:?}"),
        };
        // issue=1 unit-latency is the base machine: speedup 1. issue=4
        // must beat it.
        assert!((speedup(0) - 1.0).abs() < 1e-9, "base cell {}", speedup(0));
        assert!(speedup(1) > 1.0, "wider cell {}", speedup(1));
    }

    #[test]
    fn tiny_fuel_quarantines_as_timeout() {
        let workloads = vec![supersym_workloads::whet(1)];
        let runner =
            PipelineCellRunner::new(&workloads, OptLevel::O4, OracleKind::Symbolic, 50, false);
        let grid = GridSpec::parse("issue=1 pipe=1").unwrap();
        let plan = SweepPlan {
            workload_names: runner.names().to_vec(),
            fuel: 50,
            identity: runner.identity(&grid.canonical(), OptLevel::O4, OracleKind::Symbolic),
            grid,
        };
        let outcome = run_sweep(
            &plan,
            &runner,
            &SweepConfig::default(),
            None,
            &ResultCache::new(),
            None,
        )
        .unwrap();
        assert_eq!(outcome.quarantined, 1);
        assert!(matches!(
            outcome.records[0].status,
            supersym_sweep::CellStatus::Timeout { limit: 50 }
        ));
    }

    #[test]
    fn suite_small_compiles_under_both_splits() {
        let workloads = supersym_workloads::suite(Size::Small);
        let runner = PipelineCellRunner::new(
            &workloads,
            OptLevel::O4,
            OracleKind::Symbolic,
            DEFAULT_CELL_FUEL,
            false,
        );
        for (name, fronts) in runner.names.iter().zip(&runner.fronts) {
            for front in fronts {
                assert!(front.is_ok(), "{name}: {front:?}");
            }
        }
    }
}
