//! # supersym
//!
//! A reproduction of **Jouppi & Wall, "Available Instruction-Level
//! Parallelism for Superscalar and Superpipelined Machines" (ASPLOS 1989)**:
//! the paper's "parameterizable code reorganization and simulation system",
//! rebuilt as a Rust workspace.
//!
//! The crate ties the subsystems together:
//!
//! * [`compile`] — the full pipeline: Tital source → AST (`supersym-lang`)
//!   → optional source-level unrolling (`supersym-opt`) → IR
//!   (`supersym-ir`) → optimization levels → home-register allocation
//!   (`supersym-regalloc`) → machine code + pipeline scheduling
//!   (`supersym-codegen`), all parameterized by a
//!   [`MachineConfig`](supersym_machine::MachineConfig);
//! * [`experiments`] — one driver per table and figure of the paper;
//! * re-exports of the subsystem crates under [`isa`], [`machine`], [`sim`]
//!   and friends.
//!
//! ## Quickstart
//!
//! ```
//! use supersym::{compile, CompileOptions, OptLevel};
//! use supersym::machine::presets;
//! use supersym::sim::{simulate, SimOptions};
//!
//! let source = "
//!     global arr data[64];
//!     fn main() -> int {
//!         var sum = 0;
//!         for (i = 0; i < 64; i = i + 1) { data[i] = i; }
//!         for (i = 0; i < 64; i = i + 1) { sum = sum + data[i]; }
//!         return sum;
//!     }";
//!
//! // Compile for (and simulate on) a degree-4 ideal superscalar machine.
//! let machine = presets::ideal_superscalar(4);
//! let program = compile(source, &CompileOptions::new(OptLevel::O4, &machine))?;
//! let report = simulate(&program, &machine, SimOptions::default())?;
//! assert!(report.available_parallelism() > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod compile;
mod error;
pub mod experiments;
pub mod sweep;
pub mod torture;

pub use compile::{
    compile, compile_ast, compile_certified, compile_front, compile_with_trace, phase_metrics,
    CompileError, CompileOptions, FrontArtifact, OptLevel,
};
pub use error::PipelineError;

/// Re-export: static analysis (dataflow framework, IR lints, and the
/// dependence oracle shared by scheduler and checker).
pub use supersym_analyze as analyze;
/// Re-export: the back end.
pub use supersym_codegen as codegen;
/// Re-export: the IR.
pub use supersym_ir as ir;
/// Re-export: the target ISA.
pub use supersym_isa as isa;
/// Re-export: the Tital front end.
pub use supersym_lang as lang;
/// Re-export: machine descriptions.
pub use supersym_machine as machine;
/// Re-export: the optimizer.
pub use supersym_opt as opt;
/// Re-export: register allocation.
pub use supersym_regalloc as regalloc;
/// Re-export: the shared deterministic RNG (SplitMix64).
pub use supersym_rng as rng;
/// Re-export: synthesized, machine-verified rewrite rules.
pub use supersym_rules as rules;
/// Re-export: the simulator.
pub use supersym_sim as sim;
/// Re-export: run telemetry (trace sinks, phase/issue events, JSON writer).
pub use supersym_trace as trace;
/// Re-export: static verification (program lint, machine lint, schedule
/// legality).
pub use supersym_verify as verify;
/// Re-export: the benchmark suite.
pub use supersym_workloads as workloads;
