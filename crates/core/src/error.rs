//! The unified pipeline error taxonomy.
//!
//! Every failure the pipeline can produce — from lexing Tital source to
//! simulating scheduled code — is one [`PipelineError`] variant, tagged
//! with the stage that rejected the input. The torture harness
//! (`supersym-torture`) and the `titalc` driver both lean on this: the
//! harness to tell *expected* rejections from internal bugs, the driver to
//! map failures to distinct exit codes (see [`PipelineError::exit_code`]).
//!
//! The contract the taxonomy encodes: **every input either produces a
//! typed error or a correct run** — never a panic, never a hang, never a
//! scheduler/checker disagreement, never divergent results across runs.

use std::error::Error;
use std::fmt;
use supersym_isa::Diagnostic;
use supersym_lang::LangError;
use supersym_machine::SpecError;
use supersym_sim::SimError;

/// A stage-tagged error from anywhere in the pipeline.
///
/// The first three variants wrap the front end's [`LangError`] and differ
/// only in *which stage* rejected the input; the distinction matters to
/// callers that classify failures (the torture harness treats a parse
/// rejection of fuzzed text as routine but an IR rejection of checked
/// source as a bug).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Lexing or parsing rejected the source text.
    Parse(LangError),
    /// Semantic analysis rejected the parsed module.
    Check(LangError),
    /// AST-to-IR lowering rejected the checked module (depth limits;
    /// undefined names cannot happen for checked modules).
    Lower(LangError),
    /// Internal IR inconsistency (a compiler bug if it ever surfaces).
    Ir(supersym_ir::IrError),
    /// A `.machine` description failed to parse.
    Machine(SpecError),
    /// The register split leaves the back end fewer than
    /// [`supersym_codegen::MIN_TEMP_REGS`] expression temporaries per file.
    RegisterSplit {
        /// Integer temporaries the allocator could provide.
        int_temps: usize,
        /// FP temporaries the allocator could provide.
        fp_temps: usize,
    },
    /// The static verifier rejected the machine description or the
    /// compiler's own output. Carries every error-severity diagnostic.
    Verify(Vec<Diagnostic>),
    /// The translation validator could not certify an optimizer pass:
    /// the before/after IR snapshots were proven (or strongly evidenced)
    /// inequivalent. Carries every error-severity diagnostic.
    Certify(Vec<Diagnostic>),
    /// The simulator rejected or aborted the compiled program.
    Sim(SimError),
}

impl PipelineError {
    /// The stage that produced the error, as a stable lowercase name.
    #[must_use]
    pub fn stage(&self) -> &'static str {
        match self {
            PipelineError::Parse(_) => "parse",
            PipelineError::Check(_) => "check",
            PipelineError::Lower(_) => "lower",
            PipelineError::Ir(_) => "ir",
            PipelineError::Machine(_) => "machine",
            PipelineError::RegisterSplit { .. } => "regalloc",
            PipelineError::Verify(_) => "verify",
            PipelineError::Certify(_) => "certify",
            PipelineError::Sim(_) => "sim",
        }
    }

    /// The `titalc` exit code for this error.
    ///
    /// * `2` — the source text was rejected by the front end (parse,
    ///   check or lowering);
    /// * `3` — a lint/verify stage rejected the input (machine
    ///   descriptions, verifier diagnostics, internal IR checks, an
    ///   unusable register split);
    /// * `4` — the program compiled but simulation failed.
    ///
    /// Exit codes `0` (success) and `1` (usage or I/O error) are assigned
    /// by the driver itself.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            PipelineError::Parse(_) | PipelineError::Check(_) | PipelineError::Lower(_) => 2,
            PipelineError::Ir(_)
            | PipelineError::Machine(_)
            | PipelineError::RegisterSplit { .. }
            | PipelineError::Verify(_)
            | PipelineError::Certify(_) => 3,
            PipelineError::Sim(_) => 4,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Check(e) => write!(f, "check error: {e}"),
            PipelineError::Lower(e) => write!(f, "lowering error: {e}"),
            PipelineError::Ir(e) => write!(f, "internal: {e}"),
            PipelineError::Machine(e) => write!(f, "machine description: {e}"),
            PipelineError::RegisterSplit {
                int_temps,
                fp_temps,
            } => write!(
                f,
                "register split leaves too few temporaries \
                 ({int_temps} int, {fp_temps} fp; need {} of each)",
                supersym_codegen::MIN_TEMP_REGS
            ),
            PipelineError::Verify(diagnostics) => {
                write!(f, "verification failed ({} error", diagnostics.len())?;
                if diagnostics.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            PipelineError::Certify(diagnostics) => {
                write!(
                    f,
                    "translation validation failed ({} error",
                    diagnostics.len()
                )?;
                if diagnostics.len() != 1 {
                    write!(f, "s")?;
                }
                write!(f, ")")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            PipelineError::Sim(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Parse(e) | PipelineError::Check(e) | PipelineError::Lower(e) => Some(e),
            PipelineError::Ir(e) => Some(e),
            PipelineError::Machine(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            PipelineError::RegisterSplit { .. }
            | PipelineError::Verify(_)
            | PipelineError::Certify(_) => None,
        }
    }
}

impl From<supersym_ir::IrError> for PipelineError {
    fn from(e: supersym_ir::IrError) -> Self {
        PipelineError::Ir(e)
    }
}

impl From<SpecError> for PipelineError {
    fn from(e: SpecError) -> Self {
        PipelineError::Machine(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_and_exit_codes() {
        let parse = PipelineError::Parse(LangError::TooDeep {
            limit: 200,
            line: 1,
        });
        assert_eq!(parse.stage(), "parse");
        assert_eq!(parse.exit_code(), 2);
        assert!(parse.source().is_some());

        let split = PipelineError::RegisterSplit {
            int_temps: 2,
            fp_temps: 2,
        };
        assert_eq!(split.exit_code(), 3);
        assert!(split.to_string().contains("too few temporaries"));
        assert!(split.source().is_none());

        let sim = PipelineError::Sim(SimError::StepLimitExceeded { limit: 10 });
        assert_eq!(sim.exit_code(), 4);
        assert_eq!(sim.stage(), "sim");
        assert!(sim.source().is_some());
    }

    #[test]
    fn display_chains_are_informative() {
        let e = PipelineError::Machine(SpecError {
            line: 3,
            message: "unknown key `frobnicate`".to_string(),
        });
        assert!(e.to_string().contains("line 3"));
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
