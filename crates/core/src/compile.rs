//! The end-to-end compilation pipeline.

use crate::error::PipelineError;
use std::fmt;
use std::time::Instant;
use supersym_analyze::OracleKind;
use supersym_ir::Module;
use supersym_isa::{Diagnostic, Program};
use supersym_machine::{MachineConfig, RegisterSplit};
use supersym_opt::{Pass, PassObserver, UnrollOptions};
use supersym_rules::RuleTable;
use supersym_trace::{MetricsRegistry, OwnedPhase, PhaseRecord, TraceSink};
use supersym_verify::PassCertificate;

/// The paper's Figure 4-8 optimization ladder. Each level includes all the
/// previous ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// "the parallelism with no optimization at all".
    O0,
    /// + pipeline scheduling.
    O1,
    /// + intra-block optimizations.
    O2,
    /// + global optimizations.
    O3,
    /// + global register allocation.
    O4,
}

impl OptLevel {
    /// All levels in Figure 4-8 order.
    pub const ALL: [OptLevel; 5] = [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::O4,
    ];

    /// Whether pipeline scheduling runs.
    #[must_use]
    pub fn scheduling(self) -> bool {
        self >= OptLevel::O1
    }

    /// Whether intra-block optimizations run.
    #[must_use]
    pub fn local(self) -> bool {
        self >= OptLevel::O2
    }

    /// Whether global optimizations run.
    #[must_use]
    pub fn global(self) -> bool {
        self >= OptLevel::O3
    }

    /// Whether variables are promoted to home registers.
    #[must_use]
    pub fn global_regs(self) -> bool {
        self >= OptLevel::O4
    }

    /// The Figure 4-8 x-axis label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "none",
            OptLevel::O1 => "+scheduling",
            OptLevel::O2 => "+local opt",
            OptLevel::O3 => "+global opt",
            OptLevel::O4 => "+global reg alloc",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Options for [`compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Optimization level (Figure 4-8 ladder).
    pub opt: OptLevel,
    /// Source-level loop unrolling, if any (Figure 4-6).
    pub unroll: Option<UnrollOptions>,
    /// Rebalance associative chains (implied by careful unrolling; the
    /// paper's reassociation requires "knowledge of operator associativity"
    /// and changes FP rounding, so it is opt-in).
    pub reassociate: bool,
    /// Register-file split between temporaries and home registers.
    pub split: RegisterSplit,
    /// The machine the pipeline scheduler targets.
    pub machine: MachineConfig,
    /// Run the `supersym-verify` static checks on the output: machine-
    /// description lint before compiling, schedule-legality check after
    /// scheduling, and program lint on the final code. Defaults to on in
    /// debug builds (where compile time is cheap and bugs are young) and
    /// off in release builds.
    pub verify: bool,
    /// The memory-disambiguation oracle the scheduler and the legality
    /// checker share (§4.4: scheduling quality hinges on how well memory
    /// references are disambiguated). Defaults to the symbolic oracle;
    /// [`OracleKind::Conservative`] reproduces the seed behaviour.
    pub oracle: OracleKind,
    /// Drive the optimizer's algebraic simplification and reassociation
    /// from the machine-verified rewrite-rule table (default). Off, the
    /// optimizer runs with an empty table — the ablation baseline for
    /// measuring what the synthesized rules buy.
    pub rules: bool,
    /// Translation validation: snapshot the IR before and after every
    /// optimizer pass and re-prove equivalence with
    /// [`supersym_verify::certify_pass`]. A pass that fails certification
    /// aborts compilation with [`PipelineError::Certify`] (exit code 3).
    /// Off by default — it is the paranoid mode behind `titalc certify`.
    pub certify: bool,
}

impl CompileOptions {
    /// Standard options: the given level, the paper's register split, no
    /// unrolling, scheduling for `machine`.
    #[must_use]
    pub fn new(opt: OptLevel, machine: &MachineConfig) -> Self {
        CompileOptions {
            opt,
            unroll: None,
            reassociate: false,
            split: machine.register_split(),
            machine: machine.clone(),
            verify: cfg!(debug_assertions),
            oracle: OracleKind::default(),
            rules: true,
            certify: false,
        }
    }

    /// Adds loop unrolling (careful unrolling also enables reassociation).
    #[must_use]
    pub fn with_unroll(mut self, unroll: UnrollOptions) -> Self {
        self.reassociate |= unroll.careful;
        self.unroll = Some(unroll);
        self
    }

    /// Overrides the register split.
    #[must_use]
    pub fn with_split(mut self, split: RegisterSplit) -> Self {
        self.split = split;
        self
    }

    /// Forces the static verification passes on or off (by default they
    /// follow `cfg!(debug_assertions)`).
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Picks the dependence oracle for scheduling and its legality check.
    #[must_use]
    pub fn with_oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Enables or disables the verified rewrite-rule table (on by default;
    /// off is the rules-ablation baseline).
    #[must_use]
    pub fn with_rules(mut self, rules: bool) -> Self {
        self.rules = rules;
        self
    }

    /// Enables per-pass translation validation (see
    /// [`CompileOptions::certify`]).
    #[must_use]
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }
}

/// Errors from [`compile`]: an alias for the unified pipeline taxonomy.
/// Compilation never produces the `Machine` or `Sim` variants.
pub type CompileError = PipelineError;

/// Compiles Tital source text to a machine program under `options`.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed source.
pub fn compile(source: &str, options: &CompileOptions) -> Result<Program, CompileError> {
    compile_traced(source, options, None, None)
}

/// Compiles with translation validation forced on and returns the
/// per-pass certificates alongside the program (the machinery behind
/// `titalc certify`).
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed source, and
/// [`PipelineError::Certify`] when an optimizer pass cannot be proven
/// equivalence-preserving.
pub fn compile_certified(
    source: &str,
    options: &CompileOptions,
) -> Result<(Program, Vec<PassCertificate>), CompileError> {
    let options = options.clone().with_certify(true);
    let mut certificates = Vec::new();
    let program = compile_traced(source, &options, None, Some(&mut certificates))?;
    Ok((program, certificates))
}

/// Compiles like [`compile`] while recording one
/// [`PhaseRecord`] per pipeline phase to `sink`: wall time plus phase
/// counters (IR sizes after lowering, dependence-edge counts under both
/// oracles, scheduler movement, static code size).
///
/// The sink-free [`compile`] path takes the same code path; the per-phase
/// counters that are expensive to compute (dependence-edge census, the
/// unscheduled-program snapshot) are only computed when a sink is
/// attached.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed source.
pub fn compile_with_trace(
    source: &str,
    options: &CompileOptions,
    sink: &mut dyn TraceSink,
) -> Result<Program, CompileError> {
    compile_traced(source, options, Some(sink), None)
}

fn compile_traced(
    source: &str,
    options: &CompileOptions,
    mut sink: Option<&mut dyn TraceSink>,
    certificates: Option<&mut Vec<PassCertificate>>,
) -> Result<Program, CompileError> {
    let mut clock = PhaseClock::start();
    let ast = supersym_lang::parse(source).map_err(PipelineError::Parse)?;
    clock.emit(&mut sink, "parse", &[("source_bytes", source.len() as u64)]);
    supersym_lang::check(&ast).map_err(PipelineError::Check)?;
    clock.emit(&mut sink, "check", &[]);
    compile_ast_traced(ast, options, sink, certificates)
}

/// Compiles an already-checked AST (used when the caller transforms the
/// tree first).
///
/// # Errors
///
/// Returns a [`CompileError`] if lowering fails (undefined names — cannot
/// happen for checked modules).
pub fn compile_ast(
    ast: supersym_lang::ast::Module,
    options: &CompileOptions,
) -> Result<Program, CompileError> {
    compile_ast_traced(ast, options, None, None)
}

/// Tracks per-phase wall time. Reading the clock is a few nanoseconds, so
/// the sink-free path keeps it; only record emission is conditional.
struct PhaseClock {
    last: Instant,
}

impl PhaseClock {
    fn start() -> Self {
        PhaseClock {
            last: Instant::now(),
        }
    }

    /// Emits a phase record covering the time since the previous emit and
    /// restarts the clock.
    fn emit(
        &mut self,
        sink: &mut Option<&mut dyn TraceSink>,
        name: &str,
        counters: &[(&str, u64)],
    ) {
        let now = Instant::now();
        if let Some(sink) = sink.as_deref_mut() {
            sink.phase(&PhaseRecord {
                name,
                wall_ns: now.duration_since(self.last).as_nanos(),
                counters,
            });
        }
        self.last = now;
    }
}

/// Folds captured compile phases into a [`MetricsRegistry`]: the phase
/// count as `compile.phases` and every phase counter as
/// `compile.<phase>.<counter>` (dep-edge censuses, IR sizes, scheduler
/// movement). Wall times are deliberately left out — they are
/// nondeterministic, and the registry feeds the goldened `titalc stats`
/// document; per-phase wall time stays on the phase records themselves.
#[must_use]
pub fn phase_metrics(phases: &[OwnedPhase]) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    registry.counter("compile.phases", phases.len() as u64);
    for phase in phases {
        for (counter, value) in &phase.counters {
            registry.counter(format!("compile.{}.{}", phase.name, counter), *value);
        }
    }
    registry
}

/// Counts scheduling regions and dependence edges (under both oracles)
/// across a program — the scheduler's input size. Only run when tracing.
fn dependence_census(program: &Program) -> (u64, u64, u64) {
    let mut regions = 0_u64;
    let mut conservative = 0_u64;
    let mut symbolic = 0_u64;
    for function in program.functions() {
        for (start, end) in supersym_analyze::scheduling_regions(function) {
            regions += 1;
            let window = &function.instrs()[start..end];
            conservative +=
                supersym_analyze::dependence_edges(window, OracleKind::Conservative.as_oracle())
                    .len() as u64;
            symbolic += supersym_analyze::dependence_edges(window, OracleKind::Symbolic.as_oracle())
                .len() as u64;
        }
    }
    (regions, conservative, symbolic)
}

/// How many instructions the scheduler moved: positions whose instruction
/// differs between the unscheduled and scheduled program.
fn moved_instructions(before: &Program, after: &Program) -> u64 {
    let mut moved = 0_u64;
    for (a, b) in before.functions().iter().zip(after.functions()) {
        for (x, y) in a.instrs().iter().zip(b.instrs()) {
            if x != y {
                moved += 1;
            }
        }
    }
    moved
}

/// Snapshots the IR after every optimizer pass that reports a change and
/// re-proves each transition equivalent via the translation validator.
struct Certifier<'t> {
    table: &'t RuleTable,
    prev: Module,
    certificates: Vec<PassCertificate>,
}

impl PassObserver for Certifier<'_> {
    fn after_pass(&mut self, pass: Pass, module: &Module) {
        self.certificates.push(supersym_verify::certify_pass(
            &self.prev,
            module,
            pass.name(),
            self.table,
        ));
        self.prev = module.clone();
    }
}

fn as_observer<'a>(certifier: &'a mut Option<Certifier<'_>>) -> Option<&'a mut dyn PassObserver> {
    certifier.as_mut().map(|c| c as &mut dyn PassObserver)
}

/// The machine-independent half of a compilation: the program as it stands
/// right before pipeline scheduling, plus the knobs the back half needs.
///
/// Everything up to and including `lower_program` depends only on the
/// source, the optimization level, the oracle and the register split —
/// never on issue width, pipelining degree, latencies or functional units.
/// A sweep therefore compiles each workload **once** per register split and
/// calls [`FrontArtifact::schedule_for`] once per machine: compile-once /
/// simulate-many. The identity `compile(s, o)` ==
/// `compile_front(s, o)?.schedule_for(&o.machine, o.verify)` is pinned by a
/// unit test below; `compile` itself is implemented as exactly that
/// composition.
#[derive(Debug, Clone)]
pub struct FrontArtifact {
    program: Program,
    opt: OptLevel,
    oracle: OracleKind,
    split: RegisterSplit,
}

impl FrontArtifact {
    /// The unscheduled program (immutable; scheduling clones it).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The optimization level the front half ran at.
    #[must_use]
    pub fn opt(&self) -> OptLevel {
        self.opt
    }

    /// The dependence oracle scheduling will use.
    #[must_use]
    pub fn oracle(&self) -> OracleKind {
        self.oracle
    }

    /// The register split the allocator used.
    #[must_use]
    pub fn split(&self) -> RegisterSplit {
        self.split
    }

    /// A stable content hash of the unscheduled program (FNV-1a over its
    /// assembly rendering) — the program half of the sweep cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        supersym_rng::fnv1a_64(self.program.to_string().as_bytes())
    }

    /// Runs the machine-dependent back half: machine lint (under `verify`),
    /// pipeline scheduling, schedule legality check and program lint.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the machine fails its lint, the
    /// schedule checker finds a violation, or the scheduled program fails
    /// final validation.
    pub fn schedule_for(
        &self,
        machine: &MachineConfig,
        verify: bool,
    ) -> Result<Program, CompileError> {
        schedule_traced(
            self.program.clone(),
            self.opt,
            self.oracle,
            self.split,
            machine,
            verify,
            &mut None,
        )
    }
}

/// Compiles the machine-independent front half of the pipeline: source
/// through `lower_program`, stopping right before scheduling.
///
/// `options.machine` is ignored except through `options.split` (which
/// [`CompileOptions::new`] seeds from the machine); pass any placeholder
/// machine when sweeping.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed source or a starved register
/// split.
pub fn compile_front(
    source: &str,
    options: &CompileOptions,
) -> Result<FrontArtifact, CompileError> {
    let ast = supersym_lang::parse(source).map_err(PipelineError::Parse)?;
    supersym_lang::check(&ast).map_err(PipelineError::Check)?;
    front_ast_traced(ast, options, &mut None, None)
}

fn compile_ast_traced(
    ast: supersym_lang::ast::Module,
    options: &CompileOptions,
    mut sink: Option<&mut dyn TraceSink>,
    certificates: Option<&mut Vec<PassCertificate>>,
) -> Result<Program, CompileError> {
    let FrontArtifact {
        program,
        opt,
        oracle,
        split,
    } = front_ast_traced(ast, options, &mut sink, certificates)?;
    schedule_traced(
        program,
        opt,
        oracle,
        split,
        &options.machine,
        options.verify,
        &mut sink,
    )
}

fn front_ast_traced(
    mut ast: supersym_lang::ast::Module,
    options: &CompileOptions,
    sink: &mut Option<&mut dyn TraceSink>,
    certificates: Option<&mut Vec<PassCertificate>>,
) -> Result<FrontArtifact, CompileError> {
    let mut clock = PhaseClock::start();
    if let Some(unroll) = options.unroll {
        supersym_opt::unroll_loops(&mut ast, unroll);
        clock.emit(sink, "unroll", &[("factor", unroll.factor as u64)]);
    }
    let mut ir = supersym_ir::lower(&ast).map_err(PipelineError::Lower)?;
    ir.validate()?;
    clock.emit(
        sink,
        "lower",
        &[
            ("ir_funcs", ir.funcs.len() as u64),
            (
                "ir_insts",
                ir.funcs.iter().map(|f| f.inst_count() as u64).sum(),
            ),
        ],
    );
    let empty_table = RuleTable::empty();
    let table: &RuleTable = if options.rules {
        supersym_rules::default_table()
    } else {
        &empty_table
    };
    let mut certifier = options.certify.then(|| Certifier {
        table,
        prev: ir.clone(),
        certificates: Vec::new(),
    });
    if options.opt.local() {
        supersym_opt::run_local_observed(&mut ir, table, as_observer(&mut certifier));
        clock.emit(
            sink,
            "opt_local",
            &[(
                "ir_insts",
                ir.funcs.iter().map(|f| f.inst_count() as u64).sum(),
            )],
        );
    }
    if options.opt.global() {
        supersym_opt::run_global_observed(&mut ir, table, as_observer(&mut certifier));
        clock.emit(
            sink,
            "opt_global",
            &[(
                "ir_insts",
                ir.funcs.iter().map(|f| f.inst_count() as u64).sum(),
            )],
        );
    }
    if options.reassociate {
        supersym_opt::reassociate_observed(&mut ir, table, as_observer(&mut certifier));
        if options.opt.local() {
            supersym_opt::run_local_observed(&mut ir, table, as_observer(&mut certifier));
        }
        clock.emit(sink, "reassociate", &[]);
    }
    if let Some(certifier) = certifier {
        let errors: Vec<Diagnostic> = certifier
            .certificates
            .iter()
            .flat_map(|c| c.diagnostics.iter())
            .filter(|d| d.is_error())
            .cloned()
            .collect();
        clock.emit(
            sink,
            "certify",
            &[("passes", certifier.certificates.len() as u64)],
        );
        if let Some(out) = certificates {
            out.extend(certifier.certificates);
        }
        if !errors.is_empty() {
            return Err(PipelineError::Certify(errors));
        }
    }
    // Sharpen element-access origins with the dataflow analyses (constant
    // index upgrades, linear index recovery): purely better annotations,
    // consumed by the back end's alias tagging and the dependence oracle.
    // Gated with the symbolic oracle so `OracleKind::Conservative` stays a
    // faithful ablation baseline: annotations exactly as the front end
    // wrote them, dependence edges exactly as the seed scheduler saw them.
    if options.oracle == OracleKind::Symbolic {
        supersym_analyze::sharpen_origins(&mut ir);
        clock.emit(sink, "sharpen_origins", &[]);
    }
    supersym_codegen::split_live_across_calls(&mut ir);
    ir.validate()?;
    clock.emit(sink, "split_live", &[]);
    let homes = supersym_regalloc::allocate(&ir, options.split, options.opt.global_regs());
    clock.emit(
        sink,
        "regalloc",
        &[
            ("int_temps", homes.int_temps().len() as u64),
            ("fp_temps", homes.fp_temps().len() as u64),
        ],
    );
    // An overridden split can starve the back end of expression
    // temporaries; surface that as a typed error instead of tripping
    // `lower_program`'s assert.
    let min = supersym_codegen::MIN_TEMP_REGS;
    if homes.int_temps().len() < min || homes.fp_temps().len() < min {
        return Err(PipelineError::RegisterSplit {
            int_temps: homes.int_temps().len(),
            fp_temps: homes.fp_temps().len(),
        });
    }
    let program = supersym_codegen::lower_program(&ir, &homes);
    clock.emit(
        sink,
        "lower_program",
        &[("static_size", program.static_size() as u64)],
    );
    Ok(FrontArtifact {
        program,
        opt: options.opt,
        oracle: options.oracle,
        split: options.split,
    })
}

/// The machine-dependent back half: machine lint, pipeline scheduling with
/// its legality check, program lint, and final validation. Everything here
/// may run many times against one [`FrontArtifact`] — once per grid cell in
/// a sweep.
fn schedule_traced(
    mut program: Program,
    opt: OptLevel,
    oracle_kind: OracleKind,
    split: RegisterSplit,
    machine: &MachineConfig,
    verify: bool,
    sink: &mut Option<&mut dyn TraceSink>,
) -> Result<Program, CompileError> {
    let mut clock = PhaseClock::start();
    if verify {
        fail_on_errors(supersym_verify::lint_machine(machine))?;
        clock.emit(sink, "lint_machine", &[]);
    }
    if opt.scheduling() {
        let oracle = oracle_kind.as_loop_oracle();
        // The dependence census is the scheduler's input size under both
        // oracles; it is only worth computing when someone is listening.
        let census = if sink.is_some() {
            dependence_census(&program)
        } else {
            Default::default()
        };
        let unscheduled = (verify || sink.is_some()).then(|| program.clone());
        supersym_codegen::schedule_program_with(&mut program, machine, oracle);
        let moved = unscheduled
            .as_ref()
            .filter(|_| sink.is_some())
            .map_or(0, |before| moved_instructions(before, &program));
        clock.emit(
            sink,
            "schedule",
            &[
                ("regions", census.0),
                ("dep_edges_conservative", census.1),
                ("dep_edges_symbolic", census.2),
                ("moved_instructions", moved),
            ],
        );
        if verify {
            if let Some(before) = unscheduled {
                let violations = supersym_verify::check_schedule_with(&before, &program, oracle);
                fail_on_errors(violations.iter().map(|v| v.to_diagnostic()).collect())?;
                clock.emit(sink, "check_schedule", &[]);
            }
        }
    }
    if verify {
        // The split check needs the split the allocator actually used; it
        // is skipped when an override makes the machine's own split stale.
        let machine_for_lint = (split == machine.register_split()).then_some(machine);
        fail_on_errors(supersym_verify::lint_program(&program, machine_for_lint))?;
        clock.emit(sink, "lint_program", &[]);
    }
    // A scheduler bug that breaks a structural invariant (dangling label,
    // bad call target) must surface as a typed error, not a debug-only
    // assert: sweeps run release builds against arbitrary grid cells.
    program.validate().map_err(|e| {
        PipelineError::Verify(vec![Diagnostic::error(
            "post-validate",
            format!("scheduled program failed validation: {e}"),
        )])
    })?;
    Ok(program)
}

/// Promotes error-severity diagnostics to a [`PipelineError::Verify`];
/// warnings are dropped (compiled code is allowed to look suspicious, just
/// not to be wrong).
fn fail_on_errors(diagnostics: Vec<Diagnostic>) -> Result<(), CompileError> {
    let errors: Vec<Diagnostic> = diagnostics
        .into_iter()
        .filter(Diagnostic::is_error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(PipelineError::Verify(errors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersym_machine::presets;
    use supersym_sim::{simulate, SimOptions};

    const PROGRAM: &str = "
        global arr a[32];
        global var checksum;
        fn fill(int n) {
            for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
        }
        fn sum(int n) -> int {
            var s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
            return s;
        }
        fn main() -> int {
            fill(32);
            checksum = sum(32);
            return checksum;
        }";

    fn run(options: &CompileOptions) -> i64 {
        let program = compile(PROGRAM, options).unwrap();
        program.validate().unwrap();
        let mut exec =
            supersym_sim::Executor::new(&program, supersym_sim::ExecOptions::default()).unwrap();
        exec.run().unwrap();
        exec.int_reg(supersym_isa::IntReg::new(1).unwrap())
    }

    /// 32 terms of 3i+1: 3*(31*32/2) + 32 = 1520.
    const EXPECTED: i64 = 1520;

    #[test]
    fn all_opt_levels_agree() {
        let machine = presets::ideal_superscalar(4);
        for level in OptLevel::ALL {
            let result = run(&CompileOptions::new(level, &machine));
            assert_eq!(result, EXPECTED, "wrong checksum at {level}");
        }
    }

    #[test]
    fn unrolling_preserves_semantics() {
        let machine = presets::multititan();
        for factor in [2, 3, 4, 10] {
            for careful in [false, true] {
                let options = CompileOptions::new(OptLevel::O4, &machine)
                    .with_unroll(UnrollOptions { factor, careful });
                assert_eq!(run(&options), EXPECTED, "factor {factor} careful {careful}");
            }
        }
    }

    #[test]
    fn machines_do_not_change_results() {
        for machine in [
            presets::base(),
            presets::superpipelined(4),
            presets::cray1(),
            presets::superscalar_with_class_conflicts(4),
        ] {
            let result = run(&CompileOptions::new(OptLevel::O4, &machine));
            assert_eq!(result, EXPECTED, "machine {}", machine.name());
        }
    }

    #[test]
    fn optimization_reduces_work() {
        let machine = presets::base();
        let baseline = compile(PROGRAM, &CompileOptions::new(OptLevel::O0, &machine)).unwrap();
        let optimized = compile(PROGRAM, &CompileOptions::new(OptLevel::O4, &machine)).unwrap();
        let base_report = simulate(&baseline, &machine, SimOptions::default()).unwrap();
        let opt_report = simulate(&optimized, &machine, SimOptions::default()).unwrap();
        assert!(
            opt_report.instructions() < base_report.instructions(),
            "O4 {} vs O0 {}",
            opt_report.instructions(),
            base_report.instructions()
        );
    }

    #[test]
    fn scheduling_helps_on_latency_machine() {
        let machine = presets::multititan();
        let unscheduled = compile(PROGRAM, &CompileOptions::new(OptLevel::O0, &machine)).unwrap();
        let scheduled = compile(PROGRAM, &CompileOptions::new(OptLevel::O1, &machine)).unwrap();
        let a = simulate(&unscheduled, &machine, SimOptions::default()).unwrap();
        let b = simulate(&scheduled, &machine, SimOptions::default()).unwrap();
        // Same instruction stream, better order.
        assert_eq!(a.instructions(), b.instructions());
        assert!(b.base_cycles() <= a.base_cycles());
    }

    #[test]
    fn oracles_agree_on_results() {
        // The symbolic oracle may reorder more, never compute differently.
        let machine = presets::multititan();
        for kind in [OracleKind::Conservative, OracleKind::Symbolic] {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_oracle(kind);
            assert_eq!(run(&options), EXPECTED, "oracle {kind:?}");
        }
    }

    #[test]
    fn errors_are_reported() {
        let machine = presets::base();
        let err = compile(
            "fn main() { x = 1; }",
            &CompileOptions::new(OptLevel::O0, &machine),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Check(_)));
        assert!(err.to_string().contains("check error"));
        assert_eq!(err.exit_code(), 2);

        let err = compile("fn main( {", &CompileOptions::new(OptLevel::O0, &machine)).unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
    }

    #[test]
    fn undersized_split_is_typed_error() {
        let machine = presets::base();
        let split = supersym_machine::RegisterSplit {
            int_temps: 2,
            int_globals: 0,
            fp_temps: 2,
            fp_globals: 0,
        };
        let err = compile(
            "fn main() -> int { return 1 + 2 * 3; }",
            &CompileOptions::new(OptLevel::O4, &machine).with_split(split),
        )
        .unwrap_err();
        assert!(
            matches!(err, PipelineError::RegisterSplit { .. }),
            "got {err}"
        );
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn certification_covers_the_whole_pipeline() {
        let machine = presets::multititan();
        let options = CompileOptions::new(OptLevel::O4, &machine).with_unroll(UnrollOptions {
            factor: 2,
            careful: true,
        });
        let (program, certificates) = compile_certified(PROGRAM, &options).unwrap();
        assert!(program.static_size() > 0);
        assert!(!certificates.is_empty(), "passes must have run");
        for cert in &certificates {
            assert!(cert.is_certified(), "{cert:?}");
        }
        // Certification must not change the output program.
        let plain = compile(PROGRAM, &options).unwrap();
        assert_eq!(plain, program);
    }

    #[test]
    fn rules_ablation_preserves_results() {
        let machine = presets::base();
        for rules in [true, false] {
            let options = CompileOptions::new(OptLevel::O4, &machine).with_rules(rules);
            assert_eq!(run(&options), EXPECTED, "rules {rules}");
        }
    }

    #[test]
    fn trace_records_the_pipeline_phases() {
        let machine = presets::multititan();
        let options = CompileOptions::new(OptLevel::O4, &machine)
            .with_unroll(UnrollOptions {
                factor: 2,
                careful: true,
            })
            .with_verify(true);
        let mut sink = supersym_trace::MemorySink::default();
        let program = compile_with_trace(PROGRAM, &options, &mut sink).unwrap();
        assert!(program.static_size() > 0);
        let names: Vec<&str> = sink.phases.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "parse",
            "check",
            "unroll",
            "lower",
            "opt_local",
            "opt_global",
            "reassociate",
            "sharpen_origins",
            "regalloc",
            "lower_program",
            "schedule",
            "lint_program",
        ] {
            assert!(
                names.contains(&expected),
                "missing phase {expected}: {names:?}"
            );
        }
        // Phases arrive in pipeline order.
        let parse = names.iter().position(|n| *n == "parse").unwrap();
        let schedule = names.iter().position(|n| *n == "schedule").unwrap();
        assert!(parse < schedule);
        // The schedule phase carries the scheduler's input size.
        let schedule_phase = &sink.phases[schedule];
        let counter = |key: &str| {
            schedule_phase
                .counters
                .iter()
                .find(|(k, _)| k.as_str() == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(counter("regions") > 0);
        assert!(counter("dep_edges_conservative") >= counter("dep_edges_symbolic"));
        assert!(counter("moved_instructions") > 0);
    }

    #[test]
    fn trace_free_compilation_is_identical() {
        let machine = presets::multititan();
        let options = CompileOptions::new(OptLevel::O4, &machine);
        let mut sink = supersym_trace::MemorySink::default();
        let plain = compile(PROGRAM, &options).unwrap();
        let traced = compile_with_trace(PROGRAM, &options, &mut sink).unwrap();
        assert_eq!(plain, traced, "tracing must not change the output program");
    }

    #[test]
    fn front_plus_schedule_equals_compile() {
        // The sweep engine's compile-once/schedule-many contract: splitting
        // the pipeline at the scheduling boundary is invisible.
        for machine in [
            presets::base(),
            presets::multititan(),
            presets::superscalar_with_class_conflicts(4),
        ] {
            for level in [OptLevel::O0, OptLevel::O1, OptLevel::O4] {
                let options = CompileOptions::new(level, &machine).with_verify(true);
                let whole = compile(PROGRAM, &options).unwrap();
                let artifact = compile_front(PROGRAM, &options).unwrap();
                let split = artifact.schedule_for(&machine, true).unwrap();
                assert_eq!(whole, split, "machine {} level {level}", machine.name());
            }
        }
    }

    #[test]
    fn front_artifact_fingerprint_is_machine_independent() {
        let options_a = CompileOptions::new(OptLevel::O4, &presets::base());
        let options_b = CompileOptions::new(OptLevel::O4, &presets::multititan());
        let a = compile_front(PROGRAM, &options_a).unwrap();
        let b = compile_front(PROGRAM, &options_b).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = compile_front("fn main() -> int { return 7; }", &options_a).unwrap();
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn opt_level_ladder() {
        assert!(!OptLevel::O0.scheduling());
        assert!(OptLevel::O1.scheduling());
        assert!(!OptLevel::O1.local());
        assert!(OptLevel::O2.local());
        assert!(!OptLevel::O2.global());
        assert!(OptLevel::O3.global());
        assert!(!OptLevel::O3.global_regs());
        assert!(OptLevel::O4.global_regs());
    }
}
