//! The real pipeline plugged into the torture harness.
//!
//! `supersym-torture` owns the mutators and the campaign driver but knows
//! nothing about this crate; the dependency arrow points here. This module
//! supplies the missing half: a [`Subject`] that runs each fabricated
//! input through the genuine pipeline — compile, verify, simulate — with
//! every budget pinned to a finite, deterministic value, and maps the
//! [`PipelineError`] taxonomy onto the harness's [`Stage`] tags.

use crate::error::PipelineError;
use crate::{compile, compile_ast, CompileOptions, OptLevel};
use supersym_machine::{parse_machine_spec, presets, GridSpec, MachineConfig};
use supersym_sim::{simulate, ExecOptions, SimOptions, SimReport};
use supersym_torture::{
    replay_corpus, run_campaign, CampaignConfig, CampaignReport, Input, Stage, Subject, Verdict,
};

/// The fixed workload compiled under every mutated machine description:
/// small enough to compile in microseconds, loopy enough to exercise the
/// scheduler against whatever latencies and unit tables the mutant claims.
const MACHINE_PROBE: &str = "
    global arr data[16];
    fn main() -> int {
        var sum = 0;
        for (i = 0; i < 16; i = i + 1) { data[i] = i * 3 - 7; }
        for (i = 0; i < 16; i = i + 1) { sum = sum + data[i]; }
        return sum;
    }";

/// Maps a pipeline error onto the harness's stage tag.
fn stage_of(error: &PipelineError) -> Stage {
    match error {
        PipelineError::Parse(_) => Stage::Parse,
        PipelineError::Check(_) => Stage::Check,
        PipelineError::Lower(_) => Stage::Lower,
        PipelineError::Ir(_) => Stage::Ir,
        PipelineError::Machine(_) => Stage::Machine,
        PipelineError::RegisterSplit { .. } => Stage::Split,
        PipelineError::Verify(_) | PipelineError::Certify(_) => Stage::Verify,
        PipelineError::Sim(_) => Stage::Sim,
    }
}

fn reject(stage: Stage, error: &dyn std::fmt::Display) -> Verdict {
    Verdict::Rejected {
        stage,
        message: error.to_string(),
    }
}

/// Everything observable from one accepted run, folded into a string the
/// campaign driver compares across runs: the scheduled code itself plus
/// the simulator's counters. Any nondeterminism in scheduling, register
/// assignment or execution shows up as a fingerprint mismatch.
fn fingerprint(program: &supersym_isa::Program, report: &SimReport) -> String {
    format!(
        "{program}\n--\nmachine={} instructions={} machine_cycles={} base_cycles={:?} census={:?}",
        report.machine(),
        report.instructions(),
        report.machine_cycles(),
        report.base_cycles(),
        report.census()
    )
}

/// The supersym pipeline as a torture subject.
///
/// All budgets are finite and deterministic — the harness's `catch_unwind`
/// backstop can convert a panic into a report line but not a hang, so the
/// simulator runs under a hard step limit, a shallow call-stack limit and
/// a small memory, and the compiler's own recursion/latency guards do the
/// rest.
pub struct PipelineSubject {
    machine: MachineConfig,
    options: CompileOptions,
    sim: SimOptions,
}

impl PipelineSubject {
    /// A subject compiling at the given level for the given machine, with
    /// verification forced on (the scheduler/checker agreement *is* part
    /// of the contract under test).
    #[must_use]
    pub fn new(opt: OptLevel, machine: &MachineConfig) -> Self {
        let mut options = CompileOptions::new(opt, machine);
        options.verify = true;
        PipelineSubject {
            machine: machine.clone(),
            options,
            sim: SimOptions {
                exec: ExecOptions {
                    memory_words: 1 << 16,
                    max_call_depth: 128,
                    max_steps: 200_000,
                },
                ..SimOptions::default()
            },
        }
    }

    fn run_source(&self, text: &str) -> Verdict {
        match compile(text, &self.options) {
            Ok(program) => self.run_program(&program, &self.machine),
            Err(e) => reject(stage_of(&e), &e),
        }
    }

    fn run_ast(&self, module: &supersym_lang::ast::Module) -> Verdict {
        // Mirror the driver contract for tree-transforming callers:
        // `compile_ast` requires a *checked* module, so check first and
        // let ill-typed mutants die there, typed.
        if let Err(e) = supersym_lang::check(module) {
            return reject(Stage::Check, &e);
        }
        match compile_ast(module.clone(), &self.options) {
            Ok(program) => self.run_program(&program, &self.machine),
            Err(e) => reject(stage_of(&e), &e),
        }
    }

    fn run_asm(&self, text: &str) -> Verdict {
        let program = match supersym_isa::parse_program(text) {
            Ok(program) => program,
            Err(e) => return reject(Stage::Parse, &e),
        };
        if let Err(e) = program.validate() {
            return reject(Stage::Verify, &e);
        }
        let diagnostics = supersym_verify::lint_program(&program, Some(&self.machine));
        if supersym_isa::error_count(&diagnostics) > 0 {
            return reject(Stage::Verify, &PipelineError::Verify(diagnostics));
        }
        self.run_program(&program, &self.machine)
    }

    fn run_machine(&self, text: &str) -> Verdict {
        let spec = match parse_machine_spec(text) {
            Ok(spec) => spec,
            Err(e) => return reject(Stage::Machine, &e),
        };
        let diagnostics = spec.diagnose();
        if supersym_isa::error_count(&diagnostics) > 0 {
            return reject(Stage::Verify, &PipelineError::Verify(diagnostics));
        }
        let machine = match spec.build() {
            Ok(machine) => machine,
            Err(e) => return reject(Stage::Machine, &e),
        };
        let mut options = CompileOptions::new(self.options.opt, &machine);
        options.verify = true;
        match compile(MACHINE_PROBE, &options) {
            Ok(program) => self.run_program(&program, &machine),
            Err(e) => reject(stage_of(&e), &e),
        }
    }

    fn run_grid(&self, text: &str) -> Verdict {
        // Cells that survive parsing are preset-shaped by construction,
        // so probing every cell of a big grid buys nothing; lint them all
        // (cheap) and run the probe workload on a bounded sample.
        const PROBE_CELLS: usize = 4;
        let grid = match GridSpec::parse(text) {
            Ok(grid) => grid,
            Err(e) => return reject(Stage::Machine, &e),
        };
        let cells = grid.cells();
        let mut fingerprints = vec![grid.canonical()];
        for cell in &cells {
            let machine = cell.config();
            let diagnostics = supersym_verify::lint_machine(&machine);
            if supersym_isa::error_count(&diagnostics) > 0 {
                return reject(Stage::Verify, &PipelineError::Verify(diagnostics));
            }
            fingerprints.push(format!("{}={:016x}", cell.name(), machine.fingerprint()));
        }
        let step = (cells.len() / PROBE_CELLS).max(1);
        for cell in cells.iter().step_by(step).take(PROBE_CELLS) {
            let machine = cell.config();
            let mut options = CompileOptions::new(self.options.opt, &machine);
            options.verify = true;
            match compile(MACHINE_PROBE, &options) {
                Ok(program) => match self.run_program(&program, &machine) {
                    Verdict::Ok { fingerprint } => fingerprints.push(fingerprint),
                    rejected => return rejected,
                },
                Err(e) => return reject(stage_of(&e), &e),
            }
        }
        Verdict::Ok {
            fingerprint: fingerprints.join("\n--\n"),
        }
    }

    fn run_program(&self, program: &supersym_isa::Program, machine: &MachineConfig) -> Verdict {
        match simulate(program, machine, self.sim) {
            Ok(report) => Verdict::Ok {
                fingerprint: fingerprint(program, &report),
            },
            Err(e) => reject(Stage::Sim, &e),
        }
    }
}

impl Default for PipelineSubject {
    fn default() -> Self {
        PipelineSubject::new(OptLevel::O4, &presets::ideal_superscalar(4))
    }
}

impl Subject for PipelineSubject {
    fn run(&self, input: &Input) -> Verdict {
        match input {
            Input::Source(text) => self.run_source(text),
            Input::Ast(module) => self.run_ast(module),
            Input::Asm(text) => self.run_asm(text),
            Input::Machine(text) => self.run_machine(text),
            Input::Grid(text) => self.run_grid(text),
        }
    }
}

/// Compiles the small workload suite to scheduled assembly, for use as
/// instruction-stream mutation seeds: corrupting *real* schedules probes
/// the verifier and executor far harder than hand-written snippets.
#[must_use]
pub fn compiled_asm_seeds(subject: &PipelineSubject) -> Vec<String> {
    supersym_workloads::suite(supersym_workloads::Size::Small)
        .iter()
        .filter_map(|w| compile(&w.source, &subject.options).ok())
        .map(|p| p.to_string())
        .collect()
}

/// Runs a full campaign against the real pipeline: the default subject,
/// compiled-workload assembly seeds, quiet panic hook (this is the
/// driver-binary entry point; tests build their own configs).
#[must_use]
pub fn run_torture(seed: u64, iters: u64, layers: Vec<supersym_torture::Layer>) -> CampaignReport {
    let subject = PipelineSubject::default();
    let mut config = CampaignConfig::new(seed, iters);
    config.layers = layers;
    config.extra_asm_seeds = compiled_asm_seeds(&subject);
    config.quiet = true;
    run_campaign(&subject, &config)
}

/// Replays a crash corpus directory against the real pipeline.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn replay_torture_corpus(dir: &std::path::Path) -> std::io::Result<CampaignReport> {
    replay_corpus(&PipelineSubject::default(), dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_path_accepts_good_programs() {
        let subject = PipelineSubject::default();
        let verdict = subject.run(&Input::Source(MACHINE_PROBE.to_string()));
        assert!(matches!(verdict, Verdict::Ok { .. }), "{verdict:?}");
    }

    #[test]
    fn source_path_rejects_garbage_typed() {
        let subject = PipelineSubject::default();
        let verdict = subject.run(&Input::Source("fn fn fn %%%".to_string()));
        assert!(
            matches!(
                verdict,
                Verdict::Rejected {
                    stage: Stage::Parse,
                    ..
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn machine_path_accepts_a_valid_spec() {
        let spec = "name probe\nissue_width 2\npipe_degree 1\n";
        let subject = PipelineSubject::default();
        let verdict = subject.run(&Input::Machine(spec.to_string()));
        assert!(matches!(verdict, Verdict::Ok { .. }), "{verdict:?}");
    }

    #[test]
    fn asm_path_rejects_unparseable_text_typed() {
        let subject = PipelineSubject::default();
        let verdict = subject.run(&Input::Asm("frobnicate r1, r2".to_string()));
        assert!(
            matches!(
                verdict,
                Verdict::Rejected {
                    stage: Stage::Parse,
                    ..
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn grid_path_accepts_a_valid_spec() {
        let subject = PipelineSubject::default();
        let verdict = subject.run(&Input::Grid("issue=1,2 pipe=1,2 lat=unit".to_string()));
        assert!(matches!(verdict, Verdict::Ok { .. }), "{verdict:?}");
    }

    #[test]
    fn grid_path_rejects_oversized_and_garbage_typed() {
        let subject = PipelineSubject::default();
        for bad in [
            "issue=1..64 pipe=1..16 lat=unit,titan,cray fu=ideal,shared",
            "issue=bogus",
        ] {
            let verdict = subject.run(&Input::Grid(bad.to_string()));
            assert!(
                matches!(
                    verdict,
                    Verdict::Rejected {
                        stage: Stage::Machine,
                        ..
                    }
                ),
                "{bad}: {verdict:?}"
            );
        }
    }

    #[test]
    fn verdicts_are_deterministic() {
        let subject = PipelineSubject::default();
        for input in [
            Input::Source(MACHINE_PROBE.to_string()),
            Input::Machine("name probe\nissue_width 2\npipe_degree 1\n".to_string()),
        ] {
            let a = subject.run(&input);
            let b = subject.run(&input);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn compiled_seeds_exist() {
        let seeds = compiled_asm_seeds(&PipelineSubject::default());
        assert!(!seeds.is_empty());
        for seed in &seeds {
            supersym_isa::parse_program(seed).expect("compiled seed reparses");
        }
    }
}
