//! A small assembler for building functions by hand.
//!
//! Used by tests, examples, and the taxonomy experiments (the paper's Figure
//! 1-1 code fragments and the Figure 4-2 startup-transient block are
//! hand-assembled with this builder).

use crate::instr::{FpCmpOp, FpOp, Instr, IntOp, MemAlias, Operand};
use crate::program::{FuncId, Function, Label, Program};
use crate::reg::{FpReg, IntReg};

const UNBOUND: usize = usize::MAX;

/// Incrementally assembles one [`Function`].
///
/// ```
/// use supersym_isa::{AsmBuilder, IntReg};
/// let mut asm = AsmBuilder::new("loop");
/// let r1 = IntReg::new(1)?;
/// let top = asm.new_label();
/// asm.movi(r1, 10);
/// asm.bind(top);
/// asm.sub(r1, r1, 1.into());
/// asm.cmp_gt(IntReg::AT, r1, 0.into());
/// asm.br_true(IntReg::AT, top);
/// asm.halt();
/// let function = asm.finish();
/// assert!(function.validate().is_ok());
/// # Ok::<(), supersym_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsmBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<usize>,
}

impl AsmBuilder {
    /// Starts assembling a function called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AsmBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let slot = self.labels.len() as u32;
        self.labels.push(UNBOUND);
        Label::new(slot)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = label.slot() as usize;
        assert_eq!(self.labels[slot], UNBOUND, "label bound twice");
        self.labels[slot] = self.instrs.len();
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Emits an arbitrary integer ALU operation.
    pub fn int_op(&mut self, op: IntOp, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.emit(Instr::IntOp { op, dst, lhs, rhs })
    }

    /// Emits `add dst, lhs, rhs`.
    pub fn add(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::Add, dst, lhs, rhs)
    }

    /// Emits `sub dst, lhs, rhs`.
    pub fn sub(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::Sub, dst, lhs, rhs)
    }

    /// Emits `mul dst, lhs, rhs`.
    pub fn mul(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::Mul, dst, lhs, rhs)
    }

    /// Emits `and dst, lhs, rhs`.
    pub fn and(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::And, dst, lhs, rhs)
    }

    /// Emits `or dst, lhs, rhs`.
    pub fn or(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::Or, dst, lhs, rhs)
    }

    /// Emits `sll dst, lhs, rhs`.
    pub fn sll(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::Sll, dst, lhs, rhs)
    }

    /// Emits `cmpgt dst, lhs, rhs`.
    pub fn cmp_gt(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::CmpGt, dst, lhs, rhs)
    }

    /// Emits `cmplt dst, lhs, rhs`.
    pub fn cmp_lt(&mut self, dst: IntReg, lhs: IntReg, rhs: Operand) -> &mut Self {
        self.int_op(IntOp::CmpLt, dst, lhs, rhs)
    }

    /// Emits `movi dst, #imm`.
    pub fn movi(&mut self, dst: IntReg, imm: i64) -> &mut Self {
        self.emit(Instr::MovI { dst, imm })
    }

    /// Emits an FP operation `dst <- lhs op rhs`.
    pub fn fp_op(&mut self, op: FpOp, dst: FpReg, lhs: FpReg, rhs: FpReg) -> &mut Self {
        self.emit(Instr::FpOp { op, dst, lhs, rhs })
    }

    /// Emits `fadd dst, lhs, rhs`.
    pub fn fadd(&mut self, dst: FpReg, lhs: FpReg, rhs: FpReg) -> &mut Self {
        self.fp_op(FpOp::FAdd, dst, lhs, rhs)
    }

    /// Emits `fmul dst, lhs, rhs`.
    pub fn fmul(&mut self, dst: FpReg, lhs: FpReg, rhs: FpReg) -> &mut Self {
        self.fp_op(FpOp::FMul, dst, lhs, rhs)
    }

    /// Emits an FP comparison into an integer register.
    pub fn fp_cmp(&mut self, op: FpCmpOp, dst: IntReg, lhs: FpReg, rhs: FpReg) -> &mut Self {
        self.emit(Instr::FpCmp { op, dst, lhs, rhs })
    }

    /// Emits `movf dst, #imm`.
    pub fn movf(&mut self, dst: FpReg, imm: f64) -> &mut Self {
        self.emit(Instr::MovF { dst, imm })
    }

    /// Emits `ld dst, offset(base)` with an unknown alias annotation.
    pub fn load(&mut self, dst: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::Load {
            dst,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits `ldf dst, offset(base)` with an unknown alias annotation.
    pub fn loadf(&mut self, dst: FpReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::LoadF {
            dst,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits `st offset(base), src` with an unknown alias annotation.
    pub fn store(&mut self, src: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::Store {
            src,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits `stf offset(base), src` with an unknown alias annotation.
    pub fn storef(&mut self, src: FpReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::StoreF {
            src,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits `setvl src`.
    pub fn setvl(&mut self, src: IntReg) -> &mut Self {
        self.emit(Instr::SetVl { src })
    }

    /// Emits `vld dst, offset(base)` with an unknown alias annotation.
    pub fn vload(&mut self, dst: crate::VecReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::VLoad {
            dst,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits `vst offset(base), src` with an unknown alias annotation.
    pub fn vstore(&mut self, src: crate::VecReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Instr::VStore {
            src,
            base,
            offset,
            alias: MemAlias::unknown(),
        })
    }

    /// Emits an elementwise vector operation.
    pub fn vop(
        &mut self,
        op: FpOp,
        dst: crate::VecReg,
        lhs: crate::VecReg,
        rhs: crate::VecReg,
    ) -> &mut Self {
        self.emit(Instr::VOp { op, dst, lhs, rhs })
    }

    /// Emits a vector-scalar operation.
    pub fn vop_s(
        &mut self,
        op: FpOp,
        dst: crate::VecReg,
        lhs: crate::VecReg,
        scalar: FpReg,
    ) -> &mut Self {
        self.emit(Instr::VOpS {
            op,
            dst,
            lhs,
            scalar,
        })
    }

    /// Emits `bt cond, target` (branch when the condition is non-zero).
    pub fn br_true(&mut self, cond: IntReg, target: Label) -> &mut Self {
        self.emit(Instr::Br {
            cond,
            expect: true,
            target,
        })
    }

    /// Emits `bf cond, target` (branch when the condition is zero).
    pub fn br_false(&mut self, cond: IntReg, target: Label) -> &mut Self {
        self.emit(Instr::Br {
            cond,
            expect: false,
            target,
        })
    }

    /// Emits `jmp target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::Jmp { target })
    }

    /// Emits `call target`.
    pub fn call(&mut self, target: FuncId) -> &mut Self {
        self.emit(Instr::Call { target })
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any allocated label was never bound.
    #[must_use]
    pub fn finish(self) -> Function {
        assert!(
            self.labels.iter().all(|&t| t != UNBOUND),
            "unbound label in function `{}`",
            self.name
        );
        Function::new(self.name, self.instrs, self.labels)
    }

    /// Finishes the function and wraps it as a single-function program with
    /// this function as the entry point.
    #[must_use]
    pub fn finish_program(self) -> Program {
        let mut program = Program::new();
        let id = program.add_function(self.finish());
        program.set_entry(id);
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn build_straightline() {
        let mut asm = AsmBuilder::new("f");
        asm.movi(r(1), 5).add(r(2), r(1), Operand::Imm(1)).halt();
        let program = asm.finish_program();
        assert!(program.validate().is_ok());
        assert_eq!(program.static_size(), 3);
    }

    #[test]
    fn build_loop_labels_resolve() {
        let mut asm = AsmBuilder::new("f");
        let top = asm.new_label();
        asm.movi(r(1), 3);
        asm.bind(top);
        asm.sub(r(1), r(1), Operand::Imm(1));
        asm.cmp_gt(r(2), r(1), Operand::Imm(0));
        asm.br_true(r(2), top);
        asm.halt();
        let function = asm.finish();
        assert_eq!(function.resolve(top), 1);
        assert!(function.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut asm = AsmBuilder::new("f");
        let label = asm.new_label();
        asm.jmp(label);
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = AsmBuilder::new("f");
        let label = asm.new_label();
        asm.bind(label);
        asm.bind(label);
    }

    #[test]
    fn builder_len() {
        let mut asm = AsmBuilder::new("f");
        assert!(asm.is_empty());
        asm.halt();
        assert_eq!(asm.len(), 1);
    }
}
