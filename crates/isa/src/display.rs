//! Disassembly: `Display` implementations for instructions and programs.

use crate::instr::{Instr, Operand};
use crate::program::{Function, Program};
use std::fmt;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::IntOp { op, dst, lhs, rhs } => {
                write!(f, "{} {dst}, {lhs}, {rhs}", op.mnemonic())
            }
            Instr::MovI { dst, imm } => write!(f, "movi {dst}, #{imm}"),
            Instr::FpOp { op, dst, lhs, rhs } => {
                write!(f, "{} {dst}, {lhs}, {rhs}", op.mnemonic())
            }
            Instr::FpCmp { op, dst, lhs, rhs } => {
                write!(f, "{} {dst}, {lhs}, {rhs}", op.mnemonic())
            }
            Instr::MovF { dst, imm } => write!(f, "movf {dst}, #{imm}"),
            Instr::FMov { dst, src } => write!(f, "fmov {dst}, {src}"),
            Instr::IToF { dst, src } => write!(f, "itof {dst}, {src}"),
            Instr::FToI { dst, src } => write!(f, "ftoi {dst}, {src}"),
            Instr::Load {
                dst, base, offset, ..
            } => write!(f, "ld {dst}, {offset}({base})"),
            Instr::LoadF {
                dst, base, offset, ..
            } => write!(f, "ldf {dst}, {offset}({base})"),
            Instr::Store {
                src, base, offset, ..
            } => write!(f, "st {offset}({base}), {src}"),
            Instr::StoreF {
                src, base, offset, ..
            } => write!(f, "stf {offset}({base}), {src}"),
            Instr::SetVl { src } => write!(f, "setvl {src}"),
            Instr::VLoad {
                dst, base, offset, ..
            } => write!(f, "vld {dst}, {offset}({base})"),
            Instr::VStore {
                src, base, offset, ..
            } => write!(f, "vst {offset}({base}), {src}"),
            Instr::VOp { op, dst, lhs, rhs } => {
                write!(f, "v{} {dst}, {lhs}, {rhs}", op.mnemonic())
            }
            Instr::VOpS {
                op,
                dst,
                lhs,
                scalar,
            } => {
                write!(f, "v{}.s {dst}, {lhs}, {scalar}", op.mnemonic())
            }
            Instr::Br {
                cond,
                expect,
                target,
            } => {
                let mnemonic = if *expect { "bt" } else { "bf" };
                write!(f, "{mnemonic} {cond}, {target}")
            }
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Call { target } => write!(f, "call {target}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name())?;
        for (index, instr) in self.instrs().iter().enumerate() {
            for (slot, &target) in self.label_targets().iter().enumerate() {
                if target == index {
                    writeln!(f, "  L{slot}:")?;
                }
            }
            writeln!(f, "    {index:4}  {instr}")?;
        }
        for (slot, &target) in self.label_targets().iter().enumerate() {
            if target == self.instrs().len() {
                writeln!(f, "  L{slot}: <end>")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for function in self.functions() {
            function.fmt(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::instr::{FpOp, Instr, IntOp, MemAlias, Operand};
    use crate::program::Label;
    use crate::reg::{FpReg, IntReg};

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }

    #[test]
    fn int_op_display() {
        let add = Instr::IntOp {
            op: IntOp::Add,
            dst: r(3),
            lhs: r(1),
            rhs: Operand::Imm(7),
        };
        assert_eq!(add.to_string(), "add r3, r1, #7");
    }

    #[test]
    fn memory_display() {
        let ld = Instr::Load {
            dst: r(2),
            base: r(5),
            offset: -4,
            alias: MemAlias::unknown(),
        };
        assert_eq!(ld.to_string(), "ld r2, -4(r5)");
        let st = Instr::Store {
            src: r(2),
            base: r(5),
            offset: 8,
            alias: MemAlias::unknown(),
        };
        assert_eq!(st.to_string(), "st 8(r5), r2");
    }

    #[test]
    fn branch_display() {
        let br = Instr::Br {
            cond: r(1),
            expect: false,
            target: Label::new(3),
        };
        assert_eq!(br.to_string(), "bf r1, L3");
    }

    #[test]
    fn fp_display() {
        let f1 = FpReg::new(1).unwrap();
        let f2 = FpReg::new(2).unwrap();
        let mul = Instr::FpOp {
            op: FpOp::FMul,
            dst: f1,
            lhs: f1,
            rhs: f2,
        };
        assert_eq!(mul.to_string(), "fmul f1, f1, f2");
    }
}
