//! Vector-unit extension (§2.6 of the paper).
//!
//! "Each of these machines could have an attached vector unit" — this
//! module is that unit: eight vector registers of up to [`MAX_VLEN`]
//! double-precision elements, a vector-length register, unit-stride memory
//! operations, and chained element-per-cycle arithmetic. It exists to test
//! §2.3's equivalence claim: "A superscalar machine can attain the same
//! performance as a machine with vector hardware."

use crate::IsaError;
use std::fmt;

/// Number of vector registers.
pub const NUM_VEC_REGS: usize = 8;
/// Maximum vector length (elements per vector register).
pub const MAX_VLEN: usize = 64;

/// A vector register, `v0`..`v7`.
///
/// ```
/// use supersym_isa::VecReg;
/// assert_eq!(VecReg::new(3)?.index(), 3);
/// assert!(VecReg::new(8).is_err());
/// # Ok::<(), supersym_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VecReg(u8);

impl VecReg {
    /// Creates a vector register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `index >= NUM_VEC_REGS`.
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if (index as usize) < NUM_VEC_REGS {
            Ok(VecReg(index))
        } else {
            Err(IsaError::RegisterOutOfRange(index))
        }
    }

    /// Creates a register without bounds checking in release builds.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `index` is out of range.
    #[must_use]
    pub fn new_unchecked(index: u8) -> Self {
        debug_assert!((index as usize) < NUM_VEC_REGS);
        VecReg(index)
    }

    /// The register's index, `0..NUM_VEC_REGS`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VecReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds() {
        assert!(VecReg::new(0).is_ok());
        assert!(VecReg::new(7).is_ok());
        assert!(VecReg::new(8).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(VecReg::new(5).unwrap().to_string(), "v5");
    }
}
