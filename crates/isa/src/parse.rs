//! An assembly-text parser, the inverse of the `Display` disassembly.
//!
//! The grammar is exactly what [`crate::Program`]'s `Display` prints, so
//! `parse_program(program.to_string())` round-trips. It exists so the
//! verification layer can lint hand-written (including deliberately broken)
//! programs: `titalc lint broken.s` needs a way to get malformed input past
//! the compiler, which only ever emits well-formed code.
//!
//! Syntax notes beyond the disassembly format:
//!
//! * `//` and `;` start comments running to end of line;
//! * a leading integer on an instruction line (the disassembler's
//!   instruction index) is skipped;
//! * a line ending in `:` opens a new function, except `L<n>:` which binds
//!   label slot `n` to the next instruction (and `L<n>: <end>` to one past
//!   the last);
//! * a label slot that is referenced but never bound parses successfully
//!   with an out-of-range target, so the program lint can report it as a
//!   dangling label rather than the parser rejecting the file;
//! * loads and stores carry [`MemAlias::unknown`], the conservative verdict,
//!   since the text form has no alias annotation.
//!
//! ```
//! use supersym_isa::parse_program;
//! let program = parse_program("main:\n  movi r1, #42\n  halt\n").unwrap();
//! assert_eq!(program.functions()[0].instrs().len(), 2);
//! ```

use crate::instr::{FpCmpOp, FpOp, Instr, IntOp, MemAlias, Operand};
use crate::program::{FuncId, Function, Label, Program};
use crate::reg::{FpReg, IntReg};
use crate::vector::VecReg;
use std::error::Error;
use std::fmt;

/// The sentinel target for a label slot that was referenced but never
/// bound. It is larger than any function, so [`Function::validate`] and the
/// program lint report it as dangling.
pub const UNBOUND_LABEL: usize = usize::MAX;

/// A syntax error in assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Parses a whole program from assembly text.
///
/// The entry point is the function named `main` when present, otherwise the
/// first function.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending line. Semantic
/// problems (dangling labels, out-of-range call targets) are *not* parse
/// errors — they parse into a program the lint then rejects.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    // (name, instrs, label_targets) of the function being assembled.
    let mut current: Option<(String, Vec<Instr>, Vec<usize>)> = None;

    let finish = |program: &mut Program, current: &mut Option<(String, Vec<Instr>, Vec<usize>)>| {
        if let Some((name, instrs, labels)) = current.take() {
            program.add_function(Function::new(name, instrs, labels));
        }
    };

    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let err = |message: String| ParseError {
            line: line_no,
            message,
        };
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_suffix(':') {
            if let Some(slot) = label_slot(rest) {
                let (_, instrs, labels) = current
                    .as_mut()
                    .ok_or_else(|| err(format!("label L{slot} outside any function")))?;
                bind_label(labels, slot, instrs.len());
            } else {
                finish(&mut program, &mut current);
                current = Some((rest.trim().to_string(), Vec::new(), Vec::new()));
            }
            continue;
        }
        // `L<n>: <end>` — an end label with trailing annotation.
        if let Some((head, tail)) = line.split_once(':') {
            if let Some(slot) = label_slot(head) {
                if tail.trim() == "<end>" || tail.trim().is_empty() {
                    let (_, instrs, labels) = current
                        .as_mut()
                        .ok_or_else(|| err(format!("label L{slot} outside any function")))?;
                    bind_label(labels, slot, instrs.len());
                    continue;
                }
            }
        }
        let (_, instrs, labels) = current
            .as_mut()
            .ok_or_else(|| err("instruction outside any function".to_string()))?;
        let instr = parse_instr(line).map_err(err)?;
        // Make sure referenced label slots exist (possibly unbound).
        if let Instr::Br { target, .. } | Instr::Jmp { target } = &instr {
            reserve_label(labels, target.slot() as usize);
        }
        instrs.push(instr);
    }
    finish(&mut program, &mut current);

    let entry = program
        .function_by_name("main")
        .map(|(id, _)| id)
        .or_else(|| (!program.functions().is_empty()).then(|| FuncId::new(0)));
    if let Some(id) = entry {
        program.set_entry(id);
    }
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    let end = line
        .find("//")
        .into_iter()
        .chain(line.find(';'))
        .min()
        .unwrap_or(line.len());
    &line[..end]
}

/// `L<digits>` → the slot number.
fn label_slot(token: &str) -> Option<usize> {
    let digits = token.trim().strip_prefix('L')?;
    (!digits.is_empty()).then_some(())?;
    digits.parse().ok()
}

fn reserve_label(labels: &mut Vec<usize>, slot: usize) {
    if labels.len() <= slot {
        labels.resize(slot + 1, UNBOUND_LABEL);
    }
}

fn bind_label(labels: &mut Vec<usize>, slot: usize, target: usize) {
    reserve_label(labels, slot);
    labels[slot] = target;
}

/// Splits an instruction line into mnemonic + comma/space-separated operand
/// tokens, dropping a leading disassembler index if present.
fn tokenize(line: &str) -> Vec<&str> {
    let mut tokens: Vec<&str> = line
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.len() > 1 && tokens[0].chars().all(|c| c.is_ascii_digit()) {
        tokens.remove(0);
    }
    tokens
}

fn int_reg(token: &str) -> Result<IntReg, String> {
    let index: u8 = token
        .strip_prefix('r')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("expected integer register, got `{token}`"))?;
    IntReg::new(index).map_err(|e| e.to_string())
}

fn fp_reg(token: &str) -> Result<FpReg, String> {
    let index: u8 = token
        .strip_prefix('f')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("expected FP register, got `{token}`"))?;
    FpReg::new(index).map_err(|e| e.to_string())
}

fn vec_reg(token: &str) -> Result<VecReg, String> {
    let index: u8 = token
        .strip_prefix('v')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("expected vector register, got `{token}`"))?;
    VecReg::new(index).map_err(|e| e.to_string())
}

fn imm_i64(token: &str) -> Result<i64, String> {
    token
        .strip_prefix('#')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("expected immediate like `#5`, got `{token}`"))
}

fn imm_f64(token: &str) -> Result<f64, String> {
    token
        .strip_prefix('#')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("expected FP immediate like `#2.5`, got `{token}`"))
}

fn operand(token: &str) -> Result<Operand, String> {
    if token.starts_with('#') {
        Ok(Operand::Imm(imm_i64(token)?))
    } else {
        Ok(Operand::Reg(int_reg(token)?))
    }
}

fn label(token: &str) -> Result<Label, String> {
    label_slot(token)
        .map(|slot| Label::new(slot as u32))
        .ok_or_else(|| format!("expected label like `L2`, got `{token}`"))
}

/// `offset(rN)` → `(offset, base)`.
fn mem_operand(token: &str) -> Result<(i64, IntReg), String> {
    let open = token
        .find('(')
        .ok_or_else(|| format!("expected memory operand like `4(r5)`, got `{token}`"))?;
    let close = token
        .strip_suffix(')')
        .ok_or_else(|| format!("unclosed memory operand `{token}`"))?;
    let offset: i64 = token[..open]
        .parse()
        .map_err(|_| format!("bad offset in memory operand `{token}`"))?;
    let base = int_reg(&close[open + 1..])?;
    Ok((offset, base))
}

fn int_op(mnemonic: &str) -> Option<IntOp> {
    Some(match mnemonic {
        "add" => IntOp::Add,
        "sub" => IntOp::Sub,
        "mul" => IntOp::Mul,
        "div" => IntOp::Div,
        "rem" => IntOp::Rem,
        "and" => IntOp::And,
        "or" => IntOp::Or,
        "xor" => IntOp::Xor,
        "sll" => IntOp::Sll,
        "srl" => IntOp::Srl,
        "sra" => IntOp::Sra,
        "cmpeq" => IntOp::CmpEq,
        "cmpne" => IntOp::CmpNe,
        "cmplt" => IntOp::CmpLt,
        "cmple" => IntOp::CmpLe,
        "cmpgt" => IntOp::CmpGt,
        "cmpge" => IntOp::CmpGe,
        _ => return None,
    })
}

fn fp_op(mnemonic: &str) -> Option<FpOp> {
    Some(match mnemonic {
        "fadd" => FpOp::FAdd,
        "fsub" => FpOp::FSub,
        "fmul" => FpOp::FMul,
        "fdiv" => FpOp::FDiv,
        _ => return None,
    })
}

fn fp_cmp_op(mnemonic: &str) -> Option<FpCmpOp> {
    Some(match mnemonic {
        "feq" => FpCmpOp::FEq,
        "fne" => FpCmpOp::FNe,
        "flt" => FpCmpOp::FLt,
        "fle" => FpCmpOp::FLe,
        "fgt" => FpCmpOp::FGt,
        "fge" => FpCmpOp::FGe,
        _ => return None,
    })
}

fn parse_instr(line: &str) -> Result<Instr, String> {
    let tokens = tokenize(line);
    let (&mnemonic, args) = tokens
        .split_first()
        .ok_or_else(|| "empty instruction".to_string())?;
    let arity = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` takes {n} operands, got {}",
                args.len()
            ))
        }
    };
    if let Some(op) = int_op(mnemonic) {
        arity(3)?;
        return Ok(Instr::IntOp {
            op,
            dst: int_reg(args[0])?,
            lhs: int_reg(args[1])?,
            rhs: operand(args[2])?,
        });
    }
    if let Some(op) = fp_op(mnemonic) {
        arity(3)?;
        return Ok(Instr::FpOp {
            op,
            dst: fp_reg(args[0])?,
            lhs: fp_reg(args[1])?,
            rhs: fp_reg(args[2])?,
        });
    }
    if let Some(op) = fp_cmp_op(mnemonic) {
        arity(3)?;
        return Ok(Instr::FpCmp {
            op,
            dst: int_reg(args[0])?,
            lhs: fp_reg(args[1])?,
            rhs: fp_reg(args[2])?,
        });
    }
    if let Some(rest) = mnemonic.strip_prefix('v') {
        if let Some(op) = fp_op(rest) {
            arity(3)?;
            return Ok(Instr::VOp {
                op,
                dst: vec_reg(args[0])?,
                lhs: vec_reg(args[1])?,
                rhs: vec_reg(args[2])?,
            });
        }
        if let Some(op) = rest.strip_suffix(".s").and_then(fp_op) {
            arity(3)?;
            return Ok(Instr::VOpS {
                op,
                dst: vec_reg(args[0])?,
                lhs: vec_reg(args[1])?,
                scalar: fp_reg(args[2])?,
            });
        }
    }
    match mnemonic {
        "movi" => {
            arity(2)?;
            Ok(Instr::MovI {
                dst: int_reg(args[0])?,
                imm: imm_i64(args[1])?,
            })
        }
        "movf" => {
            arity(2)?;
            Ok(Instr::MovF {
                dst: fp_reg(args[0])?,
                imm: imm_f64(args[1])?,
            })
        }
        "fmov" => {
            arity(2)?;
            Ok(Instr::FMov {
                dst: fp_reg(args[0])?,
                src: fp_reg(args[1])?,
            })
        }
        "itof" => {
            arity(2)?;
            Ok(Instr::IToF {
                dst: fp_reg(args[0])?,
                src: int_reg(args[1])?,
            })
        }
        "ftoi" => {
            arity(2)?;
            Ok(Instr::FToI {
                dst: int_reg(args[0])?,
                src: fp_reg(args[1])?,
            })
        }
        "ld" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[1])?;
            Ok(Instr::Load {
                dst: int_reg(args[0])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "ldf" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[1])?;
            Ok(Instr::LoadF {
                dst: fp_reg(args[0])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "st" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[0])?;
            Ok(Instr::Store {
                src: int_reg(args[1])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "stf" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[0])?;
            Ok(Instr::StoreF {
                src: fp_reg(args[1])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "vld" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[1])?;
            Ok(Instr::VLoad {
                dst: vec_reg(args[0])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "vst" => {
            arity(2)?;
            let (offset, base) = mem_operand(args[0])?;
            Ok(Instr::VStore {
                src: vec_reg(args[1])?,
                base,
                offset,
                alias: MemAlias::unknown(),
            })
        }
        "setvl" => {
            arity(1)?;
            Ok(Instr::SetVl {
                src: int_reg(args[0])?,
            })
        }
        "bt" | "bf" => {
            arity(2)?;
            Ok(Instr::Br {
                cond: int_reg(args[0])?,
                expect: mnemonic == "bt",
                target: label(args[1])?,
            })
        }
        "jmp" => {
            arity(1)?;
            Ok(Instr::Jmp {
                target: label(args[0])?,
            })
        }
        "call" => {
            arity(1)?;
            let index: u32 = args[0]
                .strip_prefix("fn#")
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| format!("expected call target like `fn#2`, got `{}`", args[0]))?;
            Ok(Instr::Call {
                target: FuncId::new(index),
            })
        }
        "ret" => {
            arity(0)?;
            Ok(Instr::Ret)
        }
        "halt" => {
            arity(0)?;
            Ok(Instr::Halt)
        }
        _ => Err(format!("unknown mnemonic `{mnemonic}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_display() {
        let text = "\
main:
  movi r1, #5
  L0:
  ld r2, -4(r5)
  add r3, r1, #7
  sub r3, r3, r2
  cmpgt r4, r3, r1
  bt r4, L0
  st 8(r30), r3
  fadd f3, f1, f2
  flt r6, f1, f2
  movf f4, #2.5
  fmov f5, f4
  itof f6, r3
  ftoi r7, f6
  vld v1, 0(r30)
  vfmul v2, v1, v1
  vfadd.s v3, v2, f4
  vst 0(r30), v3
  setvl r3
  call fn#1
  jmp L1
helper:
  ret
  L0: <end>
";
        let program = parse_program(text).unwrap();
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(program, reparsed);
        assert_eq!(program.functions().len(), 2);
        assert_eq!(program.entry().unwrap().index(), 0);
    }

    #[test]
    fn comments_and_indices_skipped() {
        let program =
            parse_program("main: // entry\n   0  movi r1, #1 ; set\n   1  halt\n").unwrap();
        assert_eq!(program.functions()[0].instrs().len(), 2);
    }

    #[test]
    fn unbound_label_parses_as_dangling() {
        let program = parse_program("main:\n  jmp L3\n").unwrap();
        let function = &program.functions()[0];
        assert_eq!(function.label_targets()[3], UNBOUND_LABEL);
        assert!(function.validate().is_err());
    }

    #[test]
    fn entry_prefers_main() {
        let program = parse_program("aux:\n  ret\nmain:\n  halt\n").unwrap();
        assert_eq!(program.entry().unwrap().index(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("main:\n  frobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
        let err = parse_program("movi r1, #1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_program("main:\n  add r1, r2\n").unwrap_err();
        assert!(err.message.contains("3 operands"));
        let err = parse_program("main:\n  ld r1, nope\n").unwrap_err();
        assert!(err.message.contains("memory operand"));
        let err = parse_program("main:\n  movi r99, #0\n").unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
