//! The fourteen instruction classes.
//!
//! The paper (§3): "We therefore group the MultiTitan operations into fourteen
//! classes, selected so that operations in a given class are likely to have
//! identical pipeline behavior in any machine." Machine descriptions assign an
//! operation latency to each class, and functional units are declared over
//! sets of classes.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of instruction classes.
pub const NUM_CLASSES: usize = 14;

/// The instruction classes of the supersym ISA.
///
/// These mirror the paper's grouping: "integer add and subtract form one
/// class, integer multiply forms another class, and single-word load forms a
/// third class" (§3), extended to the full set of fourteen.
///
/// ```
/// use supersym_isa::InstrClass;
/// assert_eq!(InstrClass::ALL.len(), supersym_isa::NUM_CLASSES);
/// assert_eq!(InstrClass::IntAdd.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum InstrClass {
    /// Bitwise logical operations (and, or, xor, nor).
    Logical = 0,
    /// Shift operations.
    Shift = 1,
    /// Integer add/subtract (also address arithmetic and register moves).
    IntAdd = 2,
    /// Integer multiply.
    IntMul = 3,
    /// Integer divide/remainder.
    IntDiv = 4,
    /// Integer comparisons producing a boolean register.
    Compare = 5,
    /// Single-word loads (integer or floating point).
    Load = 6,
    /// Single-word stores (integer or floating point).
    Store = 7,
    /// Conditional branches.
    Branch = 8,
    /// Unconditional jumps, calls, and returns.
    Jump = 9,
    /// Floating-point add/subtract (and FP compares, executed in the adder).
    FpAdd = 10,
    /// Floating-point multiply.
    FpMul = 11,
    /// Floating-point divide.
    FpDiv = 12,
    /// Floating-point converts and register moves.
    FpCvt = 13,
}

impl InstrClass {
    /// All fourteen classes, in index order.
    pub const ALL: [InstrClass; NUM_CLASSES] = [
        InstrClass::Logical,
        InstrClass::Shift,
        InstrClass::IntAdd,
        InstrClass::IntMul,
        InstrClass::IntDiv,
        InstrClass::Compare,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::Jump,
        InstrClass::FpAdd,
        InstrClass::FpMul,
        InstrClass::FpDiv,
        InstrClass::FpCvt,
    ];

    /// Dense index of this class, `0..NUM_CLASSES`.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Class from a dense index.
    #[must_use]
    pub fn from_index(index: usize) -> Option<InstrClass> {
        Self::ALL.get(index).copied()
    }

    /// Short mnemonic used in reports and machine descriptions.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::Logical => "logical",
            InstrClass::Shift => "shift",
            InstrClass::IntAdd => "add/sub",
            InstrClass::IntMul => "intmul",
            InstrClass::IntDiv => "intdiv",
            InstrClass::Compare => "compare",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Branch => "branch",
            InstrClass::Jump => "jump",
            InstrClass::FpAdd => "fpadd",
            InstrClass::FpMul => "fpmul",
            InstrClass::FpDiv => "fpdiv",
            InstrClass::FpCvt => "fpcvt",
        }
    }

    /// Whether this class is a "simple operation" in the paper's sense
    /// (§2: "Not included as simple operations are instructions which take an
    /// order of magnitude more time and occur less frequently, such as
    /// divide").
    #[must_use]
    pub fn is_simple(self) -> bool {
        !matches!(self, InstrClass::IntDiv | InstrClass::FpDiv)
    }

    /// Whether instructions of this class transfer control.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self, InstrClass::Branch | InstrClass::Jump)
    }

    /// Whether instructions of this class access memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A per-class table of values, indexable by [`InstrClass`].
///
/// This is the shape of latency tables, frequency tables and censuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassTable<T>(pub(crate) [T; NUM_CLASSES]);

impl<T> ClassTable<T> {
    /// Builds a table from per-class values in [`InstrClass::ALL`] order.
    #[must_use]
    pub fn new(values: [T; NUM_CLASSES]) -> Self {
        ClassTable(values)
    }

    /// Builds a table by evaluating `f` for each class.
    #[must_use]
    pub fn from_fn(mut f: impl FnMut(InstrClass) -> T) -> Self {
        ClassTable(InstrClass::ALL.map(&mut f))
    }

    /// Iterates over `(class, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (InstrClass, &T)> {
        InstrClass::ALL.iter().copied().zip(self.0.iter())
    }
}

impl<T: Copy + Default> Default for ClassTable<T> {
    fn default() -> Self {
        ClassTable([T::default(); NUM_CLASSES])
    }
}

impl<T> Index<InstrClass> for ClassTable<T> {
    type Output = T;
    fn index(&self, class: InstrClass) -> &T {
        &self.0[class.index()]
    }
}

impl<T> IndexMut<InstrClass> for ClassTable<T> {
    fn index_mut(&mut self, class: InstrClass) -> &mut T {
        &mut self.0[class.index()]
    }
}

/// A census of dynamically executed instructions by class.
///
/// Produced by the functional simulator; consumed by the *average degree of
/// superpipelining* metric (paper Table 2-1).
///
/// ```
/// use supersym_isa::{ClassCensus, InstrClass};
/// let mut census = ClassCensus::new();
/// census.record(InstrClass::Load);
/// census.record(InstrClass::Load);
/// census.record(InstrClass::IntAdd);
/// assert_eq!(census.total(), 3);
/// assert!((census.frequencies()[InstrClass::Load].fraction() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClassCensus {
    counts: ClassTable<u64>,
    total: u64,
}

impl ClassCensus {
    /// An empty census.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed instruction of `class`.
    pub fn record(&mut self, class: InstrClass) {
        self.counts[class] += 1;
        self.total += 1;
    }

    /// Number of instructions recorded for `class`.
    #[must_use]
    pub fn count(&self, class: InstrClass) -> u64 {
        self.counts[class]
    }

    /// Total number of instructions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &ClassCensus) {
        for class in InstrClass::ALL {
            self.counts[class] += other.counts[class];
        }
        self.total += other.total;
    }

    /// Per-class dynamic frequencies. Returns all-zero fractions when the
    /// census is empty.
    #[must_use]
    pub fn frequencies(&self) -> ClassTable<ClassFreq> {
        let mut out = ClassTable::<ClassFreq>::default();
        if self.total == 0 {
            return out;
        }
        for class in InstrClass::ALL {
            out[class] = ClassFreq::new(self.counts[class] as f64 / self.total as f64);
        }
        out
    }
}

/// A dynamic frequency for one instruction class (a fraction in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassFreq(f64);

impl ClassFreq {
    /// Creates a frequency, clamping into `[0, 1]`.
    #[must_use]
    pub fn new(fraction: f64) -> Self {
        ClassFreq(fraction.clamp(0.0, 1.0))
    }

    /// The fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(self) -> f64 {
        self.0
    }
}

// ClassFreq is a plain fraction; hashing/eq by bits is intentional for tables.
impl Eq for ClassFreq {}
impl std::hash::Hash for ClassFreq {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for ClassFreq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_classes() {
        assert_eq!(InstrClass::ALL.len(), 14);
        for (i, class) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(InstrClass::from_index(i), Some(*class));
        }
        assert_eq!(InstrClass::from_index(14), None);
    }

    #[test]
    fn simple_operations_exclude_divides() {
        assert!(!InstrClass::IntDiv.is_simple());
        assert!(!InstrClass::FpDiv.is_simple());
        assert!(InstrClass::Load.is_simple());
        assert!(InstrClass::FpMul.is_simple());
        let n_simple = InstrClass::ALL.iter().filter(|c| c.is_simple()).count();
        assert_eq!(n_simple, 12);
    }

    #[test]
    fn control_and_memory_predicates() {
        assert!(InstrClass::Branch.is_control());
        assert!(InstrClass::Jump.is_control());
        assert!(!InstrClass::Load.is_control());
        assert!(InstrClass::Load.is_memory());
        assert!(InstrClass::Store.is_memory());
        assert!(!InstrClass::Branch.is_memory());
    }

    #[test]
    fn census_frequencies_sum_to_one() {
        let mut census = ClassCensus::new();
        for (i, class) in InstrClass::ALL.iter().enumerate() {
            for _ in 0..=i {
                census.record(*class);
            }
        }
        let freqs = census.frequencies();
        let sum: f64 = InstrClass::ALL.iter().map(|c| freqs[*c].fraction()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn census_merge() {
        let mut a = ClassCensus::new();
        a.record(InstrClass::Load);
        let mut b = ClassCensus::new();
        b.record(InstrClass::Store);
        b.record(InstrClass::Load);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(InstrClass::Load), 2);
        assert_eq!(a.count(InstrClass::Store), 1);
    }

    #[test]
    fn empty_census_has_zero_frequencies() {
        let census = ClassCensus::new();
        let freqs = census.frequencies();
        for class in InstrClass::ALL {
            assert_eq!(freqs[class].fraction(), 0.0);
        }
    }

    #[test]
    fn class_freq_clamps() {
        assert_eq!(ClassFreq::new(1.5).fraction(), 1.0);
        assert_eq!(ClassFreq::new(-0.5).fraction(), 0.0);
        assert_eq!(ClassFreq::new(0.25).to_string(), "25.0%");
    }
}
