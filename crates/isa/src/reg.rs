//! Architectural registers.
//!
//! The machine has [`NUM_INT_REGS`] integer registers and [`NUM_FP_REGS`]
//! floating-point registers. Integer register 0 is hardwired to zero, as on
//! the MultiTitan (and most RISCs of the era).

use crate::vector::{VecReg, NUM_VEC_REGS};
use crate::IsaError;
use std::fmt;

/// Number of integer registers (`r0` is hardwired to zero).
pub const NUM_INT_REGS: usize = 64;
/// Number of floating-point registers.
pub const NUM_FP_REGS: usize = 64;

/// An integer register, `r0`..`r63`.
///
/// `r0` always reads as zero; writes to it are discarded.
///
/// ```
/// use supersym_isa::IntReg;
/// let sp = IntReg::SP;
/// assert_eq!(sp.index(), 29);
/// assert!(IntReg::new(64).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hardwired-zero register.
    pub const ZERO: IntReg = IntReg(0);
    /// Stack pointer (by software convention).
    pub const SP: IntReg = IntReg(29);
    /// Global pointer: base address of the global data region (convention).
    pub const GP: IntReg = IntReg(30);
    /// Scratch register reserved for the code generator (convention).
    pub const AT: IntReg = IntReg(31);

    /// Creates an integer register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `index >= NUM_INT_REGS`.
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if (index as usize) < NUM_INT_REGS {
            Ok(IntReg(index))
        } else {
            Err(IsaError::RegisterOutOfRange(index))
        }
    }

    /// Creates a register without bounds checking in release builds.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `index` is out of range.
    #[must_use]
    pub fn new_unchecked(index: u8) -> Self {
        debug_assert!((index as usize) < NUM_INT_REGS);
        IntReg(index)
    }

    /// The register's index, `0..NUM_INT_REGS`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register, `f0`..`f63`.
///
/// ```
/// use supersym_isa::FpReg;
/// assert_eq!(FpReg::new(7)?.index(), 7);
/// # Ok::<(), supersym_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a floating-point register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `index >= NUM_FP_REGS`.
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if (index as usize) < NUM_FP_REGS {
            Ok(FpReg(index))
        } else {
            Err(IsaError::RegisterOutOfRange(index))
        }
    }

    /// Creates a register without bounds checking in release builds.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `index` is out of range.
    #[must_use]
    pub fn new_unchecked(index: u8) -> Self {
        debug_assert!((index as usize) < NUM_FP_REGS);
        FpReg(index)
    }

    /// The register's index, `0..NUM_FP_REGS`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either register file's register, used in def/use metadata.
///
/// The integer and floating-point register files are disjoint; this sum type
/// lets dependence analysis treat them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
    /// A vector register.
    Vec(VecReg),
    /// The vector-length register (a single architectural register; the
    /// dependence between `setvl` and vector operations flows through it).
    Vl,
}

impl Reg {
    /// A dense index over both register files: integer registers first.
    ///
    /// Useful for scoreboard arrays sized `NUM_INT_REGS + NUM_FP_REGS`.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self {
            Reg::Int(r) => r.index() as usize,
            Reg::Fp(r) => NUM_INT_REGS + r.index() as usize,
            Reg::Vec(r) => NUM_INT_REGS + NUM_FP_REGS + r.index() as usize,
            Reg::Vl => NUM_INT_REGS + NUM_FP_REGS + NUM_VEC_REGS,
        }
    }

    /// Size of the dense register index space (integer + FP + vector + VL).
    pub const DENSE_SPACE: usize = NUM_INT_REGS + NUM_FP_REGS + NUM_VEC_REGS + 1;

    /// Whether this is the integer zero register (never a real dependency).
    #[must_use]
    pub fn is_zero(self) -> bool {
        matches!(self, Reg::Int(r) if r.is_zero())
    }
}

impl From<IntReg> for Reg {
    fn from(r: IntReg) -> Self {
        Reg::Int(r)
    }
}

impl From<FpReg> for Reg {
    fn from(r: FpReg) -> Self {
        Reg::Fp(r)
    }
}

impl From<VecReg> for Reg {
    fn from(r: VecReg) -> Self {
        Reg::Vec(r)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(r) => r.fmt(f),
            Reg::Fp(r) => r.fmt(f),
            Reg::Vec(r) => r.fmt(f),
            Reg::Vl => f.write_str("vl"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_bounds() {
        assert!(IntReg::new(0).is_ok());
        assert!(IntReg::new(63).is_ok());
        assert!(IntReg::new(64).is_err());
    }

    #[test]
    fn fp_reg_bounds() {
        assert!(FpReg::new(63).is_ok());
        assert!(FpReg::new(64).is_err());
        assert!(FpReg::new(255).is_err());
    }

    #[test]
    fn zero_register() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::SP.is_zero());
        assert!(Reg::Int(IntReg::ZERO).is_zero());
        assert!(!Reg::Fp(FpReg::new(0).unwrap()).is_zero());
    }

    #[test]
    fn dense_index_disjoint() {
        let i = Reg::Int(IntReg::new(5).unwrap());
        let f = Reg::Fp(FpReg::new(5).unwrap());
        assert_ne!(i.dense_index(), f.dense_index());
        assert_eq!(f.dense_index(), NUM_INT_REGS + 5);
    }

    #[test]
    fn display() {
        assert_eq!(IntReg::SP.to_string(), "r29");
        assert_eq!(FpReg::new(3).unwrap().to_string(), "f3");
        assert_eq!(Reg::Int(IntReg::ZERO).to_string(), "r0");
    }

    #[test]
    fn conventions_distinct() {
        let set = [IntReg::ZERO, IntReg::SP, IntReg::GP, IntReg::AT];
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
