//! Error type for ISA construction and validation.

use crate::program::{FuncId, Label};
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating ISA entities.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index exceeded the register-file size.
    RegisterOutOfRange(u8),
    /// A label points outside its function's instruction sequence.
    DanglingLabel {
        /// Function containing the label.
        function: String,
        /// The offending label.
        label: Label,
    },
    /// A call names a function the program does not contain.
    UnknownFunction(FuncId),
    /// The program has no entry function.
    MissingEntry,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RegisterOutOfRange(index) => {
                write!(f, "register index {index} out of range")
            }
            IsaError::DanglingLabel { function, label } => {
                write!(f, "label {label} in function `{function}` is dangling")
            }
            IsaError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            IsaError::MissingEntry => write!(f, "program has no entry function"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            IsaError::RegisterOutOfRange(40).to_string(),
            "register index 40 out of range"
        );
        assert_eq!(
            IsaError::MissingEntry.to_string(),
            "program has no entry function"
        );
        let e = IsaError::DanglingLabel {
            function: "main".into(),
            label: Label::new(2),
        };
        assert_eq!(e.to_string(), "label L2 in function `main` is dangling");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<IsaError>();
    }
}
