//! Programs, functions and labels.
//!
//! A [`Program`] is a set of [`Function`]s plus a global data image. Control
//! flow inside a function targets [`Label`]s, which resolve to instruction
//! indices through the function's label table (so schedulers can reorder
//! instructions and then re-pin labels without rewriting every branch).

use crate::error::IsaError;
use crate::instr::Instr;
use std::fmt;

/// An intra-function branch target.
///
/// A label is an index into the owning function's label table; the table maps
/// it to an instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// Creates a label with the given table slot.
    #[must_use]
    pub fn new(slot: u32) -> Self {
        Label(slot)
    }

    /// The label's slot in the function label table.
    #[must_use]
    pub fn slot(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id with the given index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        FuncId(index)
    }

    /// The function's index in the program.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A function: a name, an instruction sequence, and a label table.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    instrs: Vec<Instr>,
    /// `label_targets[label.slot()]` is the instruction index the label
    /// currently points at.
    label_targets: Vec<usize>,
}

impl Function {
    /// Creates a function from parts.
    #[must_use]
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>, label_targets: Vec<usize>) -> Self {
        Function {
            name: name.into(),
            instrs,
            label_targets,
        }
    }

    /// The function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Mutable access for schedulers. Invariants are re-checked by
    /// [`Program::validate`].
    pub fn instrs_mut(&mut self) -> &mut Vec<Instr> {
        &mut self.instrs
    }

    /// The label table.
    #[must_use]
    pub fn label_targets(&self) -> &[usize] {
        &self.label_targets
    }

    /// Mutable label table, for schedulers that move label positions.
    pub fn label_targets_mut(&mut self) -> &mut Vec<usize> {
        &mut self.label_targets
    }

    /// Resolves a label to an instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label is not in this function's table; labels are only
    /// meaningful within the function that created them.
    /// [`Function::try_resolve`] is the non-panicking form for callers
    /// (like the simulator) that face unvalidated programs.
    #[must_use]
    pub fn resolve(&self, label: Label) -> usize {
        self.label_targets[label.slot() as usize]
    }

    /// Resolves a label to an instruction index, or `None` when the label
    /// is not in this function's table.
    #[must_use]
    pub fn try_resolve(&self, label: Label) -> Option<usize> {
        self.label_targets.get(label.slot() as usize).copied()
    }

    /// Checks internal consistency: every label and branch target must point
    /// at an instruction (or one past the end, meaning fall-off return).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DanglingLabel`] for out-of-range targets.
    pub fn validate(&self) -> Result<(), IsaError> {
        for (slot, &target) in self.label_targets.iter().enumerate() {
            if target > self.instrs.len() {
                return Err(IsaError::DanglingLabel {
                    function: self.name.clone(),
                    label: Label(slot as u32),
                });
            }
        }
        for instr in &self.instrs {
            let target = match instr {
                Instr::Br { target, .. } | Instr::Jmp { target } => Some(*target),
                _ => None,
            };
            if let Some(label) = target {
                if (label.slot() as usize) >= self.label_targets.len() {
                    return Err(IsaError::DanglingLabel {
                        function: self.name.clone(),
                        label,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A whole program: functions, an entry point, and a global data image.
///
/// Memory is word-addressed; the global image occupies addresses
/// `0..globals_words()` and the stack grows down from the top of the
/// simulated memory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    functions: Vec<Function>,
    entry: Option<FuncId>,
    globals_words: usize,
    data: Vec<(usize, i64)>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, function: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(function);
        id
    }

    /// All functions, indexable by [`FuncId::index`].
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable functions, for schedulers.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range; [`Program::try_function`] is the
    /// non-panicking form for callers facing unvalidated programs.
    #[must_use]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by id, or `None` when the id is out of range.
    #[must_use]
    pub fn try_function(&self, id: FuncId) -> Option<&Function> {
        self.functions.get(id.index())
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name() == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Sets the entry function.
    pub fn set_entry(&mut self, entry: FuncId) {
        self.entry = Some(entry);
    }

    /// The entry function, if set.
    #[must_use]
    pub fn entry(&self) -> Option<FuncId> {
        self.entry
    }

    /// Reserves `words` of global data space; returns the base address.
    pub fn alloc_globals(&mut self, words: usize) -> usize {
        let base = self.globals_words;
        self.globals_words += words;
        base
    }

    /// Size of the global data region in words.
    #[must_use]
    pub fn globals_words(&self) -> usize {
        self.globals_words
    }

    /// Records an initial value for a global word.
    pub fn add_data(&mut self, addr: usize, value: i64) {
        self.data.push((addr, value));
    }

    /// Initial data image as `(address, value)` pairs.
    #[must_use]
    pub fn data(&self) -> &[(usize, i64)] {
        &self.data
    }

    /// Total static instruction count across all functions.
    #[must_use]
    pub fn static_size(&self) -> usize {
        self.functions.iter().map(|f| f.instrs().len()).sum()
    }

    /// Validates the whole program: entry set, per-function label sanity,
    /// and every `Call` target in range.
    ///
    /// # Errors
    ///
    /// Returns the first [`IsaError`] found.
    pub fn validate(&self) -> Result<(), IsaError> {
        let entry = self.entry.ok_or(IsaError::MissingEntry)?;
        if entry.index() >= self.functions.len() {
            return Err(IsaError::UnknownFunction(entry));
        }
        for function in &self.functions {
            function.validate()?;
            for instr in function.instrs() {
                if let Instr::Call { target } = instr {
                    if target.index() >= self.functions.len() {
                        return Err(IsaError::UnknownFunction(*target));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{IntOp, Operand};
    use crate::reg::IntReg;

    fn simple_function() -> Function {
        let r1 = IntReg::new(1).unwrap();
        Function::new(
            "f",
            vec![
                Instr::MovI { dst: r1, imm: 1 },
                Instr::IntOp {
                    op: IntOp::Add,
                    dst: r1,
                    lhs: r1,
                    rhs: Operand::Imm(2),
                },
                Instr::Halt,
            ],
            vec![0],
        )
    }

    #[test]
    fn program_roundtrip() {
        let mut program = Program::new();
        let id = program.add_function(simple_function());
        program.set_entry(id);
        assert!(program.validate().is_ok());
        assert_eq!(program.static_size(), 3);
        assert_eq!(program.function(id).name(), "f");
        assert_eq!(program.function_by_name("f").unwrap().0, id);
        assert!(program.function_by_name("missing").is_none());
    }

    #[test]
    fn missing_entry_rejected() {
        let mut program = Program::new();
        program.add_function(simple_function());
        assert!(matches!(program.validate(), Err(IsaError::MissingEntry)));
    }

    #[test]
    fn dangling_label_rejected() {
        let mut function = simple_function();
        function.label_targets_mut()[0] = 99;
        let mut program = Program::new();
        let id = program.add_function(function);
        program.set_entry(id);
        assert!(matches!(
            program.validate(),
            Err(IsaError::DanglingLabel { .. })
        ));
    }

    #[test]
    fn branch_to_unknown_label_rejected() {
        let r1 = IntReg::new(1).unwrap();
        let function = Function::new(
            "g",
            vec![Instr::Br {
                cond: r1,
                expect: true,
                target: Label::new(5),
            }],
            vec![0],
        );
        let mut program = Program::new();
        let id = program.add_function(function);
        program.set_entry(id);
        assert!(program.validate().is_err());
    }

    #[test]
    fn unknown_call_target_rejected() {
        let function = Function::new(
            "h",
            vec![Instr::Call {
                target: FuncId::new(7),
            }],
            vec![],
        );
        let mut program = Program::new();
        let id = program.add_function(function);
        program.set_entry(id);
        assert!(matches!(
            program.validate(),
            Err(IsaError::UnknownFunction(_))
        ));
    }

    #[test]
    fn globals_allocation() {
        let mut program = Program::new();
        let a = program.alloc_globals(10);
        let b = program.alloc_globals(5);
        assert_eq!(a, 0);
        assert_eq!(b, 10);
        assert_eq!(program.globals_words(), 15);
        program.add_data(3, 42);
        assert_eq!(program.data(), &[(3, 42)]);
    }

    #[test]
    fn try_lookups_return_none_out_of_range() {
        let mut program = Program::new();
        let id = program.add_function(simple_function());
        assert!(program.try_function(id).is_some());
        assert!(program.try_function(FuncId::new(9)).is_none());
        let function = program.function(id);
        assert_eq!(function.try_resolve(Label::new(0)), Some(0));
        assert_eq!(function.try_resolve(Label::new(7)), None);
    }

    #[test]
    fn label_one_past_end_allowed() {
        let mut function = simple_function();
        function.label_targets_mut()[0] = 3; // == len, fall-off
        assert!(function.validate().is_ok());
    }
}
