//! # supersym-isa
//!
//! The target instruction set for the supersym system: a load/store RISC
//! architecture closely modeled on the DECWRL MultiTitan, the machine used by
//! Jouppi & Wall in *Available Instruction-Level Parallelism for Superscalar
//! and Superpipelined Machines* (ASPLOS 1989).
//!
//! The ISA has:
//!
//! * 32 integer registers (`r0` is hardwired to zero) and 32 floating-point
//!   registers, see [`IntReg`] / [`FpReg`];
//! * word-addressed memory (one 64-bit word per address);
//! * exactly **fourteen instruction classes** ([`InstrClass`]), "selected so
//!   that operations in a given class are likely to have identical pipeline
//!   behavior in any machine" (paper §3);
//! * explicit def/use metadata on every instruction so schedulers and timing
//!   simulators share one dependence model;
//! * a memory-alias annotation ([`MemAlias`]) carrying the compiler's
//!   disambiguation verdict down to the scheduler, which is what the paper's
//!   "careful unrolling" needs (§4.4).
//!
//! ## Example
//!
//! ```
//! use supersym_isa::{AsmBuilder, IntReg, Program};
//!
//! let mut asm = AsmBuilder::new("main");
//! let r1 = IntReg::new(1)?;
//! let r2 = IntReg::new(2)?;
//! asm.movi(r1, 20);
//! asm.movi(r2, 22);
//! asm.add(r1, r1, r2.into());
//! asm.halt();
//! let program: Program = asm.finish_program();
//! assert_eq!(program.functions().len(), 1);
//! # Ok::<(), supersym_isa::IsaError>(())
//! ```

mod builder;
mod class;
mod diag;
mod display;
mod error;
mod instr;
mod parse;
mod program;
mod reg;
mod vector;

pub use builder::AsmBuilder;
pub use class::{ClassCensus, ClassFreq, ClassTable, InstrClass, NUM_CLASSES};
pub use diag::{error_count, Diagnostic, Severity};
pub use error::IsaError;
pub use instr::{FpCmpOp, FpOp, Instr, IntOp, MemAlias, MemRegion, Operand, Uses};
pub use parse::{parse_program, ParseError, UNBOUND_LABEL};
pub use program::{FuncId, Function, Label, Program};
pub use reg::{FpReg, IntReg, Reg, NUM_FP_REGS, NUM_INT_REGS};
pub use vector::{VecReg, MAX_VLEN, NUM_VEC_REGS};
