//! Structured diagnostics shared by the verification layer.
//!
//! The verifier crates ([`supersym-verify`] and the machine-description
//! lint) all report problems as [`Diagnostic`] values rather than panicking
//! or returning a single opaque error: a lint wants to report *everything*
//! wrong with its input, attributed to a location, with a stable code a
//! driver can match on. The type lives here because `supersym-isa` is the
//! one crate everything else already depends on.
//!
//! [`supersym-verify`]: https://docs.rs/supersym-verify

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; the pipeline proceeds.
    Warning,
    /// Definitely wrong; verification fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding from a verification pass.
///
/// A diagnostic carries a [`Severity`], a stable kebab-case `code` (e.g.
/// `"def-before-use"`, `"uncovered-class"`), a human-readable message, and
/// an optional location: the function (or machine) it concerns and an
/// instruction index within it.
///
/// ```
/// use supersym_isa::{Diagnostic, Severity};
/// let d = Diagnostic::error("dangling-label", "label L2 is never bound")
///     .in_function("main")
///     .at_instr(7);
/// assert_eq!(d.severity(), Severity::Error);
/// assert_eq!(d.code(), "dangling-label");
/// assert_eq!(d.to_string(), "error[dangling-label] main:7: label L2 is never bound");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    severity: Severity,
    code: &'static str,
    message: String,
    context: Option<String>,
    instr: Option<usize>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            context: None,
            instr: None,
        }
    }

    /// Creates a warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            context: None,
            instr: None,
        }
    }

    /// Attaches the name of the function (or machine, or region) the
    /// diagnostic concerns.
    #[must_use]
    pub fn in_function(mut self, name: impl Into<String>) -> Self {
        self.context = Some(name.into());
        self
    }

    /// Attaches an instruction index within the context.
    #[must_use]
    pub fn at_instr(mut self, index: usize) -> Self {
        self.instr = Some(index);
        self
    }

    /// The diagnostic's severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Stable kebab-case code identifying the kind of finding.
    #[must_use]
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The function/machine name this concerns, if attached.
    #[must_use]
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }

    /// The instruction index this concerns, if attached.
    #[must_use]
    pub fn instr(&self) -> Option<usize> {
        self.instr
    }

    /// Whether this diagnostic is an error.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match (&self.context, self.instr) {
            (Some(name), Some(index)) => write!(f, " {name}:{index}")?,
            (Some(name), None) => write!(f, " {name}")?,
            (None, Some(index)) => write!(f, " instr {index}")?,
            (None, None) => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// Counts errors in a batch of diagnostics.
#[must_use]
pub fn error_count(diagnostics: &[Diagnostic]) -> usize {
    diagnostics.iter().filter(|d| d.is_error()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let bare = Diagnostic::warning("w", "msg");
        assert_eq!(bare.to_string(), "warning[w]: msg");
        let located = Diagnostic::error("e", "msg").in_function("f");
        assert_eq!(located.to_string(), "error[e] f: msg");
        let full = Diagnostic::error("e", "msg").in_function("f").at_instr(3);
        assert_eq!(full.to_string(), "error[e] f:3: msg");
        let indexed = Diagnostic::error("e", "msg").at_instr(3);
        assert_eq!(indexed.to_string(), "error[e] instr 3: msg");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn error_counting() {
        let batch = vec![
            Diagnostic::warning("a", "x"),
            Diagnostic::error("b", "y"),
            Diagnostic::error("c", "z"),
        ];
        assert_eq!(error_count(&batch), 2);
        assert!(!batch[0].is_error());
        assert!(batch[1].is_error());
    }

    #[test]
    fn accessors() {
        let d = Diagnostic::error("code", "message")
            .in_function("ctx")
            .at_instr(9);
        assert_eq!(d.code(), "code");
        assert_eq!(d.message(), "message");
        assert_eq!(d.context(), Some("ctx"));
        assert_eq!(d.instr(), Some(9));
    }
}
