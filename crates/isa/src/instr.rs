//! Instruction definitions and dependence metadata.
//!
//! Every instruction knows its [`InstrClass`], its register definition and
//! uses, and (for memory operations) a [`MemAlias`] disambiguation
//! annotation. The scheduler and the timing simulator both consume exactly
//! this metadata, so compile-time scheduling and run-time interlocks agree on
//! one dependence model — the property the paper's system relies on ("The
//! simulator executes the program according to the same specification", §3).

use crate::class::InstrClass;
use crate::program::{FuncId, Label};
use crate::reg::{FpReg, IntReg, Reg};
use crate::vector::VecReg;

/// Second operand of an integer ALU operation: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(IntReg),
    /// An immediate operand (the simulator places no width limit on it).
    Imm(i64),
}

impl From<IntReg> for Operand {
    fn from(r: IntReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(imm: i64) -> Self {
        Operand::Imm(imm)
    }
}

/// Integer ALU operations.
///
/// Comparison operations write `1` or `0` to an integer register, in the
/// style of MIPS `slt`; conditional branches then test that register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    /// Addition. Class [`InstrClass::IntAdd`].
    Add,
    /// Subtraction. Class [`InstrClass::IntAdd`].
    Sub,
    /// Multiplication. Class [`InstrClass::IntMul`].
    Mul,
    /// Division (truncating; division by zero yields 0). Class [`InstrClass::IntDiv`].
    Div,
    /// Remainder (remainder by zero yields the dividend). Class [`InstrClass::IntDiv`].
    Rem,
    /// Bitwise and. Class [`InstrClass::Logical`].
    And,
    /// Bitwise or. Class [`InstrClass::Logical`].
    Or,
    /// Bitwise exclusive or. Class [`InstrClass::Logical`].
    Xor,
    /// Shift left logical (shift amount taken modulo 64). Class [`InstrClass::Shift`].
    Sll,
    /// Shift right logical. Class [`InstrClass::Shift`].
    Srl,
    /// Shift right arithmetic. Class [`InstrClass::Shift`].
    Sra,
    /// Set if equal. Class [`InstrClass::Compare`].
    CmpEq,
    /// Set if not equal. Class [`InstrClass::Compare`].
    CmpNe,
    /// Set if less than (signed). Class [`InstrClass::Compare`].
    CmpLt,
    /// Set if less or equal (signed). Class [`InstrClass::Compare`].
    CmpLe,
    /// Set if greater than (signed). Class [`InstrClass::Compare`].
    CmpGt,
    /// Set if greater or equal (signed). Class [`InstrClass::Compare`].
    CmpGe,
}

impl IntOp {
    /// The instruction class this operation issues to.
    #[must_use]
    pub fn class(self) -> InstrClass {
        use IntOp::*;
        match self {
            Add | Sub => InstrClass::IntAdd,
            Mul => InstrClass::IntMul,
            Div | Rem => InstrClass::IntDiv,
            And | Or | Xor => InstrClass::Logical,
            Sll | Srl | Sra => InstrClass::Shift,
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => InstrClass::Compare,
        }
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use IntOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
        }
    }

    /// Whether the operation is commutative (used by reassociation).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        use IntOp::*;
        matches!(self, Add | Mul | And | Or | Xor | CmpEq | CmpNe)
    }
}

/// Floating-point arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// FP addition. Class [`InstrClass::FpAdd`].
    FAdd,
    /// FP subtraction. Class [`InstrClass::FpAdd`].
    FSub,
    /// FP multiplication. Class [`InstrClass::FpMul`].
    FMul,
    /// FP division. Class [`InstrClass::FpDiv`].
    FDiv,
}

impl FpOp {
    /// The instruction class this operation issues to.
    #[must_use]
    pub fn class(self) -> InstrClass {
        match self {
            FpOp::FAdd | FpOp::FSub => InstrClass::FpAdd,
            FpOp::FMul => InstrClass::FpMul,
            FpOp::FDiv => InstrClass::FpDiv,
        }
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
        }
    }
}

/// Floating-point comparison operations (result is written to an integer
/// register; executed in the FP adder, class [`InstrClass::FpAdd`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// Set if equal.
    FEq,
    /// Set if not equal.
    FNe,
    /// Set if less than.
    FLt,
    /// Set if less or equal.
    FLe,
    /// Set if greater than.
    FGt,
    /// Set if greater or equal.
    FGe,
}

impl FpCmpOp {
    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::FEq => "feq",
            FpCmpOp::FNe => "fne",
            FpCmpOp::FLt => "flt",
            FpCmpOp::FLe => "fle",
            FpCmpOp::FGt => "fgt",
            FpCmpOp::FGe => "fge",
        }
    }
}

/// Memory region kind carried by [`MemAlias`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemRegion {
    /// Global data (named arrays and scalars).
    Global,
    /// The runtime stack (locals, spills, frames).
    Stack,
    /// Statically unknown.
    #[default]
    Unknown,
}

/// The compiler's memory-disambiguation verdict for one load or store.
///
/// The paper's "careful unrolling" requires proving that "stores from early
/// copies of the loop do not interfere with loads in later copies" (§4.4).
/// The front end records what it knows — the region, the symbolic base object
/// and, when the access has a compile-time-constant address within that
/// object, the word offset — and [`MemAlias::may_conflict`] applies the
/// conservative disjointness rules.
///
/// ```
/// use supersym_isa::MemAlias;
/// let a0 = MemAlias::global(7).with_offset(0);
/// let a1 = MemAlias::global(7).with_offset(1);
/// let b = MemAlias::global(8);
/// assert!(!a0.may_conflict(&a1)); // same array, different constant slots
/// assert!(!a0.may_conflict(&b));  // distinct global objects never overlap
/// assert!(a0.may_conflict(&MemAlias::unknown()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemAlias {
    region: MemRegion,
    symbol: Option<u32>,
    offset: Option<i64>,
    base: Option<u32>,
}

impl MemAlias {
    /// A reference about which nothing is known (conflicts with everything).
    #[must_use]
    pub fn unknown() -> Self {
        Self::default()
    }

    /// A reference into the global object identified by `symbol`.
    #[must_use]
    pub fn global(symbol: u32) -> Self {
        MemAlias {
            region: MemRegion::Global,
            symbol: Some(symbol),
            offset: None,
            base: None,
        }
    }

    /// A reference into the stack slot area identified by `symbol`
    /// (e.g. a distinct local array).
    #[must_use]
    pub fn stack(symbol: u32) -> Self {
        MemAlias {
            region: MemRegion::Stack,
            symbol: Some(symbol),
            offset: None,
            base: None,
        }
    }

    /// Attaches a compile-time-constant word offset within the base object.
    ///
    /// Without a base tag ([`Self::with_base`]), the offset is *absolute*
    /// within the object (e.g. `A[3]`). With one, it is relative to the
    /// tagged runtime index value (e.g. `A[i+3]`).
    #[must_use]
    pub fn with_offset(mut self, offset: i64) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Tags the reference's index as "runtime value number `base` plus the
    /// constant offset". Two references into the same object whose tags
    /// match compare by offset alone; this is how the compiler proves that
    /// `A[i+1]` and `A[i+2]` are independent after careful unrolling (§4.4).
    #[must_use]
    pub fn with_base(mut self, base: u32) -> Self {
        self.base = Some(base);
        self
    }

    /// The region this reference falls in.
    #[must_use]
    pub fn region(self) -> MemRegion {
        self.region
    }

    /// The symbolic base object, if known.
    #[must_use]
    pub fn symbol(self) -> Option<u32> {
        self.symbol
    }

    /// The constant word offset within the base object, if known.
    #[must_use]
    pub fn offset(self) -> Option<i64> {
        self.offset
    }

    /// Conservative may-alias test: `false` only when the two references are
    /// *provably* disjoint.
    ///
    /// Disjointness holds when the references are in different known
    /// regions, name different known base objects, or name the same object
    /// at different constant offsets *from the same index base* (absolute
    /// offsets count as sharing the "no base" base). Everything else may
    /// conflict.
    #[must_use]
    pub fn may_conflict(&self, other: &MemAlias) -> bool {
        use MemRegion::Unknown;
        if self.region != Unknown && other.region != Unknown && self.region != other.region {
            return false;
        }
        match (self.symbol, other.symbol) {
            (Some(a), Some(b)) => {
                if a != b {
                    // Distinct named objects never overlap (same region or
                    // cross-region): symbols are globally unique ids.
                    false
                } else if self.base == other.base {
                    match (self.offset, other.offset) {
                        (Some(x), Some(y)) => x == y,
                        _ => true,
                    }
                } else {
                    // Different (or one unknown) index bases: no relation
                    // between the offsets is known.
                    true
                }
            }
            _ => true,
        }
    }
}

/// A machine instruction.
///
/// Offsets in loads and stores are in words (the machine is word-addressed).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Integer ALU operation `dst <- lhs op rhs`.
    IntOp {
        /// Operation.
        op: IntOp,
        /// Destination register.
        dst: IntReg,
        /// First source register.
        lhs: IntReg,
        /// Second source (register or immediate).
        rhs: Operand,
    },
    /// Load immediate `dst <- imm`. Class [`InstrClass::IntAdd`].
    MovI {
        /// Destination register.
        dst: IntReg,
        /// Immediate value.
        imm: i64,
    },
    /// FP ALU operation `dst <- lhs op rhs`.
    FpOp {
        /// Operation.
        op: FpOp,
        /// Destination register.
        dst: FpReg,
        /// First source register.
        lhs: FpReg,
        /// Second source register.
        rhs: FpReg,
    },
    /// FP comparison `dst <- lhs op rhs` (boolean into an integer register).
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Destination (integer) register.
        dst: IntReg,
        /// First source register.
        lhs: FpReg,
        /// Second source register.
        rhs: FpReg,
    },
    /// FP load immediate `dst <- imm`. Class [`InstrClass::FpCvt`].
    MovF {
        /// Destination register.
        dst: FpReg,
        /// Immediate value.
        imm: f64,
    },
    /// FP register move `dst <- src`. Class [`InstrClass::FpCvt`].
    FMov {
        /// Destination register.
        dst: FpReg,
        /// Source register.
        src: FpReg,
    },
    /// Convert integer to FP. Class [`InstrClass::FpCvt`].
    IToF {
        /// Destination register.
        dst: FpReg,
        /// Source register.
        src: IntReg,
    },
    /// Convert FP to integer (truncating). Class [`InstrClass::FpCvt`].
    FToI {
        /// Destination register.
        dst: IntReg,
        /// Source register.
        src: FpReg,
    },
    /// Integer load `dst <- mem[base + offset]`.
    Load {
        /// Destination register.
        dst: IntReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation.
        alias: MemAlias,
    },
    /// FP load `dst <- mem[base + offset]`.
    LoadF {
        /// Destination register.
        dst: FpReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation.
        alias: MemAlias,
    },
    /// Integer store `mem[base + offset] <- src`.
    Store {
        /// Value register.
        src: IntReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation.
        alias: MemAlias,
    },
    /// FP store `mem[base + offset] <- src`.
    StoreF {
        /// Value register.
        src: FpReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation.
        alias: MemAlias,
    },
    /// Sets the vector length register from an integer register (clamped
    /// to `0..=MAX_VLEN` at execution). Class [`InstrClass::IntAdd`].
    SetVl {
        /// Source register holding the desired length.
        src: IntReg,
    },
    /// Vector load: `dst[k] <- mem[base + offset + k]` for `k < vl`.
    VLoad {
        /// Destination vector register.
        dst: VecReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation (covers the whole accessed range).
        alias: MemAlias,
    },
    /// Vector store: `mem[base + offset + k] <- src[k]` for `k < vl`.
    VStore {
        /// Source vector register.
        src: VecReg,
        /// Base address register.
        base: IntReg,
        /// Word offset.
        offset: i64,
        /// Disambiguation annotation.
        alias: MemAlias,
    },
    /// Elementwise vector arithmetic `dst[k] <- lhs[k] op rhs[k]`.
    VOp {
        /// Operation.
        op: FpOp,
        /// Destination vector register.
        dst: VecReg,
        /// First source.
        lhs: VecReg,
        /// Second source.
        rhs: VecReg,
    },
    /// Vector-scalar arithmetic `dst[k] <- lhs[k] op scalar`.
    VOpS {
        /// Operation.
        op: FpOp,
        /// Destination vector register.
        dst: VecReg,
        /// Vector source.
        lhs: VecReg,
        /// Scalar FP source.
        scalar: FpReg,
    },
    /// Conditional branch: taken when `(cond != 0) == expect`.
    Br {
        /// Condition register.
        cond: IntReg,
        /// Branch when the condition is true (`expect = true`) or false.
        expect: bool,
        /// Target label within the same function.
        target: Label,
    },
    /// Unconditional jump within the function.
    Jmp {
        /// Target label.
        target: Label,
    },
    /// Function call. Arguments are passed in `r1..` / `f1..` by convention.
    Call {
        /// Callee.
        target: FuncId,
    },
    /// Return from the current function.
    Ret,
    /// Stop the machine.
    Halt,
}

/// Register uses of an instruction (at most three; zero-register uses are
/// omitted because `r0` never carries a dependence).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uses {
    regs: [Option<Reg>; 3],
    len: u8,
}

impl Uses {
    fn push(&mut self, reg: Reg) {
        if !reg.is_zero() {
            self.regs[self.len as usize] = Some(reg);
            self.len += 1;
        }
    }

    /// Iterates over the used registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs[..self.len as usize].iter().map(|r| r.unwrap())
    }

    /// Number of (non-zero) registers used.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no registers are used.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Instr {
    /// The instruction class, which determines latency and functional unit.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::IntOp { op, .. } => op.class(),
            Instr::MovI { .. } => InstrClass::IntAdd,
            Instr::FpOp { op, .. } => op.class(),
            Instr::FpCmp { .. } => InstrClass::FpAdd,
            Instr::MovF { .. } | Instr::FMov { .. } | Instr::IToF { .. } | Instr::FToI { .. } => {
                InstrClass::FpCvt
            }
            Instr::Load { .. } | Instr::LoadF { .. } | Instr::VLoad { .. } => InstrClass::Load,
            Instr::Store { .. } | Instr::StoreF { .. } | Instr::VStore { .. } => InstrClass::Store,
            Instr::SetVl { .. } => InstrClass::IntAdd,
            Instr::VOp { op, .. } | Instr::VOpS { op, .. } => op.class(),
            Instr::Br { .. } => InstrClass::Branch,
            Instr::Jmp { .. } | Instr::Call { .. } | Instr::Ret | Instr::Halt => InstrClass::Jump,
        }
    }

    /// The register this instruction defines, if any.
    ///
    /// Writes to the integer zero register are reported as `None` — they are
    /// architecturally discarded and never carry a dependence.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        let def: Option<Reg> = match self {
            Instr::IntOp { dst, .. }
            | Instr::MovI { dst, .. }
            | Instr::FpCmp { dst, .. }
            | Instr::FToI { dst, .. }
            | Instr::Load { dst, .. } => Some((*dst).into()),
            Instr::FpOp { dst, .. }
            | Instr::MovF { dst, .. }
            | Instr::FMov { dst, .. }
            | Instr::IToF { dst, .. }
            | Instr::LoadF { dst, .. } => Some((*dst).into()),
            Instr::VLoad { dst, .. } | Instr::VOp { dst, .. } | Instr::VOpS { dst, .. } => {
                Some((*dst).into())
            }
            Instr::SetVl { .. } => Some(Reg::Vl),
            Instr::Store { .. }
            | Instr::StoreF { .. }
            | Instr::VStore { .. }
            | Instr::Br { .. }
            | Instr::Jmp { .. }
            | Instr::Call { .. }
            | Instr::Ret
            | Instr::Halt => None,
        };
        def.filter(|r| !r.is_zero())
    }

    /// The registers this instruction reads.
    #[must_use]
    pub fn uses(&self) -> Uses {
        let mut uses = Uses::default();
        match self {
            Instr::IntOp { lhs, rhs, .. } => {
                uses.push((*lhs).into());
                if let Operand::Reg(r) = rhs {
                    uses.push((*r).into());
                }
            }
            Instr::MovI { .. } | Instr::MovF { .. } => {}
            Instr::FpOp { lhs, rhs, .. } => {
                uses.push((*lhs).into());
                uses.push((*rhs).into());
            }
            Instr::FpCmp { lhs, rhs, .. } => {
                uses.push((*lhs).into());
                uses.push((*rhs).into());
            }
            Instr::FMov { src, .. } => uses.push((*src).into()),
            Instr::IToF { src, .. } => uses.push((*src).into()),
            Instr::FToI { src, .. } => uses.push((*src).into()),
            Instr::Load { base, .. } | Instr::LoadF { base, .. } => uses.push((*base).into()),
            Instr::Store { src, base, .. } => {
                uses.push((*src).into());
                uses.push((*base).into());
            }
            Instr::StoreF { src, base, .. } => {
                uses.push((*src).into());
                uses.push((*base).into());
            }
            Instr::SetVl { src } => uses.push((*src).into()),
            Instr::VLoad { base, .. } => {
                uses.push((*base).into());
                uses.push(Reg::Vl);
            }
            Instr::VStore { src, base, .. } => {
                uses.push((*src).into());
                uses.push((*base).into());
                uses.push(Reg::Vl);
            }
            Instr::VOp { lhs, rhs, .. } => {
                uses.push((*lhs).into());
                uses.push((*rhs).into());
                uses.push(Reg::Vl);
            }
            Instr::VOpS { lhs, scalar, .. } => {
                uses.push((*lhs).into());
                uses.push((*scalar).into());
                uses.push(Reg::Vl);
            }
            Instr::Br { cond, .. } => uses.push((*cond).into()),
            Instr::Jmp { .. } | Instr::Call { .. } | Instr::Ret | Instr::Halt => {}
        }
        uses
    }

    /// The memory-disambiguation annotation, with `true` for stores.
    #[must_use]
    pub fn mem_ref(&self) -> Option<(&MemAlias, bool)> {
        match self {
            Instr::Load { alias, .. } | Instr::LoadF { alias, .. } | Instr::VLoad { alias, .. } => {
                Some((alias, false))
            }
            Instr::Store { alias, .. }
            | Instr::StoreF { alias, .. }
            | Instr::VStore { alias, .. } => Some((alias, true)),
            _ => None,
        }
    }

    /// Whether this instruction may transfer control (branch, jump, call,
    /// return, halt). Such instructions terminate scheduling regions.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.class().is_control()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::IntReg;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }
    fn f(i: u8) -> FpReg {
        FpReg::new(i).unwrap()
    }

    #[test]
    fn int_op_classes() {
        assert_eq!(IntOp::Add.class(), InstrClass::IntAdd);
        assert_eq!(IntOp::And.class(), InstrClass::Logical);
        assert_eq!(IntOp::Sll.class(), InstrClass::Shift);
        assert_eq!(IntOp::Mul.class(), InstrClass::IntMul);
        assert_eq!(IntOp::Rem.class(), InstrClass::IntDiv);
        assert_eq!(IntOp::CmpLt.class(), InstrClass::Compare);
    }

    #[test]
    fn fp_op_classes() {
        assert_eq!(FpOp::FAdd.class(), InstrClass::FpAdd);
        assert_eq!(FpOp::FSub.class(), InstrClass::FpAdd);
        assert_eq!(FpOp::FMul.class(), InstrClass::FpMul);
        assert_eq!(FpOp::FDiv.class(), InstrClass::FpDiv);
    }

    #[test]
    fn defs_and_uses() {
        let add = Instr::IntOp {
            op: IntOp::Add,
            dst: r(3),
            lhs: r(1),
            rhs: Operand::Reg(r(2)),
        };
        assert_eq!(add.def(), Some(Reg::Int(r(3))));
        let uses: Vec<Reg> = add.uses().iter().collect();
        assert_eq!(uses, vec![Reg::Int(r(1)), Reg::Int(r(2))]);
    }

    #[test]
    fn zero_register_never_a_dependence() {
        let add = Instr::IntOp {
            op: IntOp::Add,
            dst: IntReg::ZERO,
            lhs: IntReg::ZERO,
            rhs: Operand::Imm(1),
        };
        assert_eq!(add.def(), None);
        assert!(add.uses().is_empty());
    }

    #[test]
    fn store_uses_value_and_base() {
        let st = Instr::Store {
            src: r(4),
            base: r(5),
            offset: 3,
            alias: MemAlias::unknown(),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses().len(), 2);
        assert!(st.mem_ref().unwrap().1);
    }

    #[test]
    fn fp_cmp_defines_int_reg() {
        let cmp = Instr::FpCmp {
            op: FpCmpOp::FLt,
            dst: r(9),
            lhs: f(1),
            rhs: f(2),
        };
        assert_eq!(cmp.class(), InstrClass::FpAdd);
        assert_eq!(cmp.def(), Some(Reg::Int(r(9))));
    }

    #[test]
    fn control_instructions() {
        let br = Instr::Br {
            cond: r(1),
            expect: true,
            target: Label::new(0),
        };
        assert!(br.is_control());
        assert!(Instr::Ret.is_control());
        assert!(Instr::Halt.is_control());
        assert!(!Instr::MovI { dst: r(1), imm: 0 }.is_control());
    }

    #[test]
    fn alias_disjoint_regions() {
        let g = MemAlias::global(1);
        let s = MemAlias::stack(1);
        assert!(!g.may_conflict(&s));
        assert!(g.may_conflict(&MemAlias::unknown()));
        assert!(MemAlias::unknown().may_conflict(&MemAlias::unknown()));
    }

    #[test]
    fn alias_same_symbol_offsets() {
        let a = MemAlias::global(3).with_offset(10);
        let b = MemAlias::global(3).with_offset(10);
        let c = MemAlias::global(3).with_offset(11);
        let d = MemAlias::global(3); // unknown offset within same object
        assert!(a.may_conflict(&b));
        assert!(!a.may_conflict(&c));
        assert!(a.may_conflict(&d));
    }

    #[test]
    fn alias_distinct_symbols() {
        let a = MemAlias::global(1).with_offset(0);
        let b = MemAlias::global(2).with_offset(0);
        assert!(!a.may_conflict(&b));
        let s1 = MemAlias::stack(10);
        let s2 = MemAlias::stack(11);
        assert!(!s1.may_conflict(&s2));
    }

    #[test]
    fn alias_base_tags() {
        // A[i+1] vs A[i+2], same version of i: disjoint.
        let a = MemAlias::global(9).with_base(5).with_offset(1);
        let b = MemAlias::global(9).with_base(5).with_offset(2);
        assert!(!a.may_conflict(&b));
        // Same delta: may be the same word.
        let c = MemAlias::global(9).with_base(5).with_offset(1);
        assert!(a.may_conflict(&c));
        // Different versions of the index (i changed in between): conflict.
        let d = MemAlias::global(9).with_base(6).with_offset(2);
        assert!(a.may_conflict(&d));
        // Relative vs absolute: conflict.
        let e = MemAlias::global(9).with_offset(2);
        assert!(a.may_conflict(&e));
    }

    #[test]
    fn alias_symmetry() {
        let cases = [
            MemAlias::unknown(),
            MemAlias::global(1),
            MemAlias::global(1).with_offset(4),
            MemAlias::global(2).with_offset(4),
            MemAlias::global(1).with_base(1).with_offset(4),
            MemAlias::global(1).with_base(2).with_offset(4),
            MemAlias::stack(1),
            MemAlias::stack(1).with_offset(0),
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(a.may_conflict(b), b.may_conflict(a), "{a:?} vs {b:?}");
            }
        }
    }
}
