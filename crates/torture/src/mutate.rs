//! Deterministic mutators over the pipeline's input layers.
//!
//! Every mutator is a pure function of `(seed material, RNG state)`: the
//! same [`SplitMix64`] stream produces the same mutant, so whole campaigns
//! replay bit-identically from a seed. Mutants are *not* required to be
//! valid — the harness's entire point is to measure how the pipeline
//! rejects them — but each mutator starts from well-formed seed material
//! so a useful fraction of mutants survives deep into the pipeline.

use crate::rng::SplitMix64;
use crate::subject::Input;
use supersym_lang::ast::{BinOp, Block, Expr, Module, Stmt, UnOp};

/// The mutation layers from the robustness campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Byte/token-level mutations of `.tital` source text.
    Source,
    /// Node-level mutations of checked ASTs (fed in past the parser).
    Ast,
    /// Line/operand-level mutations of scheduled instruction streams.
    Asm,
    /// Key/value-level mutations of `.machine` descriptions.
    Machine,
    /// Token-level mutations of sweep grid specs (`axis=value,...`).
    Grid,
}

impl Layer {
    /// All layers, campaign order.
    pub const ALL: [Layer; 5] = [
        Layer::Source,
        Layer::Ast,
        Layer::Asm,
        Layer::Machine,
        Layer::Grid,
    ];

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Layer::Source => "source",
            Layer::Ast => "ast",
            Layer::Asm => "asm",
            Layer::Machine => "machine",
            Layer::Grid => "grid",
        }
    }

    /// Parses a layer name (the `--layer` CLI flag).
    #[must_use]
    pub fn parse(name: &str) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// Built-in Tital seed programs: small, varied (arrays, calls, floats,
/// recursion, loops), and quick to compile and run.
pub const SOURCE_SEEDS: &[&str] = &[
    "global arr a[32];
global var total = 0;
fn fill(int n) {
    for (i = 0; i < n; i = i + 1) { a[i] = i * 3 + 1; }
}
fn sum(int n) -> int {
    var s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}
fn main() -> int {
    fill(32);
    total = sum(32);
    return total;
}",
    "fn fib(int n) -> int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
fn main() -> int {
    return fib(12);
}",
    "global farr x[16];
global farr y[16];
fn main() -> float {
    fvar acc = 0.0;
    for (i = 0; i < 16; i = i + 1) {
        x[i] = itof(i) * 0.5;
        y[i] = itof(16 - i);
    }
    for (i = 0; i < 16; i = i + 1) {
        acc = acc + x[i] * y[i];
    }
    return acc;
}",
    "global var flips = 0;
fn collatz(int n) -> int {
    var steps = 0;
    while (n > 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}
fn main() -> int {
    var worst = 0;
    for (i = 1; i < 40; i = i + 1) {
        var s = collatz(i);
        if (s > worst) { worst = s; flips = flips + 1; }
    }
    return worst * 100 + flips;
}",
];

/// Built-in assembly seed (the `parse_program` grammar); drivers normally
/// extend this with freshly scheduled compiler output.
pub const ASM_SEEDS: &[&str] = &["\
main:
  movi r9, #7
  movi r10, #35
  add r11, r9, r10
  movi r12, #0
L0:
  add r12, r12, r11
  sub r9, r9, #1
  cmpgt r13, r9, #0
  bt r13, L0
  movi r14, #100
  st 0(r14), r12
  halt
"];

/// Built-in `.machine` seed descriptions.
pub const MACHINE_SEEDS: &[&str] = &[
    "# a plausible two-wide machine
name torture-two-wide
issue_width 2
latency load 2
latency fpmul 4
unit alu classes=logical,shift,add/sub,compare,intmul,intdiv multiplicity=2
unit mem classes=load,store multiplicity=1
unit ctrl classes=branch,jump multiplicity=1
unit fp classes=fpadd,fpmul,fpdiv,fpcvt multiplicity=1 issue_latency=2
",
    "# deep superpipeline, real branch prediction
name torture-superpipe
issue_width 1
pipe_degree 4
latency load 4
latency add/sub 4
latency shift 4
latency logical 4
latency compare 4
latency fpadd 6
latency fpmul 8
latency fpdiv 40
branch_prediction real
taken_branch_breaks_issue true
split int_temps=16 int_globals=26 fp_temps=16 fp_globals=26
",
];

/// Built-in sweep-grid seed specs: well-formed, small cell counts, every
/// axis exercised.
pub const GRID_SEEDS: &[&str] = &[
    "issue=1,2,4,8 pipe=1,2 lat=unit,titan",
    "issue=1..4 pipe=1 lat=cray fu=shared split=wide",
    "issue=2 pipe=1,2,4,8 lat=unit fu=ideal,shared split=default,wide",
];

/// Tokens the grid mutator splices in: axis names, values, range and list
/// punctuation, plus numbers chosen to land on and beyond the axis caps.
const GRID_TOKENS: &[&str] = &[
    "issue=",
    "pipe=",
    "lat=",
    "fu=",
    "split=",
    "unit",
    "titan",
    "cray",
    "ideal",
    "shared",
    "default",
    "wide",
    "..",
    ",",
    "=",
    " ",
    "0",
    "1",
    "16",
    "17",
    "64",
    "65",
    "4096",
    "18446744073709551615",
    "bogus",
];

/// Tokens the source mutator splices in: every keyword and operator the
/// lexer knows, plus identifiers and literals that collide with seed
/// names.
const SOURCE_TOKENS: &[&str] = &[
    "fn",
    "var",
    "fvar",
    "global",
    "arr",
    "farr",
    "if",
    "else",
    "while",
    "for",
    "return",
    "int",
    "float",
    "itof",
    "ftoi",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "<<",
    ">>",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "&&",
    "||",
    "!",
    "=",
    "->",
    "main",
    "a",
    "i",
    "s",
    "n",
    "0",
    "1",
    "9223372036854775807",
    "-9223372036854775808",
    "0.5",
    "1e308",
];

/// Mutates raw text: delete, duplicate, transpose or overwrite byte
/// spans, splice tokens from `tokens`, or cross over with another seed.
/// Returns valid UTF-8 (lossy) so downstream parsers see a `&str`.
fn mutate_text(rng: &mut SplitMix64, seeds: &[&str], extra: &[String], tokens: &[&str]) -> String {
    let seed = pick_seed(rng, seeds, extra);
    let mut bytes: Vec<u8> = seed.into_bytes();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        if bytes.is_empty() {
            bytes.extend_from_slice(tokens[rng.below(tokens.len())].as_bytes());
            continue;
        }
        match rng.below(8) {
            // Delete a span.
            0 => {
                let start = rng.below(bytes.len());
                let len = 1 + rng.below(16.min(bytes.len() - start));
                bytes.drain(start..start + len);
            }
            // Duplicate a span in place.
            1 => {
                let start = rng.below(bytes.len());
                let len = 1 + rng.below(16.min(bytes.len() - start));
                let span: Vec<u8> = bytes[start..start + len].to_vec();
                let at = rng.below(bytes.len() + 1);
                bytes.splice(at..at, span);
            }
            // Overwrite one byte with a random printable character.
            2 => {
                let at = rng.below(bytes.len());
                bytes[at] = 0x20 + (rng.below(0x5f) as u8);
            }
            // Insert a language token.
            3 => {
                let at = rng.below(bytes.len() + 1);
                let token = *rng.pick(tokens);
                bytes.splice(at..at, token.bytes());
            }
            // Transpose two spans.
            4 => {
                let a = rng.below(bytes.len());
                let b = rng.below(bytes.len());
                bytes.swap(a, b);
            }
            // Truncate.
            5 => {
                let at = rng.below(bytes.len() + 1);
                bytes.truncate(at);
            }
            // Cross over: prefix of this seed, suffix of another.
            6 => {
                let other = pick_seed(rng, seeds, extra).into_bytes();
                let cut_a = rng.below(bytes.len() + 1);
                let cut_b = rng.below(other.len() + 1);
                bytes.truncate(cut_a);
                bytes.extend_from_slice(&other[cut_b..]);
            }
            // Insert a random digit (perturbs literals and counts without
            // manufacturing astronomically long numbers).
            _ => {
                let at = rng.below(bytes.len() + 1);
                bytes.insert(at, b'0' + (rng.below(10) as u8));
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn pick_seed(rng: &mut SplitMix64, seeds: &[&str], extra: &[String]) -> String {
    let total = seeds.len() + extra.len();
    let k = rng.below(total.max(1));
    if k < seeds.len() {
        seeds[k].to_string()
    } else {
        extra[k - seeds.len()].clone()
    }
}

/// A `.tital` source-text mutant.
#[must_use]
pub fn mutate_source(rng: &mut SplitMix64, extra_seeds: &[String]) -> Input {
    Input::Source(mutate_text(rng, SOURCE_SEEDS, extra_seeds, SOURCE_TOKENS))
}

/// An assembly-text mutant: swap/drop/duplicate whole instructions,
/// corrupt operands, retarget labels — the ISSUE's instruction-stream
/// layer, expressed on the round-trippable text form.
#[must_use]
pub fn mutate_asm(rng: &mut SplitMix64, extra_seeds: &[String]) -> Input {
    let seed = pick_seed(rng, ASM_SEEDS, extra_seeds);
    let mut lines: Vec<String> = seed.lines().map(str::to_string).collect();
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        if lines.is_empty() {
            lines.push("halt".to_string());
            continue;
        }
        match rng.below(6) {
            // Swap two instruction lines (reorders the schedule).
            0 => {
                let a = rng.below(lines.len());
                let b = rng.below(lines.len());
                lines.swap(a, b);
            }
            // Drop an instruction.
            1 => {
                let at = rng.below(lines.len());
                lines.remove(at);
            }
            // Duplicate an instruction.
            2 => {
                let at = rng.below(lines.len());
                let line = lines[at].clone();
                lines.insert(at, line);
            }
            // Corrupt an operand: rewrite the first register/immediate
            // token on a random line.
            3 => {
                let at = rng.below(lines.len());
                lines[at] = corrupt_operand(rng, &lines[at]);
            }
            // Retarget or invent a label reference.
            4 => {
                let at = rng.below(lines.len());
                let n = rng.below(8);
                if let Some(pos) = lines[at].find('L') {
                    let line = &lines[at];
                    let end = line[pos + 1..]
                        .find(|c: char| !c.is_ascii_digit())
                        .map_or(line.len(), |e| pos + 1 + e);
                    lines[at] = format!("{}L{}{}", &line[..pos], n, &line[end..]);
                } else {
                    lines.insert(at, format!("  br L{n}"));
                }
            }
            // Byte-level fallback: garble a character.
            _ => {
                let at = rng.below(lines.len());
                let mut bytes = lines[at].clone().into_bytes();
                if !bytes.is_empty() {
                    let k = rng.below(bytes.len());
                    bytes[k] = 0x20 + (rng.below(0x5f) as u8);
                }
                lines[at] = String::from_utf8_lossy(&bytes).into_owned();
            }
        }
    }
    let mut text = lines.join("\n");
    text.push('\n');
    Input::Asm(text)
}

/// Rewrites the first operand-looking token (`rN`, `fN`, `vN`, `#imm`) on
/// an instruction line.
fn corrupt_operand(rng: &mut SplitMix64, line: &str) -> String {
    for (index, token) in line.split_whitespace().enumerate() {
        if index == 0 {
            continue; // mnemonic
        }
        let clean = token.trim_end_matches(',');
        let replacement = match clean.as_bytes() {
            [b'r', rest @ ..] if rest.iter().all(u8::is_ascii_digit) => {
                format!("r{}", rng.below(40))
            }
            [b'f', rest @ ..] if rest.iter().all(u8::is_ascii_digit) => {
                format!("f{}", rng.below(40))
            }
            [b'#', ..] => format!("#{}", rng.interesting_i64()),
            _ => continue,
        };
        let suffix = if token.ends_with(',') { "," } else { "" };
        return line.replacen(token, &format!("{replacement}{suffix}"), 1);
    }
    line.to_string()
}

/// A `.machine` description mutant. Values stay small (digit edits, a
/// bounded value palette) so hostile-but-parseable descriptions exercise
/// the lint and the scheduler rather than the allocator.
#[must_use]
pub fn mutate_machine(rng: &mut SplitMix64) -> Input {
    const KEYS: &[&str] = &[
        "issue_width 0",
        "issue_width 64",
        "pipe_degree 0",
        "pipe_degree 16",
        "latency load 0",
        "latency load 200",
        "latency fpdiv 999999",
        "latency branch 0",
        "unit dup classes=load multiplicity=1",
        "unit weird classes= multiplicity=3",
        "unit solo classes=jump multiplicity=0",
        "split int_temps=0 int_globals=0 fp_temps=0 fp_globals=0",
        "split int_temps=2 int_globals=1 fp_temps=2 fp_globals=1",
        "split int_temps=255 int_globals=255 fp_temps=255 fp_globals=255",
        "branch_prediction real",
        "taken_branch_breaks_issue maybe",
        "frobnicate 3",
    ];
    let seed = *rng.pick(MACHINE_SEEDS);
    let mut lines: Vec<String> = seed.lines().map(str::to_string).collect();
    let rounds = 1 + rng.below(3);
    for _ in 0..rounds {
        match rng.below(5) {
            // Inject a hostile key/value line.
            0 => {
                let at = rng.below(lines.len() + 1);
                lines.insert(at, (*rng.pick(KEYS)).to_string());
            }
            // Drop a line.
            1 if !lines.is_empty() => {
                let at = rng.below(lines.len());
                lines.remove(at);
            }
            // Duplicate a line (doubly-covered classes, repeated keys).
            2 if !lines.is_empty() => {
                let at = rng.below(lines.len());
                let line = lines[at].clone();
                lines.insert(at, line);
            }
            // Rewrite one digit somewhere.
            3 if !lines.is_empty() => {
                let at = rng.below(lines.len());
                let mut bytes = lines[at].clone().into_bytes();
                let digit_positions: Vec<usize> = bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.is_ascii_digit())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&pos) = digit_positions
                    .get(rng.below(digit_positions.len().max(1)))
                    .filter(|_| !digit_positions.is_empty())
                {
                    bytes[pos] = b'0' + (rng.below(10) as u8);
                }
                lines[at] = String::from_utf8_lossy(&bytes).into_owned();
            }
            // Garble a word (unknown keys and class names).
            _ if !lines.is_empty() => {
                let at = rng.below(lines.len());
                let words: Vec<&str> = lines[at].split_whitespace().collect();
                if !words.is_empty() {
                    let victim = words[rng.below(words.len())].to_string();
                    lines[at] = lines[at].replacen(&victim, "bogus", 1);
                }
            }
            _ => {}
        }
    }
    let mut text = lines.join("\n");
    text.push('\n');
    Input::Machine(text)
}

/// A sweep-grid spec mutant: the same text havoc as the source layer,
/// over a vocabulary of axis names, values and boundary numbers — the
/// cell-count cap, the per-axis ranges and the range/list punctuation are
/// exactly the places a grid parser can be talked into overflowing.
#[must_use]
pub fn mutate_grid(rng: &mut SplitMix64) -> Input {
    Input::Grid(mutate_text(rng, GRID_SEEDS, &[], GRID_TOKENS))
}

/// An AST mutant: parse a seed (seeds always parse), then rewrite nodes
/// in ways the parser could never produce — exactly the point, since this
/// layer exercises the checker, lowering and the optimizer behind the
/// parser's back.
#[must_use]
pub fn mutate_ast(rng: &mut SplitMix64, extra_seeds: &[String]) -> Input {
    let seed = pick_seed(rng, SOURCE_SEEDS, extra_seeds);
    let mut module = match supersym_lang::parse(&seed) {
        Ok(module) => module,
        // Extra seeds are not required to parse; fall back to a built-in.
        Err(_) => supersym_lang::parse(SOURCE_SEEDS[0]).expect("built-in seed parses"),
    };
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        mutate_module(rng, &mut module);
    }
    Input::Ast(module)
}

const BIN_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

fn mutate_module(rng: &mut SplitMix64, module: &mut Module) {
    match rng.below(10) {
        // Rename a function (dangling calls, duplicate definitions).
        0 if !module.funcs.is_empty() => {
            let k = rng.below(module.funcs.len());
            let names = ["main", "fill", "sum", "fib", "ghost"];
            module.funcs[k].name = (*rng.pick(&names)).to_string();
        }
        // Delete a whole function.
        1 if module.funcs.len() > 1 => {
            let k = rng.below(module.funcs.len());
            module.funcs.remove(k);
        }
        // Change a call's arity or an expression elsewhere.
        _ if !module.funcs.is_empty() => {
            let k = rng.below(module.funcs.len());
            let body = &mut module.funcs[k].body;
            mutate_block(rng, body);
        }
        _ => {}
    }
}

fn mutate_block(rng: &mut SplitMix64, block: &mut Block) {
    if block.stmts.is_empty() {
        block.stmts.push(Stmt::Return(Some(Expr::IntLit(1))));
        return;
    }
    match rng.below(8) {
        // Swap two statements.
        0 => {
            let a = rng.below(block.stmts.len());
            let b = rng.below(block.stmts.len());
            block.stmts.swap(a, b);
        }
        // Duplicate a statement.
        1 => {
            let at = rng.below(block.stmts.len());
            let stmt = block.stmts[at].clone();
            block.stmts.insert(at, stmt);
        }
        // Delete a statement.
        2 => {
            let at = rng.below(block.stmts.len());
            block.stmts.remove(at);
        }
        // Recurse into a statement and mutate an expression or nested
        // block.
        _ => {
            let at = rng.below(block.stmts.len());
            mutate_stmt(rng, &mut block.stmts[at]);
        }
    }
}

fn mutate_stmt(rng: &mut SplitMix64, stmt: &mut Stmt) {
    match stmt {
        Stmt::Let { init: e, .. }
        | Stmt::Assign { value: e, .. }
        | Stmt::Return(Some(e))
        | Stmt::ExprStmt(e) => mutate_expr(rng, e),
        Stmt::AssignElem { index, value, .. } => {
            if rng.coin() {
                mutate_expr(rng, index);
            } else {
                mutate_expr(rng, value);
            }
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => match rng.below(3) {
            0 => mutate_expr(rng, cond),
            1 => mutate_block(rng, then_blk),
            _ => {
                if let Some(else_blk) = else_blk {
                    mutate_block(rng, else_blk);
                } else {
                    *else_blk = Some(Block { stmts: vec![] });
                }
            }
        },
        Stmt::While { cond, body } => {
            if rng.coin() {
                mutate_expr(rng, cond);
            } else {
                mutate_block(rng, body);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => match rng.below(4) {
            0 => mutate_expr(rng, init),
            1 => mutate_expr(rng, cond),
            2 => *step = rng.interesting_i64(),
            _ => mutate_block(rng, body),
        },
        Stmt::Return(None) => *stmt = Stmt::Return(Some(Expr::IntLit(rng.interesting_i64()))),
    }
}

fn mutate_expr(rng: &mut SplitMix64, expr: &mut Expr) {
    match rng.below(8) {
        // Replace outright with an interesting literal.
        0 => *expr = Expr::IntLit(rng.interesting_i64()),
        // Replace with a float literal (type confusion on purpose).
        1 => *expr = Expr::FloatLit(f64::from(rng.below(1000) as u32) * 0.25),
        // Replace with a possibly-undefined variable.
        2 => {
            let names = ["i", "s", "n", "acc", "ghost", "a"];
            *expr = Expr::Var((*rng.pick(&names)).to_string());
        }
        // Flip a binary operator.
        3 => {
            if let Expr::Binary { op, .. } = expr {
                *op = *rng.pick(BIN_OPS);
            } else {
                let inner = expr.clone();
                *expr = Expr::binary(*rng.pick(BIN_OPS), inner, Expr::IntLit(1));
            }
        }
        // Wrap in a unary.
        4 => {
            let inner = expr.clone();
            *expr = Expr::Unary {
                op: if rng.coin() { UnOp::Neg } else { UnOp::Not },
                expr: Box::new(inner),
            };
        }
        // Turn into a call (wrong arity, maybe unknown callee).
        5 => {
            let inner = expr.clone();
            let names = ["main", "fill", "sum", "fib", "collatz", "ghost"];
            let mut args = vec![inner];
            for _ in 0..rng.below(3) {
                args.push(Expr::IntLit(rng.interesting_i64()));
            }
            *expr = Expr::Call {
                name: (*rng.pick(&names)).to_string(),
                args,
            };
        }
        // Index an array with this expression.
        6 => {
            let inner = expr.clone();
            let arrs = ["a", "x", "y", "ghost"];
            *expr = Expr::Elem {
                arr: (*rng.pick(&arrs)).to_string(),
                index: Box::new(inner),
            };
        }
        // Descend into a child if one exists, else perturb a literal.
        _ => match expr {
            Expr::IntLit(v) => *v = rng.interesting_i64(),
            Expr::FloatLit(v) => *v = -*v,
            Expr::Var(_) => {}
            Expr::Elem { index: e, .. }
            | Expr::Unary { expr: e, .. }
            | Expr::Cast { expr: e, .. } => {
                mutate_expr(rng, e);
            }
            Expr::Binary { lhs, rhs, .. } => {
                let side = if rng.coin() { lhs } else { rhs };
                mutate_expr(rng, side);
            }
            Expr::Call { args, .. } => {
                if args.is_empty() {
                    args.push(Expr::IntLit(0));
                } else {
                    let k = rng.below(args.len());
                    mutate_expr(rng, &mut args[k]);
                }
            }
        },
    }
}

/// Produces the next mutant for a layer.
#[must_use]
pub fn mutate(
    layer: Layer,
    rng: &mut SplitMix64,
    extra_source: &[String],
    extra_asm: &[String],
) -> Input {
    match layer {
        Layer::Source => mutate_source(rng, extra_source),
        Layer::Ast => mutate_ast(rng, extra_source),
        Layer::Asm => mutate_asm(rng, extra_asm),
        Layer::Machine => mutate_machine(rng),
        Layer::Grid => mutate_grid(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_well_formed() {
        for seed in SOURCE_SEEDS {
            let module = supersym_lang::parse(seed).expect("source seed parses");
            supersym_lang::check(&module).expect("source seed checks");
        }
        for seed in ASM_SEEDS {
            supersym_isa::parse_program(seed).expect("asm seed parses");
        }
        for seed in MACHINE_SEEDS {
            let spec = supersym_machine::parse_machine_spec(seed).expect("machine seed parses");
            assert!(
                !spec
                    .diagnose()
                    .iter()
                    .any(supersym_isa::Diagnostic::is_error),
                "machine seed lints clean"
            );
        }
        for seed in GRID_SEEDS {
            let grid = supersym_machine::GridSpec::parse(seed).expect("grid seed parses");
            assert!(grid.cell_count() > 0);
        }
    }

    #[test]
    fn mutants_are_deterministic() {
        for layer in Layer::ALL {
            let a = mutate(layer, &mut SplitMix64::new(99), &[], &[]);
            let b = mutate(layer, &mut SplitMix64::new(99), &[], &[]);
            assert_eq!(a.to_text(), b.to_text(), "layer {}", layer.name());
        }
    }

    #[test]
    fn mutants_vary_with_the_stream() {
        let mut rng = SplitMix64::new(5);
        let texts: Vec<String> = (0..20)
            .map(|_| mutate_source(&mut rng, &[]).to_text())
            .collect();
        let distinct: std::collections::HashSet<&String> = texts.iter().collect();
        assert!(distinct.len() > 5, "mutator collapsed to few outputs");
    }

    #[test]
    fn layer_names_round_trip() {
        for layer in Layer::ALL {
            assert_eq!(Layer::parse(layer.name()), Some(layer));
        }
        assert_eq!(Layer::parse("nosuch"), None);
    }
}
